//! The injection daemon: accept loop, persistent queue, worker pool.
//!
//! ## Execution model
//!
//! The daemon runs **one study at a time**, in submission order, with
//! every worker thread collaborating on it through a shared
//! [`LeaseBoard`]. Workers are *shared-nothing*: each one compiles and
//! instruments the submitted benchmark itself from the [`StudySpec`]
//! names (never from bytes shipped over the wire), which is exactly what
//! makes the scheme extendable to multi-host fleets — every executor
//! deterministically reproduces the same instrumented module, and the
//! content-addressed study key pins that identity. A worker whose
//! self-derived key disagrees with the submitted one fails the job
//! instead of contaminating the store.
//!
//! ## Crash and restart semantics
//!
//! Every durable structure is an append-only checksummed log:
//!
//! - the job queue replays to the last completed append; a job seen
//!   `Running` at startup belonged to a dead daemon and is re-queued;
//! - shard results land in the study store the moment each shard
//!   finishes — the append *is* the checkpoint, so a `kill -9` loses at
//!   most in-flight shards;
//! - the lease board is deliberately **not** persisted: it is rebuilt
//!   from `missing_jobs` against the store, so recovery re-runs exactly
//!   the shards that never landed. Determinism (experiment RNG keyed by
//!   `(campaign, index)`) makes any re-run byte-identical, which is why
//!   the merged result of a killed-and-restarted service matches a
//!   plain `vulfi study` bit for bit.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use serde::Value;
use spmdc::VectorIsa;
use vulfi::{OutcomeCounts, StudySpec, Workload};
use vulfi_orch::{
    covered_experiments, load_cells, merge, missing_jobs, parse_alert_rules, plan_shards,
    render_alerts_json, run_shard, sparkline_svg, AlertEngine, AlertState, JobQueue, JobRecord,
    JobState, LeaseBoard, Manifest, OpsEvent, OpsKind, OpsLog, Progress, Sampler, SamplerInputs,
    Store, StudyKey, StudyStore, TelemetryLog, TelemetryRing, DEFAULT_RING_CAPACITY,
};

use crate::http::{read_request, respond, respond_error, respond_json, Request};

/// How the daemon is launched (`vulfi serve` flags).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 asks the OS for an ephemeral port (the real
    /// one is printed and written to `<store>/serve.addr`).
    pub addr: String,
    /// Store root shared with `vulfi study` / `vulfi results`.
    pub store: PathBuf,
    /// Worker threads collaborating on the active study.
    pub workers: usize,
    /// Shard lease TTL: how long a silent worker may hold a shard before
    /// it is re-queued for the others.
    pub lease_ttl: Duration,
    /// Telemetry sampling interval. `Duration::ZERO` disables the
    /// sampler entirely — no thread, no ring, no `<store>/telemetry/`
    /// writes (the zero-cost-when-off contract).
    pub telemetry_interval: Duration,
    /// Alert rules file (TOML or JSON) evaluated by the sampler thread
    /// on every tick. `None` means no rules: telemetry still records,
    /// nothing can fire.
    pub alert_rules: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:7070".to_string(),
            store: PathBuf::from("results/store"),
            workers: 2,
            lease_ttl: Duration::from_secs(60),
            telemetry_interval: Duration::from_secs(1),
            alert_rules: None,
        }
    }
}

/// Set by SIGINT/SIGTERM; polled by the accept loop.
static SIGNALLED: AtomicBool = AtomicBool::new(false);

/// Route SIGINT and SIGTERM into a graceful shutdown: the accept loop
/// stops taking connections and the workers finish (and durably append)
/// their current shards before exiting.
#[cfg(unix)]
pub fn install_shutdown_signals() {
    extern "C" fn on_signal(_sig: i32) {
        SIGNALLED.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

#[cfg(not(unix))]
pub fn install_shutdown_signals() {}

/// The study every worker is currently collaborating on.
struct ActiveStudy {
    job: u64,
    key: StudyKey,
    spec: StudySpec,
    board: Mutex<LeaseBoard>,
    /// Guards the shard log append *and* the progress fold, so the
    /// status endpoint always sees counts consistent with the store.
    progress: Mutex<Progress>,
    finished: AtomicBool,
}

/// The telemetry hub: everything the sampler thread mutates each tick
/// and the `/alerts` + dashboard handlers read. One mutex, always
/// acquired *after* (never while holding) the queue/active locks.
struct Telemetry {
    log: TelemetryLog,
    ring: TelemetryRing,
    sampler: Sampler,
    engine: AlertEngine,
    /// Latest verdicts, refreshed every tick.
    states: Vec<AlertState>,
}

struct Shared {
    store: Store,
    queue: Mutex<JobQueue>,
    active: Mutex<Option<Arc<ActiveStudy>>>,
    shutdown: AtomicBool,
    lease_ttl: Duration,
    /// Operational event stream. Appends are serialized here so
    /// concurrent workers never interleave half-lines.
    ops: Mutex<OpsLog>,
    /// `None` when sampling is disabled: no thread runs and nothing in
    /// the experiment path ever touches telemetry.
    telemetry: Option<Mutex<Telemetry>>,
    telemetry_interval: Duration,
}

/// Ignore mutex poisoning: a panicking worker already failed its job via
/// `catch_unwind`; the data under these locks is updated atomically per
/// shard, so the daemon keeps serving.
fn relock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Shared {
    /// Append one operational event. The ops log is narrative, not
    /// state, so a failing append is reported but never fails the job.
    fn ops_emit(&self, ev: OpsEvent) {
        if let Err(e) = relock(&self.ops).append(ev) {
            eprintln!("vulfi-serve: ops log: {e}");
        }
    }

    /// The in-flight study, promoting the oldest queued job when nothing
    /// is active. Returns `None` when the queue is empty.
    fn current_or_next(&self) -> Result<Option<Arc<ActiveStudy>>, String> {
        let mut active = relock(&self.active);
        if let Some(a) = active.as_ref() {
            if !a.finished.load(Ordering::SeqCst) {
                return Ok(Some(a.clone()));
            }
        }
        let queue = relock(&self.queue);
        let Some(job) = queue.next_queued().map_err(|e| e.to_string())? else {
            *active = None;
            return Ok(None);
        };
        let key = StudyKey(
            job.key
                .clone()
                .ok_or_else(|| format!("job {} has no study key", job.id))?,
        );
        let cfg = job.spec.study_config();
        let study = self.store.study(&key);
        let done = study.shards().map_err(|e| e.to_string())?;
        // Heal the expected kill artifact (torn trailing shard line)
        // before anyone appends past it.
        study.trim_torn_tail().map_err(|e| e.to_string())?;
        let plan = plan_shards(&cfg, job.spec.shard_size);
        let missing = missing_jobs(&plan, &done, &cfg);
        let mut progress =
            Progress::start((cfg.max_campaigns * cfg.experiments_per_campaign) as u64);
        progress.resumed = covered_experiments(&done, &cfg) as u64;
        for rec in &done {
            for e in &rec.experiments {
                progress.counts.add(e);
                progress.dyn_insts += e.golden_dyn_insts;
            }
        }
        queue.started(job.id, &key.0).map_err(|e| e.to_string())?;
        drop(queue);
        let started = OpsEvent::new(OpsKind::Started).job(job.id).key(&key.0);
        let wait_ms = started.unix_ms.saturating_sub(job.submitted_unix_ms);
        vulfi_orch::metrics::global().observe_queue_wait(wait_ms.saturating_mul(1_000_000));
        self.ops_emit(started.wall_ns(wait_ms.saturating_mul(1_000_000)));
        let a = Arc::new(ActiveStudy {
            job: job.id,
            key,
            spec: job.spec.clone(),
            board: Mutex::new(LeaseBoard::new(missing, self.lease_ttl)),
            progress: Mutex::new(progress),
            finished: AtomicBool::new(false),
        });
        *active = Some(a.clone());
        Ok(Some(a))
    }

    /// Mark the active study failed (first caller wins) and clear it so
    /// the queue can advance.
    fn fail_active(&self, active: &Arc<ActiveStudy>, error: &str) {
        if active.finished.swap(true, Ordering::SeqCst) {
            return;
        }
        if let Err(e) = relock(&self.queue).failed(active.job, error) {
            eprintln!("vulfi-serve: recording failure of job {}: {e}", active.job);
        }
        self.ops_emit(
            OpsEvent::new(OpsKind::Failed)
                .job(active.job)
                .key(&active.key.0)
                .detail(error),
        );
        self.clear_active(active.job);
    }

    fn clear_active(&self, job: u64) {
        let mut g = relock(&self.active);
        if g.as_ref().is_some_and(|a| a.job == job) {
            *g = None;
        }
    }
}

/// Parse a submitted JSON object into a [`StudySpec`], overlaying the
/// provided fields onto [`StudySpec::default`]. Unknown fields are
/// rejected — a typo'd `"expermients"` must not silently run the
/// default-sized study.
pub fn spec_from_value(doc: &Value) -> Result<StudySpec, String> {
    let obj = doc
        .as_object()
        .ok_or_else(|| "study spec must be a JSON object".to_string())?;
    let mut spec = StudySpec::default();
    for (k, v) in obj {
        let str_field = || {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("spec.{k} must be a string"))
        };
        let num_field = || {
            v.as_u64()
                .ok_or_else(|| format!("spec.{k} must be a non-negative integer"))
        };
        match k.as_str() {
            "bench" => spec.bench = str_field()?,
            "isa" => spec.isa = str_field()?,
            "category" => spec.category = str_field()?,
            "scale" => spec.scale = str_field()?,
            "experiments" => spec.experiments = num_field()? as usize,
            "campaigns" => spec.campaigns = num_field()? as usize,
            "seed" => spec.seed = num_field()?,
            "shard_size" => spec.shard_size = num_field()? as usize,
            "model" => spec.model = str_field()?,
            "detectors" => {
                spec.detectors = v
                    .as_bool()
                    .ok_or_else(|| format!("spec.{k} must be a boolean"))?
            }
            "prune" => {
                spec.prune = v
                    .as_bool()
                    .ok_or_else(|| format!("spec.{k} must be a boolean"))?
            }
            other => return Err(format!("unknown spec field '{other}'")),
        }
    }
    Ok(spec)
}

/// Build the spec's workload (with detectors woven in when asked) and
/// hand it to `f`. Centralizing this is what guarantees the submit
/// handler and every worker derive the same instrumented module and
/// therefore the same study key.
pub fn with_workload<T>(
    spec: &StudySpec,
    f: impl FnOnce(&dyn Workload) -> Result<T, String>,
) -> Result<T, String> {
    let isa = match spec.isa.as_str() {
        "avx" => VectorIsa::Avx,
        "sse" => VectorIsa::Sse4,
        other => return Err(format!("unknown isa '{other}'")),
    };
    let scale = match spec.scale.as_str() {
        "test" => vbench::Scale::Test,
        "paper" => vbench::Scale::Paper,
        other => return Err(format!("unknown scale '{other}'")),
    };
    let w = vbench::study_benchmark(&spec.bench, isa, scale)
        .or_else(|| vbench::micro_benchmark(&spec.bench, isa, scale))
        .ok_or_else(|| format!("unknown benchmark '{}' (see `vulfi list`)", spec.bench))?;
    if spec.detectors {
        let wd = detectors::WithDetectors::new(&w, detectors::DetectorConfig::default())
            .map_err(|e| e.to_string())?;
        f(&wd)
    } else {
        f(&w)
    }
}

/// Compile the spec's workload, derive its content-addressed key, and
/// make sure the store has a manifest for it. This is the submit-time
/// half of the determinism contract; workers re-derive and cross-check.
pub fn realize_key(spec: &StudySpec, store: &Store) -> Result<StudyKey, String> {
    let category = spec.site_category()?;
    let cfg = spec.study_config();
    with_workload(spec, |w| {
        let prog = vulfi::prepare(w, category).map_err(|e| e.to_string())?;
        let key = vulfi_orch::study_key(&prog, w.name(), &spec.isa, &cfg);
        let study = store.study(&key);
        if !study.exists() {
            study
                .write_manifest(&Manifest {
                    key: key.clone(),
                    workload: w.name().to_string(),
                    isa: spec.isa.clone(),
                    category: prog.category,
                    entry: prog.entry.clone(),
                    cfg,
                    total_shards: plan_shards(&cfg, spec.shard_size).len() as u64,
                    complete: false,
                })
                .map_err(|e| e.to_string())?;
        }
        Ok(key)
    })
}

/// A bound-but-not-yet-running daemon. Splitting bind from run lets
/// callers learn the ephemeral port before the accept loop blocks.
pub struct Daemon {
    listener: TcpListener,
    shared: Arc<Shared>,
    workers: usize,
    addr_file: PathBuf,
}

/// Remote control over a running daemon (tests use this instead of unix
/// signals).
#[derive(Clone)]
pub struct DaemonHandle {
    shared: Arc<Shared>,
}

impl DaemonHandle {
    /// Ask the daemon to shut down gracefully.
    pub fn stop(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }
}

impl Daemon {
    /// Open the store and queue, recover orphaned jobs, and bind the
    /// listener. Writes the actual bound address to `<store>/serve.addr`
    /// so shell scripts can discover an ephemeral port.
    pub fn bind(cfg: &ServeConfig) -> Result<Daemon, String> {
        let store = Store::open(&cfg.store).map_err(|e| e.to_string())?;
        let queue = JobQueue::open(&cfg.store).map_err(|e| e.to_string())?;
        let ops = OpsLog::open(&cfg.store).map_err(|e| e.to_string())?;
        let orphans = queue.recover().map_err(|e| e.to_string())?;
        if !orphans.is_empty() {
            eprintln!(
                "vulfi-serve: re-queued {} job(s) orphaned by a previous daemon: {:?}",
                orphans.len(),
                orphans
            );
            for id in &orphans {
                if let Err(e) = ops.append(
                    OpsEvent::new(OpsKind::Requeued)
                        .job(*id)
                        .detail("orphaned by a dead daemon"),
                ) {
                    eprintln!("vulfi-serve: ops log: {e}");
                }
            }
        }
        // Alert rules are parsed at bind time so a typo'd file refuses
        // to start the daemon instead of silently never firing.
        let rules = match &cfg.alert_rules {
            Some(path) => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("alert rules {}: {e}", path.display()))?;
                parse_alert_rules(&text)
                    .map_err(|e| format!("alert rules {}: {e}", path.display()))?
            }
            None => Vec::new(),
        };
        let telemetry = if cfg.telemetry_interval.is_zero() {
            None
        } else {
            let log = TelemetryLog::open(&cfg.store).map_err(|e| e.to_string())?;
            // Resume the window (and the sampler's rate baseline) from
            // the persisted tail, so a restart continues the history a
            // dead daemon left behind.
            let ring = log.ring(DEFAULT_RING_CAPACITY).map_err(|e| e.to_string())?;
            let sampler = match ring.latest() {
                Some(last) => Sampler::resume_from(last.clone()),
                None => Sampler::new(),
            };
            Some(Mutex::new(Telemetry {
                log,
                ring,
                sampler,
                engine: AlertEngine::new(rules),
                states: Vec::new(),
            }))
        };
        let listener =
            TcpListener::bind(&cfg.addr).map_err(|e| format!("bind {}: {e}", cfg.addr))?;
        listener.set_nonblocking(true).map_err(|e| e.to_string())?;
        let addr = listener.local_addr().map_err(|e| e.to_string())?;
        let addr_file = cfg.store.join("serve.addr");
        std::fs::write(&addr_file, addr.to_string())
            .map_err(|e| format!("{}: {e}", addr_file.display()))?;
        Ok(Daemon {
            listener,
            shared: Arc::new(Shared {
                store,
                queue: Mutex::new(queue),
                active: Mutex::new(None),
                shutdown: AtomicBool::new(false),
                lease_ttl: cfg.lease_ttl,
                ops: Mutex::new(ops),
                telemetry,
                telemetry_interval: cfg.telemetry_interval,
            }),
            workers: cfg.workers.max(1),
            addr_file,
        })
    }

    pub fn local_addr(&self) -> Result<SocketAddr, String> {
        self.listener.local_addr().map_err(|e| e.to_string())
    }

    pub fn handle(&self) -> DaemonHandle {
        DaemonHandle {
            shared: self.shared.clone(),
        }
    }

    /// Serve until shut down (signal, `POST /shutdown`, or
    /// [`DaemonHandle::stop`]), then drain the workers. In-flight shards
    /// finish and append before workers exit; anything never started is
    /// re-run by the next daemon via queue recovery.
    pub fn run(self) -> Result<(), String> {
        let mut workers = Vec::new();
        for i in 0..self.workers {
            let shared = self.shared.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("vulfi-worker-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .map_err(|e| e.to_string())?,
            );
        }
        if self.shared.telemetry.is_some() {
            let shared = self.shared.clone();
            workers.push(
                std::thread::Builder::new()
                    .name("vulfi-telemetry".to_string())
                    .spawn(move || telemetry_loop(&shared))
                    .map_err(|e| e.to_string())?,
            );
        }
        loop {
            if SIGNALLED.load(Ordering::SeqCst) {
                self.shared.shutdown.store(true, Ordering::SeqCst);
            }
            if self.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match self.listener.accept() {
                Ok((mut stream, _)) => {
                    let _ = stream.set_nonblocking(false);
                    handle_connection(&self.shared, &mut stream);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => {
                    eprintln!("vulfi-serve: accept: {e}");
                    std::thread::sleep(Duration::from_millis(100));
                }
            }
        }
        for w in workers {
            let _ = w.join();
        }
        // A present serve.addr means "a daemon may be listening here";
        // remove it on the clean path only.
        let _ = std::fs::remove_file(&self.addr_file);
        Ok(())
    }
}

/// One telemetry tick: fold the metrics registry plus the daemon
/// gauges into a sample, persist it, refresh the ring, evaluate the
/// alert rules, and turn firing/resolved transitions into ops events.
fn telemetry_tick(shared: &Arc<Shared>) {
    let Some(tel) = &shared.telemetry else { return };
    // Gather the gauges first, releasing the queue/active locks before
    // touching the telemetry lock (fixed acquisition order).
    let queue_depth = relock(&shared.queue)
        .jobs()
        .map(|jobs| jobs.iter().filter(|j| j.state == JobState::Queued).count() as u64)
        .unwrap_or(0);
    let (active_leases, lease_expired) = match relock(&shared.active).clone() {
        Some(a) => {
            let s = relock(&a.board).stats();
            let outstanding = s
                .granted
                .saturating_sub(s.completed)
                .saturating_sub(s.abandoned)
                .saturating_sub(s.expired);
            (outstanding, s.expired)
        }
        None => (0, 0),
    };
    let snapshot = vulfi_orch::metrics::global().snapshot();
    let transitions = {
        let mut t = relock(tel);
        let sample = t.sampler.sample_now(
            &snapshot,
            SamplerInputs {
                queue_depth,
                active_leases,
                lease_expired,
            },
        );
        // Persistence is observability: a full disk degrades to an
        // in-memory window, it never stops the sampler.
        if let Err(e) = t.log.append(&sample) {
            eprintln!("vulfi-serve: telemetry log: {e}");
        }
        t.ring.push(sample);
        let Telemetry {
            ring,
            engine,
            states,
            ..
        } = &mut *t;
        let (new_states, transitions) = engine.evaluate(ring.samples());
        *states = new_states;
        transitions
    };
    for tr in transitions {
        let kind = if tr.firing {
            OpsKind::AlertFiring
        } else {
            OpsKind::AlertResolved
        };
        shared.ops_emit(
            OpsEvent::new(kind).detail(format!("alert '{}' value {:.4}", tr.rule, tr.value)),
        );
    }
}

/// The sampler thread: tick immediately (a restarted daemon resumes
/// its persisted history with no gap wider than one interval), then on
/// every interval until shutdown. Sleeps in short slices so shutdown
/// is never delayed by a long interval.
fn telemetry_loop(shared: &Arc<Shared>) {
    let interval = shared.telemetry_interval;
    loop {
        telemetry_tick(shared);
        let mut slept = Duration::ZERO;
        while slept < interval {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let slice = (interval - slept).min(Duration::from_millis(20));
            std::thread::sleep(slice);
            slept += slice;
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// One worker thread: collaborate on the active study (or promote the
/// next queued job), isolating panics to the job they occurred in.
fn worker_loop(shared: &Arc<Shared>, idx: usize) {
    let name = format!("worker-{idx}");
    while !shared.shutdown.load(Ordering::SeqCst) {
        match shared.current_or_next() {
            Ok(Some(active)) => {
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    work_on(shared, &active, &name)
                }));
                match outcome {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => shared.fail_active(&active, &e),
                    Err(_) => shared.fail_active(&active, "worker panicked"),
                }
            }
            Ok(None) => std::thread::sleep(Duration::from_millis(20)),
            Err(e) => {
                eprintln!("vulfi-serve: {name}: {e}");
                std::thread::sleep(Duration::from_millis(200));
            }
        }
    }
}

/// Execute shards of `active` until the study drains or shutdown is
/// requested. Compiles its own copy of the workload (shared-nothing; see
/// the module docs for why).
fn work_on(shared: &Arc<Shared>, active: &Arc<ActiveStudy>, worker: &str) -> Result<(), String> {
    let spec = &active.spec;
    let category = spec.site_category()?;
    let cfg = spec.study_config();
    with_workload(spec, |w| {
        let mut prog = vulfi::prepare(w, category).map_err(|e| e.to_string())?;
        prog.model = cfg.model;
        let derived = vulfi_orch::study_key(&prog, w.name(), &spec.isa, &cfg);
        if derived.0 != active.key.0 {
            return Err(format!(
                "worker-derived key {derived} contradicts submitted key {} — refusing to \
                 contaminate the store",
                active.key
            ));
        }
        let study = shared.store.study(&active.key);
        // Each worker derives its own prune context (analysis + census),
        // same shared-nothing stance as the workload compile above.
        let prune_ctx = if cfg.prune {
            Some(vulfi::build_prune_context(&prog, w).map_err(|e| e.to_string())?)
        } else {
            None
        };
        loop {
            if shared.shutdown.load(Ordering::SeqCst) {
                // Leave the job Running; the next daemon re-queues it
                // and re-runs only the shards that never landed.
                return Ok(());
            }
            if active.finished.load(Ordering::SeqCst) {
                return Ok(());
            }
            let leased = relock(&active.board).lease(worker);
            match leased {
                Some(job) => {
                    shared.ops_emit(
                        OpsEvent::new(OpsKind::LeaseGranted)
                            .job(active.job)
                            .key(&active.key.0)
                            .worker(worker)
                            .shard(job.campaign as u64, job.start as u64, job.end as u64),
                    );
                    let shard_start = Instant::now();
                    let faults_before = vulfi::engine_faults().len();
                    let (rec, _spans) = run_shard(&prog, w, &cfg, job, false, prune_ctx.as_ref())
                        .map_err(|e| e.to_string())?;
                    {
                        let mut p = relock(&active.progress);
                        study.append_shard(&rec).map_err(|e| e.to_string())?;
                        p.note_shard(rec.experiments.len() as u64);
                        for e in &rec.experiments {
                            p.counts.add(e);
                            p.dyn_insts += e.golden_dyn_insts;
                        }
                    }
                    relock(&active.board).complete(worker, job);
                    let shard_ns = shard_start.elapsed().as_nanos() as u64;
                    vulfi_orch::metrics::global().observe_shard_duration(shard_ns);
                    shared.ops_emit(
                        OpsEvent::new(OpsKind::ShardDone)
                            .job(active.job)
                            .key(&active.key.0)
                            .worker(worker)
                            .shard(job.campaign as u64, job.start as u64, job.end as u64)
                            .wall_ns(shard_ns),
                    );
                    let faults = vulfi::engine_faults().len().saturating_sub(faults_before);
                    if faults > 0 {
                        shared.ops_emit(
                            OpsEvent::new(OpsKind::EngineFault)
                                .job(active.job)
                                .key(&active.key.0)
                                .worker(worker)
                                .detail(format!("{faults} engine fault(s) absorbed")),
                        );
                    }
                }
                None => {
                    if relock(&active.board).drained() {
                        finish_study(shared, active, &study, spec)?;
                        return Ok(());
                    }
                    // Stragglers hold leases; wait for them (or for the
                    // reaper) instead of spinning.
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }
    })
}

/// First worker to see the board drained merges and completes the job;
/// everyone else observes `finished` and moves on.
fn finish_study(
    shared: &Arc<Shared>,
    active: &Arc<ActiveStudy>,
    study: &StudyStore,
    spec: &StudySpec,
) -> Result<(), String> {
    if active.finished.swap(true, Ordering::SeqCst) {
        return Ok(());
    }
    let cfg = spec.study_config();
    let category = spec.site_category()?;
    let done = study.shards().map_err(|e| e.to_string())?;
    let outcome = match merge(&cfg, category, &done) {
        Some(_) => {
            let mut m = study.read_manifest().map_err(|e| e.to_string())?;
            if !m.complete {
                m.complete = true;
                study.write_manifest(&m).map_err(|e| e.to_string())?;
            }
            shared.ops_emit(
                OpsEvent::new(OpsKind::Merged)
                    .job(active.job)
                    .key(&active.key.0),
            );
            shared.ops_emit(
                OpsEvent::new(OpsKind::Completed)
                    .job(active.job)
                    .key(&active.key.0),
            );
            relock(&shared.queue).completed(active.job)
        }
        // Drained board but incomplete merge: the store lost records
        // between planning and now (external interference). Surface it.
        None => {
            shared.ops_emit(
                OpsEvent::new(OpsKind::Failed)
                    .job(active.job)
                    .key(&active.key.0)
                    .detail("board drained but merge incomplete"),
            );
            relock(&shared.queue).failed(active.job, "board drained but merge incomplete")
        }
    };
    outcome.map_err(|e| e.to_string())?;
    shared.clear_active(active.job);
    Ok(())
}

fn opt_str(o: &Option<String>) -> Value {
    match o {
        Some(s) => Value::Str(s.clone()),
        None => Value::Null,
    }
}

fn job_doc(j: &JobRecord) -> Value {
    serde_json::json!({
        "id": j.id,
        "state": j.state.name(),
        "key": opt_str(&j.key),
        "tenant": opt_str(&j.tenant),
        "error": opt_str(&j.error),
        "bench": j.spec.bench.clone(),
        "isa": j.spec.isa.clone(),
        "category": j.spec.category.clone(),
        "experiments": j.spec.experiments as u64,
        "campaigns": j.spec.campaigns as u64,
        "seed": j.spec.seed,
        "detectors": j.spec.detectors,
        "submitted_unix_ms": j.submitted_unix_ms,
        "updated_unix_ms": j.updated_unix_ms,
    })
}

fn handle_connection(shared: &Arc<Shared>, stream: &mut TcpStream) {
    let req = match read_request(stream) {
        Ok(r) => r,
        Err(e) => return respond_error(stream, 400, &e),
    };
    let path = req.path.split('?').next().unwrap_or("").to_string();
    let parts: Vec<&str> = path.trim_matches('/').split('/').collect();
    match (req.method.as_str(), parts.as_slice()) {
        ("GET", ["healthz"]) => respond_json(stream, 200, &serde_json::json!({ "ok": true })),
        ("GET", ["metrics"]) => {
            let text = vulfi_orch::render_prometheus(&vulfi_orch::metrics::global().snapshot());
            respond(stream, 200, "text/plain; version=0.0.4", text.as_bytes());
        }
        ("GET", ["jobs"]) => match relock(&shared.queue).jobs() {
            Ok(jobs) => {
                let docs: Vec<Value> = jobs.iter().map(job_doc).collect();
                respond_json(
                    stream,
                    200,
                    &serde_json::json!({ "jobs": Value::Array(docs) }),
                );
            }
            Err(e) => respond_error(stream, 500, &e.to_string()),
        },
        ("GET", ["dashboard"]) => handle_dashboard(shared, stream),
        ("GET", ["alerts"]) => handle_alerts(shared, stream),
        ("POST", ["studies"]) => handle_submit(shared, &req, stream),
        ("GET", ["studies", key]) => handle_status(shared, key, stream),
        ("GET", ["studies", key, "report"]) => handle_report(shared, key, stream),
        ("GET", ["studies", key, "events"]) => handle_events(shared, key, stream),
        ("POST", ["shutdown"]) => {
            shared.shutdown.store(true, Ordering::SeqCst);
            respond_json(stream, 200, &serde_json::json!({ "ok": true }));
        }
        (_, ["studies"])
        | (_, ["studies", ..])
        | (_, ["jobs"])
        | (_, ["metrics"])
        | (_, ["dashboard"])
        | (_, ["alerts"])
        | (_, ["shutdown"])
        | (_, ["healthz"]) => respond_error(
            stream,
            405,
            &format!("{} not allowed on {path}", req.method),
        ),
        _ => respond_error(stream, 404, &format!("no route for {path}")),
    }
}

/// `POST /studies`: validate, realize the key (compiling the workload),
/// and durably enqueue. Responds 202 with `{job, key, state}` — the key
/// is usable immediately for status polling and is stable across
/// resubmission of the same spec (a completed study is a cache hit: the
/// worker finds no missing shards and completes the job instantly).
fn handle_submit(shared: &Arc<Shared>, req: &Request, stream: &mut TcpStream) {
    let doc = match req.json() {
        Ok(d) => d,
        Err(e) => return respond_error(stream, 400, &e),
    };
    let spec = match spec_from_value(&doc).and_then(|s| s.validate().map(|_| s)) {
        Ok(s) => s,
        Err(e) => return respond_error(stream, 400, &e),
    };
    let key = match realize_key(&spec, &shared.store) {
        Ok(k) => k,
        Err(e) => return respond_error(stream, 400, &e),
    };
    let tenant = req.header("x-vulfi-tenant").map(str::to_string);
    match relock(&shared.queue).submit(&spec, &key.0, tenant.as_deref()) {
        Ok(job) => {
            let mut ev = OpsEvent::new(OpsKind::Submitted).job(job).key(&key.0);
            if let Some(t) = &tenant {
                ev = ev.detail(t.clone());
            }
            shared.ops_emit(ev);
            respond_json(
                stream,
                202,
                &serde_json::json!({ "job": job, "key": key.0.clone(), "state": "queued" }),
            )
        }
        Err(e) => respond_error(stream, 500, &e.to_string()),
    }
}

/// `GET /studies/:key`: queue state plus live progress folded from the
/// store (running SDC/Benign/Crash counts, ETA) and the merged result
/// once complete.
fn handle_status(shared: &Arc<Shared>, key_str: &str, stream: &mut TcpStream) {
    let jobs = match relock(&shared.queue).jobs() {
        Ok(j) => j,
        Err(e) => return respond_error(stream, 500, &e.to_string()),
    };
    // Latest submission wins: the same key can be submitted repeatedly.
    let job = jobs
        .iter()
        .rev()
        .find(|j| j.key.as_deref() == Some(key_str));
    let key = StudyKey(key_str.to_string());
    let study = shared.store.study(&key);
    if job.is_none() && !study.exists() {
        return respond_error(stream, 404, &format!("no study {key_str}"));
    }

    let mut fields: Vec<(String, Value)> = vec![("key".to_string(), Value::Str(key_str.into()))];
    if let Some(j) = job {
        fields.push(("job".to_string(), job_doc(j)));
        fields.push(("state".to_string(), Value::Str(j.state.name().to_string())));
    }
    if study.exists() {
        match study_status_fields(shared, &key, &study) {
            Ok(mut extra) => fields.append(&mut extra),
            Err(e) => return respond_error(stream, 500, &e),
        }
        if job.is_none() {
            // Present in the store but never queued here (e.g. written
            // by `vulfi study` against the same store).
            let state = if fields.iter().any(|(k, _)| k == "result") {
                "completed"
            } else {
                "partial"
            };
            fields.push(("state".to_string(), Value::Str(state.to_string())));
        }
    }
    respond_json(stream, 200, &Value::Object(fields));
}

/// The store-derived half of a status document: manifest identity,
/// covered/total experiments, outcome counts, live progress when this
/// study is active, and the merged result when complete.
fn study_status_fields(
    shared: &Arc<Shared>,
    key: &StudyKey,
    study: &StudyStore,
) -> Result<Vec<(String, Value)>, String> {
    let m = study.read_manifest().map_err(|e| e.to_string())?;
    let shards = study.shards().map_err(|e| e.to_string())?;
    let covered = covered_experiments(&shards, &m.cfg);
    let total = m.cfg.max_campaigns * m.cfg.experiments_per_campaign;
    let mut counts = OutcomeCounts::default();
    for rec in &shards {
        for e in &rec.experiments {
            counts.add(e);
        }
    }
    let mut fields: Vec<(String, Value)> = vec![
        ("workload".to_string(), Value::Str(m.workload.clone())),
        ("isa".to_string(), Value::Str(m.isa.clone())),
        (
            "category".to_string(),
            Value::Str(m.category.name().to_string()),
        ),
        (
            "covered".to_string(),
            serde_json::to_value(&(covered as u64)).unwrap(),
        ),
        (
            "total".to_string(),
            serde_json::to_value(&(total as u64)).unwrap(),
        ),
        ("counts".to_string(), serde_json::to_value(&counts).unwrap()),
    ];
    let active = relock(&shared.active).clone();
    if let Some(a) = active.filter(|a| a.key.0 == key.0) {
        let snap = relock(&a.progress).snapshot();
        fields.push((
            "progress".to_string(),
            serde_json::to_value(&snap).map_err(|e| e.to_string())?,
        ));
    }
    if let Some(r) = merge(&m.cfg, m.category, &shards) {
        fields.push((
            "result".to_string(),
            serde_json::json!({
                "mean_sdc": r.summary.mean,
                "margin_95": r.summary.margin_95,
                "campaigns": r.summary.campaigns as u64,
                "converged": r.converged,
                "samples": r.samples.clone(),
                "counts": serde_json::to_value(&r.counts).unwrap(),
            }),
        ));
    }
    Ok(fields)
}

/// `GET /studies/:key/events`: this study's slice of the operational
/// event log, oldest first, for machine consumption.
fn handle_events(shared: &Arc<Shared>, key_str: &str, stream: &mut TcpStream) {
    let events = match relock(&shared.ops).events() {
        Ok(evs) => evs,
        Err(e) => return respond_error(stream, 500, &e.to_string()),
    };
    let slice: Vec<Value> = events
        .iter()
        .filter(|ev| ev.key.as_deref() == Some(key_str))
        .map(|ev| serde_json::to_value(ev).unwrap_or(Value::Null))
        .collect();
    respond_json(
        stream,
        200,
        &serde_json::json!({ "key": key_str, "events": Value::Array(slice) }),
    );
}

/// `GET /alerts`: every rule's latest verdict as JSON (the same
/// payload `vulfi alerts check --json` renders offline). With sampling
/// disabled, an explicit `"telemetry": "disabled"` document rather
/// than a 404 — monitors should see "off", not "missing".
fn handle_alerts(shared: &Arc<Shared>, stream: &mut TcpStream) {
    match &shared.telemetry {
        Some(tel) => {
            let states = relock(tel).states.clone();
            match render_alerts_json(&states) {
                Ok(json) => respond(stream, 200, "application/json", json.as_bytes()),
                Err(e) => respond_error(stream, 500, &e.to_string()),
            }
        }
        None => respond_json(
            stream,
            200,
            &serde_json::json!({
                "telemetry": "disabled",
                "firing": 0u64,
                "alerts": Vec::<Value>::new(),
            }),
        ),
    }
}

/// Minimal HTML escaping for dashboard cells (same contract as the
/// analytics report renderer).
fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

fn dash_row(out: &mut String, cells: &[String]) {
    out.push_str("<tr>");
    for c in cells {
        out.push_str(&format!("<td>{c}</td>"));
    }
    out.push_str("</tr>\n");
}

/// `GET /dashboard`: a self-contained, auto-refreshing HTML view of the
/// daemon — job table, active-study progress, lease board, and headline
/// metrics. Zero JavaScript, zero external assets: the page is the
/// markup, and `<meta http-equiv="refresh">` is the update loop.
fn handle_dashboard(shared: &Arc<Shared>, stream: &mut TcpStream) {
    let jobs = match relock(&shared.queue).jobs() {
        Ok(j) => j,
        Err(e) => return respond_error(stream, 500, &e.to_string()),
    };
    let mut out = String::new();
    out.push_str("<!DOCTYPE html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">");
    out.push_str("<meta http-equiv=\"refresh\" content=\"2\">");
    out.push_str("<title>vulfi serve</title>\n<style>\n");
    out.push_str(
        "body{font:14px/1.45 system-ui,sans-serif;margin:2em auto;max-width:1080px;color:#222}\n\
         table{border-collapse:collapse;width:100%;margin:0.5em 0 1.5em}\n\
         th,td{border:1px solid #ddd;padding:4px 8px;text-align:left;font-variant-numeric:tabular-nums}\n\
         th{background:#f5f5f5}\n\
         .muted{color:#888}\n\
         .firing{color:#b00}\n\
         svg.spark{vertical-align:middle}\n\
         .bar{background:#eee;height:10px;width:160px;display:inline-block}\n\
         .bar span{background:#4a90d9;height:10px;display:block}\n",
    );
    out.push_str("</style></head><body>\n<h1>vulfi serve</h1>\n");

    out.push_str("<section id=\"jobs\">\n<h2>Jobs</h2>\n");
    if jobs.is_empty() {
        out.push_str("<p class=\"muted\">no jobs submitted yet</p>\n");
    } else {
        out.push_str(
            "<table><tr><th>id</th><th>state</th><th>bench</th><th>isa</th><th>experiments</th>\
             <th>key</th><th>tenant</th><th>error</th></tr>\n",
        );
        for j in &jobs {
            let key = j.key.as_deref().unwrap_or("?");
            dash_row(
                &mut out,
                &[
                    j.id.to_string(),
                    esc(j.state.name()),
                    esc(&j.spec.bench),
                    esc(&j.spec.isa),
                    format!("{}", (j.spec.experiments * j.spec.campaigns) as u64),
                    esc(&key[..12.min(key.len())]),
                    esc(j.tenant.as_deref().unwrap_or("-")),
                    esc(j.error.as_deref().unwrap_or("-")),
                ],
            );
        }
        out.push_str("</table>\n");
    }
    out.push_str("</section>\n");

    out.push_str("<section id=\"active\">\n<h2>Active study</h2>\n");
    let active = relock(&shared.active).clone();
    match active.filter(|a| !a.finished.load(Ordering::SeqCst)) {
        Some(a) => {
            let snap = relock(&a.progress).snapshot();
            let stats = relock(&a.board).stats();
            let pct = if snap.total > 0 {
                (snap.done as f64 / snap.total as f64 * 100.0).min(100.0)
            } else {
                0.0
            };
            out.push_str(&format!(
                "<p>job {} · <code>{}</code> · {}/{} experiments \
                 <span class=\"bar\"><span style=\"width:{:.0}%\"></span></span> {:.1}%</p>\n",
                a.job,
                esc(&a.key.0[..12.min(a.key.0.len())]),
                snap.done,
                snap.total,
                pct,
                pct
            ));
            let eta = if snap.eta_secs.is_finite() {
                format!("{:.0}s", snap.eta_secs)
            } else {
                "?".to_string()
            };
            out.push_str(&format!(
                "<p>{:.0} exp/s · ETA {eta} · SDC {} / Benign {} / Crash {}</p>\n",
                snap.experiments_per_sec, snap.counts.sdc, snap.counts.benign, snap.counts.crash
            ));
            out.push_str(&format!(
                "<p class=\"muted\">leases: {} granted, {} completed, {} abandoned, {} expired</p>\n",
                stats.granted, stats.completed, stats.abandoned, stats.expired
            ));
        }
        None => out.push_str("<p class=\"muted\">idle — no active study</p>\n"),
    }
    out.push_str("</section>\n");

    out.push_str("<section id=\"alerts\">\n<h2>Alerts</h2>\n");
    match &shared.telemetry {
        Some(tel) => {
            let states = relock(tel).states.clone();
            if states.is_empty() {
                out.push_str("<p class=\"muted\">no alert rules loaded</p>\n");
            } else {
                out.push_str(
                    "<table><tr><th>rule</th><th>series</th><th>threshold</th>\
                     <th>state</th><th>value</th></tr>\n",
                );
                for s in &states {
                    let state = if s.firing {
                        "<strong class=\"firing\">FIRING</strong>".to_string()
                    } else {
                        "ok".to_string()
                    };
                    dash_row(
                        &mut out,
                        &[
                            esc(&s.rule.name),
                            esc(s.rule.kind.name()),
                            format!("{}", s.rule.threshold),
                            state,
                            format!("{:.4}", s.value),
                        ],
                    );
                }
                out.push_str("</table>\n");
            }
        }
        None => out.push_str("<p class=\"muted\">telemetry disabled</p>\n"),
    }
    out.push_str("</section>\n");

    out.push_str("<section id=\"telemetry\">\n<h2>Telemetry</h2>\n");
    match &shared.telemetry {
        Some(tel) => {
            let t = relock(tel);
            let series: [(&str, Vec<f64>); 5] = [
                ("exp/s", t.ring.series(|s| s.exp_per_sec)),
                ("SDC rate (%)", t.ring.series(|s| s.sdc_rate)),
                ("queue depth", t.ring.series(|s| s.queue_depth as f64)),
                ("queue wait p99 (s)", t.ring.series(|s| s.queue_wait_p99_s)),
                ("engine faults/s", t.ring.series(|s| s.engine_fault_rate)),
            ];
            drop(t);
            out.push_str("<table><tr><th>series</th><th>last 10 min</th><th>latest</th></tr>\n");
            for (name, values) in &series {
                dash_row(
                    &mut out,
                    &[
                        name.to_string(),
                        sparkline_svg(values, 160, 28),
                        values
                            .last()
                            .map(|v| format!("{v:.2}"))
                            .unwrap_or_else(|| "-".to_string()),
                    ],
                );
            }
            out.push_str("</table>\n");
        }
        None => out.push_str("<p class=\"muted\">telemetry disabled</p>\n"),
    }
    out.push_str("</section>\n");

    out.push_str("<section id=\"metrics\">\n<h2>Metrics</h2>\n");
    let m = vulfi_orch::metrics::global().snapshot();
    out.push_str("<table><tr><th>series</th><th>value</th></tr>\n");
    dash_row(
        &mut out,
        &[
            "experiments".to_string(),
            vulfi_orch::humanize(m.experiments_total()),
        ],
    );
    dash_row(
        &mut out,
        &["shard appends".to_string(), m.shard_appends.to_string()],
    );
    dash_row(
        &mut out,
        &[
            "shard duration (sum s)".to_string(),
            format!("{:.2}", m.shard_duration_seconds.sum),
        ],
    );
    dash_row(
        &mut out,
        &[
            "queue wait (sum s)".to_string(),
            format!("{:.2}", m.queue_wait_seconds.sum),
        ],
    );
    dash_row(
        &mut out,
        &["engine faults".to_string(), m.engine_faults.to_string()],
    );
    dash_row(
        &mut out,
        &["store retries".to_string(), m.store_retries.to_string()],
    );
    out.push_str("</table>\n</section>\n</body></html>\n");
    respond(stream, 200, "text/html; charset=utf-8", out.as_bytes());
}

/// `GET /studies/:key/report`: the analytics cell for a completed study
/// (same numbers as `vulfi report html`), or 404 while still partial.
fn handle_report(shared: &Arc<Shared>, key_str: &str, stream: &mut TcpStream) {
    let (cells, warnings) = match load_cells(&shared.store) {
        Ok(x) => x,
        Err(e) => return respond_error(stream, 500, &e.to_string()),
    };
    match cells.iter().find(|c| c.key == key_str) {
        Some(cell) => {
            let doc = serde_json::json!({
                "cell": serde_json::to_value(cell).unwrap(),
                "warnings": serde_json::to_value(&warnings).unwrap(),
            });
            respond_json(stream, 200, &doc);
        }
        None => respond_error(
            stream,
            404,
            &format!("no completed study {key_str} in the store"),
        ),
    }
}
