//! A deliberately small HTTP/1.1 layer over `std::net`.
//!
//! The service speaks just enough HTTP for its JSON API: one request per
//! connection (`Connection: close` semantics), `Content-Length` framed
//! bodies, no chunked encoding, no keep-alive. That keeps the daemon
//! dependency-free — the workspace vendors no HTTP stack — and the
//! protocol surface small enough to reason about under fault injection
//! of its own (a torn request is a 400, never a wedged worker).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use serde::Value;

/// Largest request body the daemon will buffer (a study spec is ~200
/// bytes; anything close to this is abuse, not a client).
const MAX_BODY: usize = 1 << 20;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    pub method: String,
    pub path: String,
    headers: Vec<(String, String)>,
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The body parsed as JSON.
    pub fn json(&self) -> Result<Value, String> {
        let text = std::str::from_utf8(&self.body).map_err(|_| "body is not UTF-8".to_string())?;
        serde_json::from_str(text).map_err(|e| format!("body is not valid JSON: {e}"))
    }
}

/// Read and frame one request. Errors are protocol-level (malformed
/// request line, oversized body, timeout) — the caller answers 400.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, String> {
    // A stalled or byte-dribbling client must not wedge the accept loop.
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("read request line: {e}"))?;
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or("empty request line")?.to_string();
    let path = parts.next().ok_or("request line has no path")?.to_string();

    let mut headers = Vec::new();
    loop {
        let mut h = String::new();
        reader
            .read_line(&mut h)
            .map_err(|e| format!("read header: {e}"))?;
        let h = h.trim_end();
        if h.is_empty() {
            break;
        }
        if let Some((k, v)) = h.split_once(':') {
            headers.push((k.trim().to_string(), v.trim().to_string()));
        }
    }

    let len: usize = headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .and_then(|(_, v)| v.parse().ok())
        .unwrap_or(0);
    if len > MAX_BODY {
        return Err(format!("body of {len} bytes exceeds the {MAX_BODY} limit"));
    }
    let mut body = vec![0u8; len];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("read body: {e}"))?;
    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        500 => "Internal Server Error",
        _ => "Unknown",
    }
}

/// Write one response and close (best-effort: a client that hung up
/// mid-write is its own problem, not the daemon's).
pub fn respond(stream: &mut TcpStream, status: u16, content_type: &str, body: &[u8]) {
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body);
    let _ = stream.flush();
}

/// Respond with a JSON document.
pub fn respond_json(stream: &mut TcpStream, status: u16, doc: &Value) {
    let body = serde_json::to_string(doc).unwrap_or_else(|_| "{}".to_string());
    respond(stream, status, "application/json", body.as_bytes());
}

/// Respond with a JSON error envelope: `{"error": "..."}`.
pub fn respond_error(stream: &mut TcpStream, status: u16, message: &str) {
    respond_json(stream, status, &serde_json::json!({ "error": message }));
}

/// Parse one buffered client-side response into (status, body).
pub fn parse_response(raw: &[u8]) -> Result<(u16, String), String> {
    let text = String::from_utf8_lossy(raw);
    let (head, body) = text
        .split_once("\r\n\r\n")
        .ok_or("response has no header/body separator")?;
    let status_line = head.lines().next().ok_or("empty response")?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line '{status_line}'"))?;
    Ok((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn roundtrips_a_request_and_response() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            let req = read_request(&mut s).unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/studies");
            assert_eq!(req.header("X-Vulfi-Tenant"), Some("alice"));
            let doc = req.json().unwrap();
            assert_eq!(
                doc.get("bench").and_then(|v| v.as_str()),
                Some("vector sum")
            );
            respond_json(&mut s, 202, &serde_json::json!({ "job": 1u64 }));
        });

        let mut c = TcpStream::connect(addr).unwrap();
        let body = r#"{"bench":"vector sum"}"#;
        write!(
            c,
            "POST /studies HTTP/1.1\r\nHost: x\r\nX-Vulfi-Tenant: alice\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let mut raw = Vec::new();
        c.read_to_end(&mut raw).unwrap();
        let (status, body) = parse_response(&raw).unwrap();
        assert_eq!(status, 202);
        let doc: Value = serde_json::from_str(&body).unwrap();
        assert_eq!(doc.get("job").and_then(|v| v.as_u64()), Some(1));
        server.join().unwrap();
    }

    #[test]
    fn rejects_oversized_bodies() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            read_request(&mut s).unwrap_err()
        });
        let mut c = TcpStream::connect(addr).unwrap();
        write!(c, "POST / HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n").unwrap();
        let err = server.join().unwrap();
        assert!(err.contains("exceeds"), "{err}");
    }
}
