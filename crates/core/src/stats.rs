//! Statistics for fault-injection studies (paper §IV-D).
//!
//! The paper treats each 100-experiment campaign's SDC rate as one random
//! sample and repeats campaigns until (1) the sample distribution is normal
//! or near-normal and (2) the 95%-confidence margin of error falls within
//! ±3 percentage points, computed with "the standard t-value based formula
//! where the sample size and the standard error of the sample distribution
//! is known". This module implements exactly that machinery.

/// Sample mean.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample standard deviation (n-1 denominator).
pub fn sample_std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Standard error of the mean.
pub fn standard_error(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    sample_std_dev(xs) / (xs.len() as f64).sqrt()
}

/// Two-sided 95% critical t-values by degrees of freedom (standard table,
/// Weiss, *Elementary Statistics*). Values beyond df=30 step through the
/// usual table rows and converge to z = 1.96.
pub fn t_critical_95(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => f64::INFINITY,
        d if d <= 30 => TABLE[d - 1],
        d if d <= 40 => 2.021,
        d if d <= 60 => 2.000,
        d if d <= 120 => 1.980,
        _ => 1.960,
    }
}

/// 95% margin of error of the sample mean: `t * SE`.
pub fn margin_of_error_95(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return f64::INFINITY;
    }
    t_critical_95(xs.len() - 1) * standard_error(xs)
}

/// Sample skewness (g1, biased estimator). Near 0 for symmetric samples.
pub fn skewness(xs: &[f64]) -> f64 {
    let n = xs.len() as f64;
    if xs.len() < 3 {
        return 0.0;
    }
    let m = mean(xs);
    let m2 = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / n;
    let m3 = xs.iter().map(|x| (x - m).powi(3)).sum::<f64>() / n;
    if m2 == 0.0 {
        0.0
    } else {
        m3 / m2.powf(1.5)
    }
}

/// Excess kurtosis (g2, biased estimator). Near 0 for normal samples.
pub fn excess_kurtosis(xs: &[f64]) -> f64 {
    let n = xs.len() as f64;
    if xs.len() < 4 {
        return 0.0;
    }
    let m = mean(xs);
    let m2 = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / n;
    let m4 = xs.iter().map(|x| (x - m).powi(4)).sum::<f64>() / n;
    if m2 == 0.0 {
        0.0
    } else {
        m4 / (m2 * m2) - 3.0
    }
}

/// Moment-based near-normality screen: loose bounds on skewness and excess
/// kurtosis, the standard quick check for "normal or near normal"
/// campaign-rate distributions. Degenerate (zero-variance) samples pass —
/// a constant SDC rate has a trivially tight confidence interval.
pub fn looks_normal(xs: &[f64]) -> bool {
    if xs.len() < 4 {
        return false;
    }
    if sample_std_dev(xs) == 0.0 {
        return true;
    }
    skewness(xs).abs() < 2.0 && excess_kurtosis(xs).abs() < 4.0
}

/// The stopping rule of paper §IV-D: enough campaigns that the sample looks
/// normal and the 95% margin of error is within `target_margin`.
pub fn study_converged(samples: &[f64], target_margin: f64, min_campaigns: usize) -> bool {
    samples.len() >= min_campaigns
        && looks_normal(samples)
        && margin_of_error_95(samples) <= target_margin
}

/// Summary statistics of a finished study.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StudySummary {
    pub mean: f64,
    pub std_dev: f64,
    pub margin_95: f64,
    pub campaigns: usize,
}

impl StudySummary {
    pub fn from_samples(xs: &[f64]) -> StudySummary {
        StudySummary {
            mean: mean(xs),
            std_dev: sample_std_dev(xs),
            margin_95: margin_of_error_95(xs),
            campaigns: xs.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        // Sample std dev with n-1 = 2.138...
        assert!((sample_std_dev(&xs) - 2.13809).abs() < 1e-4);
    }

    #[test]
    fn t_table_spot_checks() {
        assert!((t_critical_95(1) - 12.706).abs() < 1e-9);
        assert!((t_critical_95(19) - 2.093).abs() < 1e-9); // 20 campaigns
        assert!((t_critical_95(30) - 2.042).abs() < 1e-9);
        assert!((t_critical_95(1000) - 1.96).abs() < 1e-9);
        assert!(t_critical_95(0).is_infinite());
    }

    #[test]
    fn margin_shrinks_with_more_samples() {
        let tight: Vec<f64> = (0..20).map(|i| 30.0 + (i % 3) as f64).collect();
        let loose: Vec<f64> = (0..5).map(|i| 30.0 + (i % 3) as f64 * 8.0).collect();
        assert!(margin_of_error_95(&tight) < margin_of_error_95(&loose));
        assert!(margin_of_error_95(&[1.0]).is_infinite());
    }

    #[test]
    fn paper_stopping_rule() {
        // 20 campaigns with small spread: converged at ±3 pp.
        let xs: Vec<f64> = (0..20).map(|i| 40.0 + ((i * 7) % 5) as f64).collect();
        assert!(study_converged(&xs, 3.0, 4));
        // 3 campaigns: never converged (below min).
        assert!(!study_converged(&xs[..3], 3.0, 4));
        // Wild spread: not converged.
        let wild: Vec<f64> = (0..8)
            .map(|i| if i % 2 == 0 { 0.0 } else { 100.0 })
            .collect();
        assert!(!study_converged(&wild, 3.0, 4));
    }

    #[test]
    fn normality_screen() {
        let normalish: Vec<f64> = (0..30)
            .map(|i| {
                let x = (i as f64 / 29.0) * 2.0 - 1.0;
                50.0 + 10.0 * x // symmetric → skew ~0
            })
            .collect();
        assert!(looks_normal(&normalish));
        let constant = vec![42.0; 10];
        assert!(looks_normal(&constant));
        let skewed: Vec<f64> = (0..30).map(|i| if i < 29 { 0.0 } else { 1000.0 }).collect();
        assert!(!looks_normal(&skewed));
        assert!(!looks_normal(&[1.0, 2.0]));
    }

    #[test]
    fn summary_roundtrip() {
        let xs = [10.0, 12.0, 11.0, 13.0, 9.0, 11.0];
        let s = StudySummary::from_samples(&xs);
        assert_eq!(s.campaigns, 6);
        assert!((s.mean - 11.0).abs() < 1e-9);
        assert!(s.margin_95 > 0.0);
    }
}
