//! Statistics for fault-injection studies (paper §IV-D).
//!
//! The paper treats each 100-experiment campaign's SDC rate as one random
//! sample and repeats campaigns until (1) the sample distribution is normal
//! or near-normal and (2) the 95%-confidence margin of error falls within
//! ±3 percentage points, computed with "the standard t-value based formula
//! where the sample size and the standard error of the sample distribution
//! is known". This module implements exactly that machinery.

/// Sample mean.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample standard deviation (n-1 denominator).
pub fn sample_std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Standard error of the mean.
pub fn standard_error(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    sample_std_dev(xs) / (xs.len() as f64).sqrt()
}

/// Two-sided 95% critical t-values by degrees of freedom (standard table,
/// Weiss, *Elementary Statistics*). Values beyond df=30 step through the
/// usual table rows and converge to z = 1.96.
pub fn t_critical_95(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => f64::INFINITY,
        d if d <= 30 => TABLE[d - 1],
        d if d <= 40 => 2.021,
        d if d <= 60 => 2.000,
        d if d <= 120 => 1.980,
        _ => 1.960,
    }
}

/// 95% margin of error of the sample mean: `t * SE`.
pub fn margin_of_error_95(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return f64::INFINITY;
    }
    t_critical_95(xs.len() - 1) * standard_error(xs)
}

/// Sample skewness (g1, biased estimator). Near 0 for symmetric samples.
pub fn skewness(xs: &[f64]) -> f64 {
    let n = xs.len() as f64;
    if xs.len() < 3 {
        return 0.0;
    }
    let m = mean(xs);
    let m2 = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / n;
    let m3 = xs.iter().map(|x| (x - m).powi(3)).sum::<f64>() / n;
    if m2 == 0.0 {
        0.0
    } else {
        m3 / m2.powf(1.5)
    }
}

/// Excess kurtosis (g2, biased estimator). Near 0 for normal samples.
pub fn excess_kurtosis(xs: &[f64]) -> f64 {
    let n = xs.len() as f64;
    if xs.len() < 4 {
        return 0.0;
    }
    let m = mean(xs);
    let m2 = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / n;
    let m4 = xs.iter().map(|x| (x - m).powi(4)).sum::<f64>() / n;
    if m2 == 0.0 {
        0.0
    } else {
        m4 / (m2 * m2) - 3.0
    }
}

/// Moment-based near-normality screen: loose bounds on skewness and excess
/// kurtosis, the standard quick check for "normal or near normal"
/// campaign-rate distributions. Degenerate (zero-variance) samples pass —
/// a constant SDC rate has a trivially tight confidence interval.
pub fn looks_normal(xs: &[f64]) -> bool {
    if xs.len() < 4 {
        return false;
    }
    if sample_std_dev(xs) == 0.0 {
        return true;
    }
    skewness(xs).abs() < 2.0 && excess_kurtosis(xs).abs() < 4.0
}

/// The stopping rule of paper §IV-D: enough campaigns that the sample looks
/// normal and the 95% margin of error is within `target_margin`.
pub fn study_converged(samples: &[f64], target_margin: f64, min_campaigns: usize) -> bool {
    samples.len() >= min_campaigns
        && looks_normal(samples)
        && margin_of_error_95(samples) <= target_margin
}

/// Standard normal CDF via the Abramowitz & Stegun 7.1.26 erf
/// approximation (|error| < 1.5e-7 — far below anything a fault-injection
/// sample size can resolve).
pub fn normal_cdf(x: f64) -> f64 {
    let t = x / std::f64::consts::SQRT_2;
    0.5 * (1.0 + erf(t))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Wilson score interval at 95% confidence for a binomial proportion,
/// returned as `(lo, hi)` fractions in `[0, 1]`.
///
/// Unlike the Wald interval this stays inside `[0, 1]` and behaves at the
/// extremes (0 or n successes), which fault-injection cells routinely hit
/// (e.g. an all-benign control study). `n == 0` yields the fully
/// uninformative `(0, 1)`.
pub fn wilson_interval_95(successes: u64, n: u64) -> (f64, f64) {
    const Z: f64 = 1.96;
    if n == 0 {
        return (0.0, 1.0);
    }
    let nf = n as f64;
    let p = successes as f64 / nf;
    let z2 = Z * Z;
    let denom = 1.0 + z2 / nf;
    let center = (p + z2 / (2.0 * nf)) / denom;
    let half = Z * (p * (1.0 - p) / nf + z2 / (4.0 * nf * nf)).sqrt() / denom;
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// A two-proportion pooled z-test.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ZTest {
    pub z: f64,
    /// Two-sided p-value.
    pub p: f64,
}

/// Two-proportion pooled z-test: are `x1/n1` and `x2/n2` plausibly the
/// same underlying proportion?
///
/// Degenerate inputs (an empty sample, or a pooled proportion of exactly
/// 0 or 1, where the test statistic is undefined) report `z = 0, p = 1`:
/// no evidence of a difference.
pub fn two_proportion_z_test(x1: u64, n1: u64, x2: u64, n2: u64) -> ZTest {
    if n1 == 0 || n2 == 0 {
        return ZTest { z: 0.0, p: 1.0 };
    }
    let (n1f, n2f) = (n1 as f64, n2 as f64);
    let p1 = x1 as f64 / n1f;
    let p2 = x2 as f64 / n2f;
    let pooled = (x1 + x2) as f64 / (n1f + n2f);
    let se = (pooled * (1.0 - pooled) * (1.0 / n1f + 1.0 / n2f)).sqrt();
    if se == 0.0 {
        return ZTest { z: 0.0, p: 1.0 };
    }
    let z = (p1 - p2) / se;
    let p = 2.0 * (1.0 - normal_cdf(z.abs()));
    ZTest {
        z,
        p: p.clamp(0.0, 1.0),
    }
}

/// Summary statistics of a finished study.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StudySummary {
    pub mean: f64,
    pub std_dev: f64,
    pub margin_95: f64,
    pub campaigns: usize,
}

impl StudySummary {
    pub fn from_samples(xs: &[f64]) -> StudySummary {
        StudySummary {
            mean: mean(xs),
            std_dev: sample_std_dev(xs),
            margin_95: margin_of_error_95(xs),
            campaigns: xs.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        // Sample std dev with n-1 = 2.138...
        assert!((sample_std_dev(&xs) - 2.13809).abs() < 1e-4);
    }

    #[test]
    fn t_table_spot_checks() {
        assert!((t_critical_95(1) - 12.706).abs() < 1e-9);
        assert!((t_critical_95(19) - 2.093).abs() < 1e-9); // 20 campaigns
        assert!((t_critical_95(30) - 2.042).abs() < 1e-9);
        assert!((t_critical_95(1000) - 1.96).abs() < 1e-9);
        assert!(t_critical_95(0).is_infinite());
    }

    #[test]
    fn margin_shrinks_with_more_samples() {
        let tight: Vec<f64> = (0..20).map(|i| 30.0 + (i % 3) as f64).collect();
        let loose: Vec<f64> = (0..5).map(|i| 30.0 + (i % 3) as f64 * 8.0).collect();
        assert!(margin_of_error_95(&tight) < margin_of_error_95(&loose));
        assert!(margin_of_error_95(&[1.0]).is_infinite());
    }

    #[test]
    fn paper_stopping_rule() {
        // 20 campaigns with small spread: converged at ±3 pp.
        let xs: Vec<f64> = (0..20).map(|i| 40.0 + ((i * 7) % 5) as f64).collect();
        assert!(study_converged(&xs, 3.0, 4));
        // 3 campaigns: never converged (below min).
        assert!(!study_converged(&xs[..3], 3.0, 4));
        // Wild spread: not converged.
        let wild: Vec<f64> = (0..8)
            .map(|i| if i % 2 == 0 { 0.0 } else { 100.0 })
            .collect();
        assert!(!study_converged(&wild, 3.0, 4));
    }

    #[test]
    fn normality_screen() {
        let normalish: Vec<f64> = (0..30)
            .map(|i| {
                let x = (i as f64 / 29.0) * 2.0 - 1.0;
                50.0 + 10.0 * x // symmetric → skew ~0
            })
            .collect();
        assert!(looks_normal(&normalish));
        let constant = vec![42.0; 10];
        assert!(looks_normal(&constant));
        let skewed: Vec<f64> = (0..30).map(|i| if i < 29 { 0.0 } else { 1000.0 }).collect();
        assert!(!looks_normal(&skewed));
        assert!(!looks_normal(&[1.0, 2.0]));
    }

    #[test]
    fn normal_cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.9750021).abs() < 1e-4);
        assert!((normal_cdf(-1.96) - 0.0249979).abs() < 1e-4);
        assert!((normal_cdf(1.0) - 0.8413447).abs() < 1e-5);
        assert!(normal_cdf(8.0) > 0.999999);
        assert!(normal_cdf(-8.0) < 1e-6);
    }

    #[test]
    fn wilson_interval_known_values() {
        // 10/50 at 95%: the textbook Wilson interval is (0.1124, 0.3304).
        let (lo, hi) = wilson_interval_95(10, 50);
        assert!((lo - 0.1124).abs() < 1e-3, "lo = {lo}");
        assert!((hi - 0.3304).abs() < 1e-3, "hi = {hi}");
        // 0/20: lower bound pinned at 0, upper clearly positive (~0.161).
        let (lo, hi) = wilson_interval_95(0, 20);
        assert_eq!(lo, 0.0);
        assert!((hi - 0.1611).abs() < 1e-3, "hi = {hi}");
        // 20/20: symmetric to the above.
        let (lo, hi) = wilson_interval_95(20, 20);
        assert!((lo - 0.8389).abs() < 1e-3, "lo = {lo}");
        assert_eq!(hi, 1.0);
        // Degenerate sample: total uncertainty.
        assert_eq!(wilson_interval_95(0, 0), (0.0, 1.0));
        // More data tightens the interval around the same proportion.
        let (lo_s, hi_s) = wilson_interval_95(20, 100);
        let (lo_l, hi_l) = wilson_interval_95(200, 1000);
        assert!(hi_l - lo_l < hi_s - lo_s);
    }

    #[test]
    fn z_test_known_values() {
        // Classic worked example: 45/100 vs 30/100 → z ≈ 2.191, p ≈ 0.0285.
        let t = two_proportion_z_test(45, 100, 30, 100);
        assert!((t.z - 2.1909).abs() < 1e-3, "z = {}", t.z);
        assert!((t.p - 0.0285).abs() < 1e-3, "p = {}", t.p);
        // Identical proportions: z = 0, p = 1.
        let t = two_proportion_z_test(12, 60, 12, 60);
        assert_eq!(t.z, 0.0);
        assert!((t.p - 1.0).abs() < 1e-6);
        // Sign follows the first sample.
        assert!(two_proportion_z_test(10, 100, 40, 100).z < 0.0);
        // Degenerate pools are "no evidence", not NaN.
        assert_eq!(
            two_proportion_z_test(0, 50, 0, 50),
            ZTest { z: 0.0, p: 1.0 }
        );
        assert_eq!(
            two_proportion_z_test(50, 50, 50, 50),
            ZTest { z: 0.0, p: 1.0 }
        );
        assert_eq!(two_proportion_z_test(1, 0, 1, 10), ZTest { z: 0.0, p: 1.0 });
        // A huge, obvious difference is overwhelmingly significant.
        assert!(two_proportion_z_test(90, 100, 10, 100).p < 1e-6);
    }

    #[test]
    fn summary_roundtrip() {
        let xs = [10.0, 12.0, 11.0, 13.0, 9.0, 11.0];
        let s = StudySummary::from_samples(&xs);
        assert_eq!(s.campaigns, 6);
        assert!((s.mean - 11.0).abs() < 1e-9);
        assert!(s.margin_95 > 0.0);
    }
}
