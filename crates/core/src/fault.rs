//! Fault models: what the injector corrupts, beyond the paper's single
//! bit flip.
//!
//! The paper evaluates exactly one model — flip one random bit of one
//! uniformly chosen dynamic fault site (§II-B). Real silicon studies
//! also need multi-bit bursts, stuck-at faults, mask-register
//! corruption, address-line upsets, temporally correlated double flips,
//! and memory-cell upsets. [`FaultModel`] names each of those; the
//! campaign layer threads it from [`StudySpec`](crate::StudySpec)
//! through [`StudyConfig`](crate::StudyConfig) down to the injection
//! hook.
//!
//! Two mechanically different families share the enum:
//!
//! - **value models** ([`SingleBitFlip`](FaultModel::SingleBitFlip),
//!   [`MultiBitBurst`](FaultModel::MultiBitBurst),
//!   [`StuckAt`](FaultModel::StuckAt),
//!   [`TemporalPair`](FaultModel::TemporalPair)) corrupt the lane value
//!   handed to the instrumented `vulfi.inject` call — same dynamic-site
//!   census as the paper's model;
//! - **engine models** ([`MaskCorrupt`](FaultModel::MaskCorrupt),
//!   [`AddressLine`](FaultModel::AddressLine),
//!   [`MemoryCell`](FaultModel::MemoryCell)) corrupt interpreter state
//!   (mask registers, pointer operands, guarded memory) via the
//!   [`vexec::EngineInjector`] hook, with their own event census.
//!
//! Every model draws all randomness from the experiment RNG stream the
//! paper's model uses (target index + 64 bits of entropy), so studies
//! stay bit-reproducible across shard sizes and thread counts, and
//! `SingleBitFlip` remains byte-identical to the pre-model injector.

use vexec::Scalar;

/// Serialized names of every model kind, in [`FaultModel::kind_index`]
/// order (parameters elided) — the metrics dimension and the
/// valid-model list in parse errors.
pub const MODEL_KINDS: [&str; 7] = [
    "single-bit-flip",
    "multi-bit-burst",
    "stuck-at",
    "mask-corrupt",
    "address-line",
    "temporal-pair",
    "memory-cell",
];

/// A fault model. Serialized as a compact string:
/// `single-bit-flip`, `multi-bit-burst:W`, `stuck-at:B=V` (V ∈ 0|1),
/// `mask-corrupt`, `address-line:B`, `temporal-pair:G`, `memory-cell`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FaultModel {
    /// The paper's §II-B model: flip one random bit of the target
    /// dynamic site's lane value. The default; byte-identical to the
    /// pre-model injector.
    #[default]
    SingleBitFlip,
    /// Flip `width` contiguous bits starting at a random bit (wrapping
    /// within the lane's scalar type).
    MultiBitBurst { width: u32 },
    /// Force bit `bit` (mod the lane width) of the target value to
    /// `value`. May be a no-op when the bit already holds `value`.
    StuckAt { bit: u32, value: bool },
    /// Overwrite the whole mask register of the target masked intrinsic
    /// (masked load/store) with an entropy-derived lane pattern.
    MaskCorrupt,
    /// Flip bit `bit` of the address operand of the target guarded
    /// memory access (load/store, masked or not).
    AddressLine { bit: u32 },
    /// Two flips in the same run: the paper's flip at the target site,
    /// then a second flip at the first site executed at least `gap`
    /// dynamic instructions later.
    TemporalPair { gap: u64 },
    /// Flip one bit of one byte of live guarded memory once the faulty
    /// run reaches the target dynamic instruction.
    MemoryCell,
}

impl FaultModel {
    /// The model kind's serialized base name (parameters elided).
    pub fn kind(&self) -> &'static str {
        MODEL_KINDS[self.kind_index()]
    }

    /// Index into [`MODEL_KINDS`] — the fixed metrics dimension.
    pub fn kind_index(&self) -> usize {
        match self {
            FaultModel::SingleBitFlip => 0,
            FaultModel::MultiBitBurst { .. } => 1,
            FaultModel::StuckAt { .. } => 2,
            FaultModel::MaskCorrupt => 3,
            FaultModel::AddressLine { .. } => 4,
            FaultModel::TemporalPair { .. } => 5,
            FaultModel::MemoryCell => 6,
        }
    }

    /// The full serialized form, parameters included (inverse of
    /// [`FaultModel::parse`]).
    pub fn name(&self) -> String {
        match *self {
            FaultModel::SingleBitFlip => "single-bit-flip".to_string(),
            FaultModel::MultiBitBurst { width } => format!("multi-bit-burst:{width}"),
            FaultModel::StuckAt { bit, value } => {
                format!("stuck-at:{bit}={}", u8::from(value))
            }
            FaultModel::MaskCorrupt => "mask-corrupt".to_string(),
            FaultModel::AddressLine { bit } => format!("address-line:{bit}"),
            FaultModel::TemporalPair { gap } => format!("temporal-pair:{gap}"),
            FaultModel::MemoryCell => "memory-cell".to_string(),
        }
    }

    /// Parse a serialized model name. Errors name the offending input
    /// and enumerate every valid model so a typo in a spec or scenario
    /// is self-explanatory.
    pub fn parse(s: &str) -> Result<FaultModel, String> {
        let bad = |detail: &str| {
            Err(format!(
                "unknown fault model '{s}'{}{detail} (valid: single-bit-flip, \
                 multi-bit-burst:W, stuck-at:B=0|1, mask-corrupt, address-line:B, \
                 temporal-pair:G, memory-cell)",
                if detail.is_empty() { "" } else { ": " }
            ))
        };
        let (kind, arg) = match s.split_once(':') {
            Some((k, a)) => (k, Some(a)),
            None => (s, None),
        };
        let model = match (kind, arg) {
            ("single-bit-flip", None) => FaultModel::SingleBitFlip,
            ("mask-corrupt", None) => FaultModel::MaskCorrupt,
            ("memory-cell", None) => FaultModel::MemoryCell,
            ("multi-bit-burst", Some(a)) => match a.parse::<u32>() {
                Ok(width) => FaultModel::MultiBitBurst { width },
                Err(_) => return bad("burst width must be a number"),
            },
            ("multi-bit-burst", None) => return bad("needs a width, e.g. multi-bit-burst:3"),
            ("stuck-at", Some(a)) => match a.split_once('=') {
                Some((b, v)) => {
                    let bit = match b.parse::<u32>() {
                        Ok(bit) => bit,
                        Err(_) => return bad("stuck-at bit must be a number"),
                    };
                    let value = match v {
                        "0" => false,
                        "1" => true,
                        _ => return bad("stuck-at value must be 0 or 1"),
                    };
                    FaultModel::StuckAt { bit, value }
                }
                None => return bad("needs bit=value, e.g. stuck-at:3=1"),
            },
            ("stuck-at", None) => return bad("needs bit=value, e.g. stuck-at:3=1"),
            ("address-line", Some(a)) => match a.parse::<u32>() {
                Ok(bit) => FaultModel::AddressLine { bit },
                Err(_) => return bad("address-line bit must be a number"),
            },
            ("address-line", None) => return bad("needs a bit, e.g. address-line:12"),
            ("temporal-pair", Some(a)) => match a.parse::<u64>() {
                Ok(gap) => FaultModel::TemporalPair { gap },
                Err(_) => return bad("temporal-pair gap must be a number"),
            },
            ("temporal-pair", None) => return bad("needs a gap, e.g. temporal-pair:100"),
            _ => return bad(""),
        };
        model.validate()?;
        Ok(model)
    }

    /// Bounds checks on model parameters, with errors naming the limit.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            FaultModel::MultiBitBurst { width } if !(2..=64).contains(&width) => Err(format!(
                "multi-bit-burst width {width} out of range (2..=64; use \
                 single-bit-flip for width 1)"
            )),
            FaultModel::StuckAt { bit, .. } | FaultModel::AddressLine { bit } if bit >= 64 => {
                Err(format!("fault-model bit {bit} out of range (0..=63)"))
            }
            FaultModel::TemporalPair { gap: 0 } => {
                Err("temporal-pair gap must be at least 1 dynamic instruction".to_string())
            }
            _ => Ok(()),
        }
    }

    /// True for the models the interpreter (not the instrumented inject
    /// hook) applies: mask, address, and memory corruption.
    pub fn is_engine_model(&self) -> bool {
        matches!(
            self,
            FaultModel::MaskCorrupt | FaultModel::AddressLine { .. } | FaultModel::MemoryCell
        )
    }

    /// Apply a value model to one lane scalar, returning the corrupted
    /// scalar and the primary bit coordinate to record. Engine models
    /// never reach this path and return the value unchanged.
    pub fn mutate_value(&self, val: Scalar, entropy: u64) -> (Scalar, u32) {
        let width = val.ty.bits() as u64;
        match *self {
            // TemporalPair's first flip is the paper's flip; the second
            // is applied by the host's pending-flip state.
            FaultModel::SingleBitFlip | FaultModel::TemporalPair { .. } => {
                let bit = (entropy % width) as u32;
                (val.flip_bit(bit), bit)
            }
            FaultModel::MultiBitBurst { width: burst } => {
                let start = (entropy % width) as u32;
                let mut out = val;
                for k in 0..burst.min(width as u32) {
                    out = out.flip_bit((start + k) % width as u32);
                }
                (out, start)
            }
            FaultModel::StuckAt { bit, value } => {
                let b = bit % width as u32;
                let bits = if value {
                    val.bits | (1u64 << b)
                } else {
                    val.bits & !(1u64 << b)
                };
                (Scalar::new(val.ty, bits), b)
            }
            FaultModel::MaskCorrupt | FaultModel::AddressLine { .. } | FaultModel::MemoryCell => {
                (val, 0)
            }
        }
    }
}

impl std::fmt::Display for FaultModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name())
    }
}

impl serde::Serialize for FaultModel {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.name())
    }
}

impl serde::Deserialize for FaultModel {
    fn from_value(v: &serde::Value) -> Result<FaultModel, serde::DeError> {
        let s = String::from_value(v)?;
        FaultModel::parse(&s).map_err(serde::DeError)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vir::ScalarTy;

    #[test]
    fn names_round_trip_through_parse() {
        let models = [
            FaultModel::SingleBitFlip,
            FaultModel::MultiBitBurst { width: 3 },
            FaultModel::StuckAt {
                bit: 7,
                value: true,
            },
            FaultModel::StuckAt {
                bit: 0,
                value: false,
            },
            FaultModel::MaskCorrupt,
            FaultModel::AddressLine { bit: 12 },
            FaultModel::TemporalPair { gap: 100 },
            FaultModel::MemoryCell,
        ];
        for m in models {
            assert_eq!(FaultModel::parse(&m.name()).unwrap(), m, "{m}");
            // serde round-trip through the vendored Value tree.
            use serde::{Deserialize as _, Serialize as _};
            let back = FaultModel::from_value(&m.to_value()).unwrap();
            assert_eq!(back, m);
        }
    }

    #[test]
    fn parse_errors_list_valid_models() {
        for bad in [
            "bit-rot",
            "multi-bit-burst",
            "multi-bit-burst:x",
            "multi-bit-burst:1",
            "multi-bit-burst:65",
            "stuck-at",
            "stuck-at:3",
            "stuck-at:3=2",
            "stuck-at:64=1",
            "address-line",
            "address-line:64",
            "temporal-pair:0",
            "single-bit-flip:1",
        ] {
            let e = FaultModel::parse(bad).unwrap_err();
            assert!(
                e.contains("single-bit-flip")
                    && e.contains("mask-corrupt")
                    && e.contains("memory-cell")
                    || e.contains("out of range")
                    || e.contains("at least 1"),
                "error for '{bad}' must name valid models or the bound: {e}"
            );
        }
    }

    #[test]
    fn kind_index_spans_the_metrics_dimension() {
        let all = [
            FaultModel::SingleBitFlip,
            FaultModel::MultiBitBurst { width: 2 },
            FaultModel::StuckAt {
                bit: 1,
                value: false,
            },
            FaultModel::MaskCorrupt,
            FaultModel::AddressLine { bit: 1 },
            FaultModel::TemporalPair { gap: 1 },
            FaultModel::MemoryCell,
        ];
        for (i, m) in all.iter().enumerate() {
            assert_eq!(m.kind_index(), i);
            assert_eq!(m.kind(), MODEL_KINDS[i]);
            assert!(m.name().starts_with(MODEL_KINDS[i]));
        }
    }

    #[test]
    fn value_mutations_are_deterministic_and_bounded() {
        let v = Scalar::new(ScalarTy::F32, 0x3f80_0000);
        let (flipped, bit) = FaultModel::SingleBitFlip.mutate_value(v, 37);
        assert_eq!(bit, 37 % 32);
        assert_eq!(flipped.bits ^ v.bits, 1 << bit);

        // A burst flips exactly `width` distinct bits (wrapping).
        let (burst, start) = FaultModel::MultiBitBurst { width: 3 }.mutate_value(v, 31);
        assert_eq!(start, 31);
        assert_eq!(
            burst.bits ^ v.bits,
            (1 << 31) | (1 << 0) | (1 << 1),
            "burst wraps within the lane"
        );

        // Stuck-at to the current value is a no-op; to the other is one
        // bit.
        let (same, _) = FaultModel::StuckAt {
            bit: 23,
            value: true,
        }
        .mutate_value(v, 0);
        assert_eq!(same.bits, v.bits, "bit 23 of 1.0f32 is already set");
        let (forced, b) = FaultModel::StuckAt {
            bit: 23,
            value: false,
        }
        .mutate_value(v, 0);
        assert_eq!(forced.bits, v.bits & !(1 << 23));
        assert_eq!(b, 23);

        // Engine models never mutate register values.
        for m in [
            FaultModel::MaskCorrupt,
            FaultModel::AddressLine { bit: 3 },
            FaultModel::MemoryCell,
        ] {
            assert_eq!(m.mutate_value(v, 99).0.bits, v.bits);
        }
    }
}
