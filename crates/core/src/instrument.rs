//! The VULFI instrumentation pass (paper §II-D, Figs. 4–5).
//!
//! For every selected fault site the pass splices a call to the runtime
//! fault-injection API into the instruction stream:
//!
//! - a **scalar Lvalue** gets a single
//!   `%inj = call T @vulfi.inject.<ty>(T %v, <mask>, i64 site, i32 lane)`
//!   and all users of `%v` are redirected to `%inj`;
//! - a **vector Lvalue** is cloned lane by lane — `extractelement` the
//!   scalar, extract its execution-mask element (for masked intrinsics),
//!   call the runtime API, `insertelement` the result back — exactly the
//!   workflow of paper Fig. 4, producing IR shaped like paper Fig. 5;
//! - a **store's value operand** gets the same treatment *before* the
//!   store, and only the store's operand is redirected (the defining
//!   instruction's own Lvalue site covers the other users).
//!
//! Masked vector operations pass each lane's execution-mask element to the
//! runtime so that masked-off lanes are never counted as fault sites. The
//! `mask_aware` flag exists as an ablation: switching it off reproduces a
//! scalar-era injector that targets dead lanes too.

use vir::analysis::SiteCategory;
use vir::{Constant, FuncDecl, Function, InstId, InstKind, Module, Operand, ScalarTy, Type};

use crate::sites::{enumerate_operand_sites, enumerate_sites, SiteKind, StaticSite};

/// What the injector targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TargetMode {
    /// Instruction Lvalues plus store value operands — the paper's fault
    /// model (§II-B).
    #[default]
    Lvalue,
    /// Every source operand of every instruction — the ablation used to
    /// check the paper's claim that Lvalue targeting subsumes
    /// operand/unit faults.
    SourceOperands,
}

/// Options for the instrumentation pass.
#[derive(Debug, Clone, Copy)]
pub struct InstrumentOptions {
    /// Which fault-site category to target (paper §II-C heuristics).
    pub category: SiteCategory,
    /// Honor execution masks (VULFI behaviour). `false` is the ablation
    /// that ignores masks.
    pub mask_aware: bool,
    /// Lvalue (paper) vs source-operand (ablation) targeting.
    pub mode: TargetMode,
}

impl InstrumentOptions {
    pub fn new(category: SiteCategory) -> InstrumentOptions {
        InstrumentOptions {
            category,
            mask_aware: true,
            mode: TargetMode::Lvalue,
        }
    }

    pub fn operands(category: SiteCategory) -> InstrumentOptions {
        InstrumentOptions {
            category,
            mask_aware: true,
            mode: TargetMode::SourceOperands,
        }
    }
}

/// Result of instrumenting a module.
#[derive(Debug, Clone)]
pub struct Instrumented {
    /// The instrumented sites, in site-id order.
    pub sites: Vec<StaticSite>,
}

/// Runtime API function name for an element type.
pub fn inject_fn_name(elem: ScalarTy) -> String {
    format!("vulfi.inject.{}", elem.suffix())
}

/// Declare the runtime API functions in `m`.
pub fn declare_runtime(m: &mut Module) {
    for elem in [
        ScalarTy::I1,
        ScalarTy::I8,
        ScalarTy::I16,
        ScalarTy::I32,
        ScalarTy::I64,
        ScalarTy::F32,
        ScalarTy::F64,
        ScalarTy::Ptr,
    ] {
        m.declare(FuncDecl {
            name: inject_fn_name(elem),
            ret: Type::Scalar(elem),
            params: vec![Type::Scalar(elem)],
            vararg: true,
        });
    }
}

/// Instrument `func` in `m`, targeting sites in `opts.category`.
/// Returns the instrumented site list (ids match the `site` argument the
/// runtime receives).
pub fn instrument_module(
    m: &mut Module,
    func: &str,
    opts: InstrumentOptions,
) -> Result<Instrumented, String> {
    declare_runtime(m);
    let f = m
        .function_mut(func)
        .ok_or_else(|| format!("no function @{func}"))?;
    let all_sites = match opts.mode {
        TargetMode::Lvalue => enumerate_sites(f),
        TargetMode::SourceOperands => enumerate_operand_sites(f),
    };
    let selected: Vec<StaticSite> = all_sites
        .into_iter()
        .filter(|s| s.in_category(opts.category))
        .collect();
    for site in &selected {
        instrument_site(f, site, opts.mask_aware);
    }
    if let Err(e) = vir::verify::verify_module(m) {
        return Err(format!("instrumentation broke the module: {e}"));
    }
    Ok(Instrumented { sites: selected })
}

/// Where to splice the chain.
enum Splice {
    After(InstId),
    Before(InstId),
}

fn instrument_site(f: &mut Function, site: &StaticSite, mask_aware: bool) {
    let block = f
        .block_of(site.inst)
        .expect("site instruction must be placed");

    // The value being targeted and the splice position.
    let (value_op, splice) = match site.kind {
        SiteKind::Lvalue => {
            let result = f.inst(site.inst).result.expect("lvalue site has result");
            let anchor = if f.inst(site.inst).is_phi() {
                // Chains cannot sit between phis: anchor after the last phi.
                *f.block(block)
                    .insts
                    .iter()
                    .take_while(|&&i| f.inst(i).is_phi())
                    .last()
                    .expect("phi block has phis")
            } else {
                site.inst
            };
            (Operand::Value(result), Splice::After(anchor))
        }
        SiteKind::StoreValue { operand_index } => {
            let op = f
                .inst(site.inst)
                .operand_at(operand_index)
                .expect("operand site index valid")
                .clone();
            (op, Splice::Before(site.inst))
        }
    };

    // Execution-mask operand (a vector register) if present and honored.
    let mask_op: Option<Operand> = if mask_aware {
        site.mask.map(|ms| match &f.inst(site.inst).kind {
            InstKind::Call { args, .. } => args[ms.arg_index].clone(),
            _ => unreachable!("mask source on non-call"),
        })
    } else {
        None
    };

    let elem = site.elem();
    let callee = inject_fn_name(elem);
    let site_const: Operand = Constant::i64(site.id as i64).into();

    let mut chain: Vec<InstId> = Vec::new();
    let result_op: Operand = if site.ty.is_vector() {
        // Per-lane clone-and-instrument workflow (paper Fig. 4).
        let lanes = site.lanes();
        let mut prev = value_op;
        for k in 0..lanes {
            let k_const: Operand = Constant::i32(k as i32).into();
            let ext = f.create_inst(
                InstKind::ExtractElement {
                    vec: prev.clone(),
                    idx: k_const.clone(),
                },
                Type::Scalar(elem),
                Some(format!("ext{k}.s{}", site.id)),
            );
            chain.push(ext);
            let ext_val = Operand::Value(f.inst(ext).result.unwrap());
            let mask_elt: Operand = match &mask_op {
                Some(mv) => {
                    let mask_elem = f.operand_type(mv).elem().expect("vector mask");
                    let me = f.create_inst(
                        InstKind::ExtractElement {
                            vec: mv.clone(),
                            idx: k_const.clone(),
                        },
                        Type::Scalar(mask_elem),
                        Some(format!("extmask{k}.s{}", site.id)),
                    );
                    chain.push(me);
                    Operand::Value(f.inst(me).result.unwrap())
                }
                None => Constant::bool(true).into(),
            };
            let call = f.create_inst(
                InstKind::Call {
                    callee: callee.clone(),
                    args: vec![ext_val, mask_elt, site_const.clone(), k_const.clone()],
                },
                Type::Scalar(elem),
                Some(format!("inj{k}.s{}", site.id)),
            );
            chain.push(call);
            let call_val = Operand::Value(f.inst(call).result.unwrap());
            let ins = f.create_inst(
                InstKind::InsertElement {
                    vec: prev.clone(),
                    elt: call_val,
                    idx: k_const,
                },
                site.ty,
                Some(format!("ins{k}.s{}", site.id)),
            );
            chain.push(ins);
            prev = Operand::Value(f.inst(ins).result.unwrap());
        }
        prev
    } else {
        let call = f.create_inst(
            InstKind::Call {
                callee,
                args: vec![
                    value_op,
                    Constant::bool(true).into(),
                    site_const,
                    Constant::i32(0).into(),
                ],
            },
            site.ty,
            Some(format!("inj.s{}", site.id)),
        );
        chain.push(call);
        Operand::Value(f.inst(call).result.unwrap())
    };

    // Splice the chain into the block, preserving order.
    match splice {
        Splice::After(mut anchor) => {
            for &c in &chain {
                f.insert_after(block, anchor, c);
                anchor = c;
            }
        }
        Splice::Before(target) => {
            for &c in &chain {
                f.insert_before(block, target, c);
            }
        }
    }

    // Redirect users.
    match site.kind {
        SiteKind::Lvalue => {
            let result = f.inst(site.inst).result.unwrap();
            f.replace_uses(result, result_op, &chain);
        }
        SiteKind::StoreValue { operand_index } => {
            let ok = f
                .inst_mut(site.inst)
                .set_operand_at(operand_index, result_op);
            debug_assert!(ok, "operand index valid");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vir::printer::print_module;

    fn parse(src: &str) -> Module {
        vir::parser::parse_module(src).unwrap()
    }

    const SCALAR_LOOP: &str = r#"
define i32 @sum(ptr %a, i32 %n) {
entry:
  br label %header
header:
  %i = phi i32 [ 0, %entry ], [ %i2, %body ]
  %acc = phi i32 [ 0, %entry ], [ %acc2, %body ]
  %cond = icmp slt i32 %i, %n
  br i1 %cond, label %body, label %exit
body:
  %p = getelementptr i32, ptr %a, i32 %i
  %v = load i32, ptr %p
  %acc2 = add i32 %acc, %v
  %i2 = add i32 %i, 1
  br label %header
exit:
  ret i32 %acc
}
"#;

    #[test]
    fn instruments_scalar_lvalues_and_verifies() {
        for cat in SiteCategory::ALL {
            let mut m = parse(SCALAR_LOOP);
            let r = instrument_module(&mut m, "sum", InstrumentOptions::new(cat)).unwrap();
            assert!(!r.sites.is_empty(), "{cat} selected no sites");
            let text = print_module(&m);
            assert!(text.contains("@vulfi.inject.i32"), "{text}");
        }
    }

    #[test]
    fn pure_data_instrumentation_excludes_control_values() {
        let mut m = parse(SCALAR_LOOP);
        let r = instrument_module(
            &mut m,
            "sum",
            InstrumentOptions::new(SiteCategory::PureData),
        )
        .unwrap();
        let f = m.function("sum").unwrap();
        for s in &r.sites {
            // None of the pure-data sites may be named i/i2/cond/p.
            if let Some(res) = f.inst(s.inst).result {
                let name = f.value(res).name.clone().unwrap_or_default();
                assert!(
                    !["i", "i2", "cond", "p"].contains(&name.as_str()),
                    "{name} wrongly selected as pure-data"
                );
            }
        }
    }

    #[test]
    fn vector_site_produces_fig5_chain() {
        let src = r#"
declare <8 x float> @llvm.x86.avx.maskload.ps.256(ptr, <8 x float>)
declare void @llvm.x86.avx.maskstore.ps.256(ptr, <8 x float>, <8 x float>)

define void @copy(ptr %s, ptr %d, <8 x float> %floatmask.i) {
entry:
  %0 = call <8 x float> @llvm.x86.avx.maskload.ps.256(ptr %s, <8 x float> %floatmask.i)
  call void @llvm.x86.avx.maskstore.ps.256(ptr %d, <8 x float> %floatmask.i, <8 x float> %0)
  ret void
}
"#;
        let mut m = parse(src);
        let r = instrument_module(
            &mut m,
            "copy",
            InstrumentOptions::new(SiteCategory::PureData),
        )
        .unwrap();
        assert_eq!(r.sites.len(), 2); // maskload Lvalue + maskstore value
        let text = print_module(&m);
        // Per-lane extract of both value and mask, as in paper Fig. 5(B).
        assert!(
            text.contains("extractelement <8 x float> %0, i32 0"),
            "{text}"
        );
        assert!(
            text.contains("extractelement <8 x float> %floatmask.i, i32 0"),
            "{text}"
        );
        assert!(
            text.contains("call float @vulfi.inject.f32(float"),
            "{text}"
        );
        assert!(text.contains("insertelement <8 x float>"), "{text}");
        // 8 lanes × 2 sites = 16 inject calls.
        assert_eq!(text.matches("@vulfi.inject.f32(").count(), 16 + 1, "{text}"); // +1 declare
                                                                                  // The maskstore's stored value must now be the final insertelement.
        assert!(
            text.contains("<8 x float> %floatmask.i, <8 x float> %ins7.s1)"),
            "{text}"
        );
    }

    #[test]
    fn unmasked_vector_ops_get_constant_true_mask() {
        let src = r#"
define <4 x i32> @v(<4 x i32> %a) {
entry:
  %b = add <4 x i32> %a, %a
  ret <4 x i32> %b
}
"#;
        let mut m = parse(src);
        instrument_module(&mut m, "v", InstrumentOptions::new(SiteCategory::PureData)).unwrap();
        let text = print_module(&m);
        assert!(
            text.contains("call i32 @vulfi.inject.i32(i32 %ext0.s0, i1 true"),
            "{text}"
        );
    }

    #[test]
    fn phi_lvalues_are_instrumented_after_phi_group() {
        let mut m = parse(SCALAR_LOOP);
        instrument_module(&mut m, "sum", InstrumentOptions::new(SiteCategory::Control)).unwrap();
        vir::verify::verify_module(&m).unwrap();
        let f = m.function("sum").unwrap();
        let header = f.block_by_name("header").unwrap();
        let insts = &f.block(header).insts;
        // Phis must still be a contiguous prefix.
        let mut seen_non_phi = false;
        for &iid in insts {
            if f.inst(iid).is_phi() {
                assert!(!seen_non_phi, "phi after non-phi");
            } else {
                seen_non_phi = true;
            }
        }
    }

    #[test]
    fn instrumented_module_executes_transparently_without_injection() {
        use vexec::{HostEnv, Interp, Memory, RtVal, Scalar, Trap};
        struct Passthrough;
        impl HostEnv for Passthrough {
            fn call(
                &mut self,
                name: &str,
                args: &[RtVal],
                _mem: &mut Memory,
            ) -> Result<Option<RtVal>, Trap> {
                assert!(name.starts_with("vulfi.inject."));
                Ok(Some(args[0].clone()))
            }
        }
        let mut m = parse(SCALAR_LOOP);
        instrument_module(&mut m, "sum", InstrumentOptions::new(SiteCategory::Control)).unwrap();
        let mut interp = Interp::new(&m);
        let a = interp.mem.alloc_i32_slice(&[5, 6, 7]).unwrap();
        let r = interp
            .run(
                "sum",
                &[RtVal::Scalar(Scalar::ptr(a)), RtVal::Scalar(Scalar::i32(3))],
                &mut Passthrough,
            )
            .unwrap();
        assert_eq!(r.ret.unwrap().scalar().as_i64(), 18);
    }

    #[test]
    fn mask_oblivious_ablation_drops_mask_extracts() {
        let src = r#"
declare <8 x float> @llvm.x86.avx.maskload.ps.256(ptr, <8 x float>)

define <8 x float> @ld(ptr %s, <8 x float> %m) {
entry:
  %v = call <8 x float> @llvm.x86.avx.maskload.ps.256(ptr %s, <8 x float> %m)
  ret <8 x float> %v
}
"#;
        let mut m = parse(src);
        let opts = InstrumentOptions {
            category: SiteCategory::PureData,
            mask_aware: false,
            mode: TargetMode::Lvalue,
        };
        instrument_module(&mut m, "ld", opts).unwrap();
        let text = print_module(&m);
        assert!(!text.contains("extractelement <8 x float> %m"), "{text}");
        assert!(text.contains("i1 true"), "{text}");
    }
}

#[cfg(test)]
mod operand_mode_tests {
    use super::*;
    use crate::runtime::VulfiHost;
    use vexec::{Interp, RtVal, Scalar};

    const LOOP_SRC: &str = r#"
define i32 @sum(ptr %a, i32 %n) {
entry:
  br label %header
header:
  %i = phi i32 [ 0, %entry ], [ %i2, %body ]
  %acc = phi i32 [ 0, %entry ], [ %acc2, %body ]
  %cond = icmp slt i32 %i, %n
  br i1 %cond, label %body, label %exit
body:
  %p = getelementptr i32, ptr %a, i32 %i
  %v = load i32, ptr %p
  %acc2 = add i32 %acc, %v
  %i2 = add i32 %i, 1
  br label %header
exit:
  ret i32 %acc
}
"#;

    #[test]
    fn operand_mode_selects_more_sites_than_lvalue_mode() {
        // Every value is defined once but used possibly many times, and
        // constants become sites too: across all categories, operand mode
        // enumerates more sites.
        let m = vir::parser::parse_module(LOOP_SRC).unwrap();
        let f = m.function("sum").unwrap();
        let lv = crate::sites::enumerate_sites(f);
        let op = crate::sites::enumerate_operand_sites(f);
        assert!(
            op.len() > lv.len(),
            "operand {} vs lvalue {}",
            op.len(),
            lv.len()
        );
    }

    #[test]
    fn operand_mode_is_transparent_and_runnable() {
        let mut m = vir::parser::parse_module(LOOP_SRC).unwrap();
        instrument_module(
            &mut m,
            "sum",
            InstrumentOptions::operands(SiteCategory::Control),
        )
        .unwrap();
        vir::verify::verify_module(&m).unwrap();
        let mut interp = Interp::new(&m);
        let a = interp.mem.alloc_i32_slice(&[5, 6, 7]).unwrap();
        let mut host = VulfiHost::profile();
        let r = interp
            .run(
                "sum",
                &[RtVal::Scalar(Scalar::ptr(a)), RtVal::Scalar(Scalar::i32(3))],
                &mut host,
            )
            .unwrap();
        assert_eq!(r.ret.unwrap().scalar().as_i64(), 18);
        assert!(host.dynamic_sites > 0);
    }

    #[test]
    fn operand_mode_instruments_constants_too() {
        let src = r#"
define i32 @f(i32 %x) {
entry:
  %y = add i32 %x, 41
  ret i32 %y
}
"#;
        let mut m = vir::parser::parse_module(src).unwrap();
        let r = instrument_module(
            &mut m,
            "f",
            InstrumentOptions::operands(SiteCategory::PureData),
        )
        .unwrap();
        // Both the %x use and the literal 41 are operand sites.
        assert_eq!(r.sites.len(), 2);
        // Injecting into the constant operand corrupts the result.
        let mut interp = Interp::new(&m);
        let mut host = VulfiHost::inject(2, 0); // second site = the constant, bit 0
        let out = interp
            .run("f", &[RtVal::Scalar(Scalar::i32(1))], &mut host)
            .unwrap();
        assert_eq!(out.ret.unwrap().scalar().as_i64(), 1 + 40); // 41 ^ 1 = 40
    }

    #[test]
    fn phi_and_terminator_operands_are_not_operand_sites() {
        let m = vir::parser::parse_module(LOOP_SRC).unwrap();
        let f = m.function("sum").unwrap();
        let sites = crate::sites::enumerate_operand_sites(f);
        for s in &sites {
            assert!(!f.inst(s.inst).is_phi(), "phi operand became a site");
        }
    }
}
