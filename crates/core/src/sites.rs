//! Fault-site enumeration and classification (paper §II-B, §II-C).
//!
//! A *static fault site* is an instruction Lvalue (or a store's value
//! operand — stores have no Lvalue) of integer, float, or pointer type. A
//! vector Lvalue contributes one scalar fault site per lane. Each static
//! site is classified by the forward slice of its register into the
//! pure-data / control / address categories, and masked vector operations
//! record where their execution mask comes from so that instrumentation
//! can skip inactive lanes.

use vir::analysis::{SiteCategory, SiteFlags, SliceAnalysis};
use vir::intrinsics::{self, Intrinsic};
use vir::{Function, InstId, InstKind, Operand, ScalarTy, Type};

/// What part of the instruction is the fault target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteKind {
    /// The instruction's result register.
    Lvalue,
    /// The value operand of a `store` (instrumented *prior to* the store,
    /// paper §II-B) — `operand_index` identifies it for masked intrinsics.
    StoreValue { operand_index: usize },
}

/// Where the execution mask of a masked vector operation lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaskSource {
    /// Index of the mask argument in the call.
    pub arg_index: usize,
}

/// One static fault site.
#[derive(Debug, Clone)]
pub struct StaticSite {
    /// Dense id; doubles as the site identifier passed to the runtime.
    pub id: u32,
    pub inst: InstId,
    pub kind: SiteKind,
    /// Value type at the site (vector type → one fault site per lane).
    pub ty: Type,
    /// Slice-derived category evidence.
    pub flags: SiteFlags,
    /// Execution-mask source for masked vector intrinsics.
    pub mask: Option<MaskSource>,
    /// Vector instruction per the paper's §II-A definition.
    pub is_vector_inst: bool,
}

impl StaticSite {
    /// Number of scalar fault sites this static site contributes.
    pub fn lanes(&self) -> u32 {
        self.ty.lanes()
    }

    pub fn elem(&self) -> ScalarTy {
        self.ty.elem().expect("site with void type")
    }

    pub fn in_category(&self, cat: SiteCategory) -> bool {
        cat.matches(self.flags)
    }
}

/// Should this call's Lvalue/operands be exempt from fault injection?
/// VULFI's own runtime API and the detector runtime are infrastructure,
/// not program state.
pub fn is_infrastructure_call(name: &str) -> bool {
    name.starts_with("vulfi.")
}

/// Enumerate every static fault site of `f`, in layout order.
pub fn enumerate_sites(f: &Function) -> Vec<StaticSite> {
    let mut sa = SliceAnalysis::new(f);
    let mut out = Vec::new();
    let mut next_id = 0u32;
    for (_, iid) in f.placed_insts() {
        let inst = f.inst(iid);
        let is_vector_inst = f.inst_is_vector(iid);

        // Calls need special handling: masked intrinsics expose masks;
        // infrastructure calls are skipped entirely.
        let mut mask = None;
        let mut store_value: Option<usize> = None;
        if let InstKind::Call { callee, args } = &inst.kind {
            if is_infrastructure_call(callee) {
                continue;
            }
            if let Some(intr) = intrinsics::parse(callee) {
                if let Some(m) = intr.mask_arg() {
                    mask = Some(MaskSource { arg_index: m });
                }
                if let Intrinsic::MaskStore { .. } = intr {
                    store_value = intr.store_value_arg();
                }
            }
            let _ = args;
        }

        // Store-like: the value operand is the site.
        let store_val_op: Option<(usize, Operand)> = match &inst.kind {
            InstKind::Store { val, .. } => Some((0, val.clone())),
            InstKind::Call { args, .. } => store_value.map(|ix| (ix, args[ix].clone())),
            _ => None,
        };
        if let Some((ix, val)) = store_val_op {
            let ty = f.operand_type(&val);
            if !ty.is_void() {
                // The register being stored carries its defining value's
                // forward-slice classification; constants are pure data.
                let flags = match val.value() {
                    Some(v) => sa.classify(v),
                    None => SiteFlags::default(),
                };
                out.push(StaticSite {
                    id: next_id,
                    inst: iid,
                    kind: SiteKind::StoreValue { operand_index: ix },
                    ty,
                    flags,
                    mask,
                    is_vector_inst,
                });
                next_id += 1;
            }
            continue;
        }

        // Ordinary Lvalue sites.
        let Some(result) = inst.result else { continue };
        if inst.ty.is_void() {
            continue;
        }
        let flags = sa.classify(result);
        out.push(StaticSite {
            id: next_id,
            inst: iid,
            kind: SiteKind::Lvalue,
            ty: inst.ty,
            flags,
            mask,
            is_vector_inst,
        });
        next_id += 1;
    }
    out
}

/// Enumerate *source-operand* fault sites: one site per value operand of
/// every instruction. This is the ablation counterpart of the paper's
/// Lvalue fault model (§II-B argues Lvalue targeting subsumes operand and
/// unit faults; `enumerate_operand_sites` lets the study check that claim
/// empirically). Phi operands and terminator operands are excluded (no
/// legal splice point), as are masked execution-mask arguments' lane
/// semantics — operand-mode chains always run with a constant-true mask.
pub fn enumerate_operand_sites(f: &Function) -> Vec<StaticSite> {
    let mut sa = SliceAnalysis::new(f);
    let mut out = Vec::new();
    let mut next_id = 0u32;
    for (_, iid) in f.placed_insts() {
        let inst = f.inst(iid);
        if inst.is_phi() {
            continue;
        }
        if let InstKind::Call { callee, .. } = &inst.kind {
            if is_infrastructure_call(callee) {
                continue;
            }
        }
        let is_vector_inst = f.inst_is_vector(iid);
        for (ix, op) in inst.operands().iter().enumerate() {
            let ty = f.operand_type(op);
            if ty.is_void() {
                continue;
            }
            let flags = match op.value() {
                Some(v) => sa.classify(v),
                None => SiteFlags::default(),
            };
            out.push(StaticSite {
                id: next_id,
                inst: iid,
                kind: SiteKind::StoreValue { operand_index: ix },
                ty,
                flags,
                mask: None,
                is_vector_inst,
            });
            next_id += 1;
        }
    }
    out
}

/// Static-composition summary used to regenerate the paper's Fig. 10: per
/// category, how many candidate instructions are vector vs scalar.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CategoryMix {
    pub vector: u64,
    pub scalar: u64,
}

impl CategoryMix {
    pub fn total(&self) -> u64 {
        self.vector + self.scalar
    }

    /// Percentage of vector instructions (0..=100).
    pub fn vector_pct(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            100.0 * self.vector as f64 / self.total() as f64
        }
    }
}

/// Compute the scalar/vector composition of the candidate fault sites per
/// category (Fig. 10's metric).
pub fn category_mix(sites: &[StaticSite]) -> [(SiteCategory, CategoryMix); 3] {
    let mut out = [
        (SiteCategory::PureData, CategoryMix::default()),
        (SiteCategory::Control, CategoryMix::default()),
        (SiteCategory::Address, CategoryMix::default()),
    ];
    for s in sites {
        for (cat, mix) in out.iter_mut() {
            if s.in_category(*cat) {
                if s.is_vector_inst {
                    mix.vector += 1;
                } else {
                    mix.scalar += 1;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vir::builder::FuncBuilder;
    use vir::{Constant, ICmpPred, Type};

    /// foo() from paper Fig. 3 (loop over a[], multiply by s).
    fn fig3() -> Function {
        let mut b = FuncBuilder::new(
            "foo",
            vec![
                ("a".into(), Type::PTR),
                ("n".into(), Type::I32),
                ("x".into(), Type::I32),
            ],
            Type::Void,
        );
        let entry = b.add_block("entry");
        let header = b.add_block("header");
        let body = b.add_block("body");
        let exit = b.add_block("exit");
        b.position_at(entry);
        b.br(header);
        b.position_at(header);
        let i = b.phi(Type::I32, "i");
        let s = b.phi(Type::I32, "s");
        let cond = b.icmp(ICmpPred::Slt, i.clone(), b.param(1), "cond");
        b.cond_br(cond, body, exit);
        b.position_at(body);
        let p = b.gep(Type::I32, b.param(0), i.clone(), "p");
        let av = b.load(Type::I32, p.clone(), "av");
        let prod = b.bin(vir::BinOp::Mul, av, s.clone(), "prod");
        b.store(prod, p);
        let s2 = b.bin(vir::BinOp::Add, s.clone(), i.clone(), "s2");
        let i2 = b.bin(vir::BinOp::Add, i.clone(), Constant::i32(1).into(), "i2");
        b.br(header);
        b.add_incoming(&i, entry, Constant::i32(0).into());
        b.add_incoming(&i, body, i2);
        b.add_incoming(&s, entry, b.param(2));
        b.add_incoming(&s, body, s2);
        b.position_at(exit);
        b.ret(None);
        b.finish()
    }

    #[test]
    fn enumerates_lvalues_and_store_value() {
        let f = fig3();
        let sites = enumerate_sites(&f);
        // i, s, cond, p, av, prod, store-value, s2, i2 = 9 sites.
        assert_eq!(sites.len(), 9);
        let store_sites: Vec<_> = sites
            .iter()
            .filter(|s| matches!(s.kind, SiteKind::StoreValue { .. }))
            .collect();
        assert_eq!(store_sites.len(), 1);
        // Site ids are dense and ordered.
        for (k, s) in sites.iter().enumerate() {
            assert_eq!(s.id as usize, k);
        }
    }

    #[test]
    fn classification_matches_paper_example() {
        let f = fig3();
        let sites = enumerate_sites(&f);
        let by_name = |name: &str| -> &StaticSite {
            sites
                .iter()
                .find(|s| {
                    f.inst(s.inst)
                        .result
                        .is_some_and(|r| f.value(r).name.as_deref() == Some(name))
                })
                .unwrap()
        };
        let i = by_name("i");
        assert!(i.in_category(SiteCategory::Control));
        assert!(i.in_category(SiteCategory::Address));
        assert!(!i.in_category(SiteCategory::PureData));
        let s = by_name("s");
        assert!(s.in_category(SiteCategory::PureData));
        // The pointer register itself is an address site.
        let p = by_name("p");
        assert!(p.in_category(SiteCategory::Address));
    }

    #[test]
    fn masked_intrinsics_record_mask_source() {
        let src = r#"
declare <8 x float> @llvm.x86.avx.maskload.ps.256(ptr, <8 x float>)
declare void @llvm.x86.avx.maskstore.ps.256(ptr, <8 x float>, <8 x float>)

define void @copy(ptr %s, ptr %d, <8 x float> %m) {
entry:
  %v = call <8 x float> @llvm.x86.avx.maskload.ps.256(ptr %s, <8 x float> %m)
  call void @llvm.x86.avx.maskstore.ps.256(ptr %d, <8 x float> %m, <8 x float> %v)
  ret void
}
"#;
        let m = vir::parser::parse_module(src).unwrap();
        let f = m.function("copy").unwrap();
        let sites = enumerate_sites(f);
        assert_eq!(sites.len(), 2);
        let load_site = &sites[0];
        assert_eq!(load_site.kind, SiteKind::Lvalue);
        assert_eq!(load_site.mask, Some(MaskSource { arg_index: 1 }));
        assert_eq!(load_site.lanes(), 8);
        let store_site = &sites[1];
        assert!(matches!(
            store_site.kind,
            SiteKind::StoreValue { operand_index: 2 }
        ));
        assert_eq!(store_site.mask, Some(MaskSource { arg_index: 1 }));
    }

    #[test]
    fn vulfi_runtime_calls_are_not_sites() {
        let src = r#"
declare float @vulfi.inject.f32(float, ...)

define float @k(float %x) {
entry:
  %y = call float @vulfi.inject.f32(float %x, i1 true, i64 0, i32 0)
  ret float %y
}
"#;
        let m = vir::parser::parse_module(src).unwrap();
        let sites = enumerate_sites(m.function("k").unwrap());
        assert!(sites.is_empty());
    }

    #[test]
    fn vector_lane_counts() {
        let src = r#"
define <4 x i32> @v(<4 x i32> %a) {
entry:
  %b = add <4 x i32> %a, %a
  ret <4 x i32> %b
}
"#;
        let m = vir::parser::parse_module(src).unwrap();
        let sites = enumerate_sites(m.function("v").unwrap());
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].lanes(), 4);
        assert!(sites[0].is_vector_inst);
    }

    #[test]
    fn category_mix_counts_vector_vs_scalar() {
        let f = fig3();
        let sites = enumerate_sites(&f);
        let mix = category_mix(&sites);
        // fig3 is all-scalar.
        for (_, m) in mix {
            assert_eq!(m.vector, 0);
        }
        let (_, pd) = mix[0];
        assert!(pd.scalar > 0);
        assert_eq!(pd.vector_pct(), 0.0);
    }
}
