//! The fault-injection campaign driver (paper §IV-B, §IV-D).
//!
//! - An **experiment** runs a workload twice on one randomly chosen input:
//!   a golden run (no faults; records the output and the dynamic-fault-site
//!   count N) and a faulty run (one bit flip at a dynamic site drawn
//!   uniformly from 1..=N). The outcome is **SDC** (outputs differ),
//!   **Benign** (identical), or **Crash** (trap / fault-induced hang).
//! - A **campaign** is 100 independent experiments; its SDC rate is one
//!   statistical sample.
//! - A **study** repeats campaigns until the ±3 pp @95% stopping rule of
//!   `stats::study_converged` fires (the paper observed 20 campaigns
//!   suffice everywhere).
//!
//! Experiments are embarrassingly parallel; campaigns fan out over rayon.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use vexec::{Interp, Trap};
use vir::analysis::SiteCategory;
use vir::Module;

use crate::instrument::{instrument_module, InstrumentOptions, Instrumented};
use crate::runtime::{InjectionRecord, VulfiHost};
use crate::sites::StaticSite;
use crate::stats::{study_converged, StudySummary};
use crate::workload::{snapshot_outputs, Workload};

/// Outcome classification of one experiment (paper §IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Outcome {
    /// Silent data corruption: faulty output differs from golden output.
    Sdc,
    /// No observable difference.
    Benign,
    /// System failure, program crash, hang — anything the user would
    /// notice without comparing outputs.
    Crash,
}

/// One completed experiment.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Experiment {
    pub outcome: Outcome,
    /// Did an inserted detector flag the run?
    pub detected: bool,
    pub injection: Option<InjectionRecord>,
    /// Input index used.
    pub input: u64,
    /// Dynamic fault sites observed in the golden run.
    pub dynamic_sites: u64,
    /// Golden-run dynamic instruction count.
    pub golden_dyn_insts: u64,
}

/// A campaign-level failure (workload bug, not a fault outcome).
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignError(pub String);

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "campaign error: {}", self.0)
    }
}

impl std::error::Error for CampaignError {}

/// An instrumented program ready for injection runs.
pub struct Prepared {
    pub module: Module,
    pub entry: String,
    pub sites: Vec<StaticSite>,
    pub category: SiteCategory,
}

/// Instrument `workload`'s module for the given category.
pub fn prepare(workload: &dyn Workload, category: SiteCategory) -> Result<Prepared, CampaignError> {
    prepare_with(workload, InstrumentOptions::new(category))
}

/// Instrument with explicit options (used by the mask-awareness ablation).
pub fn prepare_with(
    workload: &dyn Workload,
    opts: InstrumentOptions,
) -> Result<Prepared, CampaignError> {
    let mut module = workload.module().clone();
    let Instrumented { sites } =
        instrument_module(&mut module, workload.entry(), opts).map_err(CampaignError)?;
    Ok(Prepared {
        module,
        entry: workload.entry().to_string(),
        sites,
        category: opts.category,
    })
}

/// Hang-budget multiplier over the golden run's dynamic instruction count.
const HANG_FACTOR: u64 = 10;
const HANG_SLACK: u64 = 100_000;

/// Run one fault-injection experiment.
pub fn run_experiment(
    prog: &Prepared,
    workload: &dyn Workload,
    rng: &mut ChaCha8Rng,
) -> Result<Experiment, CampaignError> {
    let input = rng.gen_range(0..workload.num_inputs().max(1));

    // --- Golden run -------------------------------------------------------
    let mut interp = Interp::new(&prog.module);
    let setup = workload
        .setup(&mut interp.mem, input)
        .map_err(|t| CampaignError(format!("setup failed: {t}")))?;
    let mut golden_host = VulfiHost::profile();
    let golden = interp
        .run(&prog.entry, &setup.args, &mut golden_host)
        .map_err(|t| CampaignError(format!("golden run of {} trapped: {t}", workload.name())))?;
    let golden_out = snapshot_outputs(&interp.mem, &setup.outputs, &golden.ret)
        .map_err(|t| CampaignError(format!("golden snapshot failed: {t}")))?;
    let n_sites = golden_host.dynamic_sites;

    if n_sites == 0 {
        // Nothing to inject into under this category for this input.
        return Ok(Experiment {
            outcome: Outcome::Benign,
            detected: false,
            injection: None,
            input,
            dynamic_sites: 0,
            golden_dyn_insts: golden.dyn_insts,
        });
    }

    // --- Faulty run -------------------------------------------------------
    let target = rng.gen_range(1..=n_sites);
    let bit_entropy: u64 = rng.gen();
    let mut interp = Interp::new(&prog.module);
    interp.set_budget(golden.dyn_insts * HANG_FACTOR + HANG_SLACK);
    let setup2 = workload
        .setup(&mut interp.mem, input)
        .map_err(|t| CampaignError(format!("setup failed: {t}")))?;
    let mut host = VulfiHost::inject(target, bit_entropy);
    let result = interp.run(&prog.entry, &setup2.args, &mut host);

    let (outcome, detected) = match result {
        Err(Trap::HostError(m)) => return Err(CampaignError(format!("runtime bug: {m}"))),
        Err(_) => (Outcome::Crash, host.detectors.detected()),
        Ok(r) => {
            let out = snapshot_outputs(&interp.mem, &setup2.outputs, &r.ret)
                .map_err(|t| CampaignError(format!("faulty snapshot failed: {t}")))?;
            if out == golden_out {
                (Outcome::Benign, host.detectors.detected())
            } else {
                (Outcome::Sdc, host.detectors.detected())
            }
        }
    };
    Ok(Experiment {
        outcome,
        detected,
        injection: host.injection,
        input,
        dynamic_sites: n_sites,
        golden_dyn_insts: golden.dyn_insts,
    })
}

/// Aggregate outcome counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct OutcomeCounts {
    pub sdc: u64,
    pub benign: u64,
    pub crash: u64,
    /// SDC experiments flagged by a detector.
    pub sdc_detected: u64,
    /// All experiments flagged by a detector.
    pub detected: u64,
}

impl OutcomeCounts {
    pub fn total(&self) -> u64 {
        self.sdc + self.benign + self.crash
    }

    pub fn add(&mut self, e: &Experiment) {
        match e.outcome {
            Outcome::Sdc => self.sdc += 1,
            Outcome::Benign => self.benign += 1,
            Outcome::Crash => self.crash += 1,
        }
        if e.detected {
            self.detected += 1;
            if e.outcome == Outcome::Sdc {
                self.sdc_detected += 1;
            }
        }
    }

    pub fn merge(&mut self, other: &OutcomeCounts) {
        self.sdc += other.sdc;
        self.benign += other.benign;
        self.crash += other.crash;
        self.sdc_detected += other.sdc_detected;
        self.detected += other.detected;
    }

    pub fn sdc_rate(&self) -> f64 {
        percent(self.sdc, self.total())
    }

    pub fn benign_rate(&self) -> f64 {
        percent(self.benign, self.total())
    }

    pub fn crash_rate(&self) -> f64 {
        percent(self.crash, self.total())
    }

    /// Fraction of SDC experiments the detector flagged (paper Fig. 12's
    /// "SDC detection rate").
    pub fn sdc_detection_rate(&self) -> f64 {
        percent(self.sdc_detected, self.sdc)
    }
}

fn percent(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        100.0 * num as f64 / den as f64
    }
}

/// One campaign: `n` independent experiments (paper: 100).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct CampaignResult {
    pub counts: OutcomeCounts,
    pub experiments: Vec<Experiment>,
}

impl CampaignResult {
    pub fn sdc_rate(&self) -> f64 {
        self.counts.sdc_rate()
    }
}

/// Seed of campaign `c` within a study seeded `study_seed`.
///
/// Every driver (run_study, the orchestrator's shard scheduler) derives
/// campaign seeds through this one function so results are bit-identical
/// regardless of how experiments are grouped into shards or threads.
pub fn campaign_seed(study_seed: u64, c: usize) -> u64 {
    study_seed.wrapping_add((c as u64) << 32)
}

/// RNG of experiment `i` within a campaign seeded `campaign_seed`.
pub fn experiment_rng(campaign_seed: u64, i: usize) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(
        campaign_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(i as u64),
    )
}

/// Run experiments `range` of the campaign seeded `campaign_seed`,
/// sequentially. This is the shard-level entry point: concatenating the
/// results of any partition of `0..n` into ranges equals the experiment
/// list of [`run_campaign`] with the same seed.
pub fn run_experiment_range(
    prog: &Prepared,
    workload: &dyn Workload,
    campaign_seed: u64,
    range: std::ops::Range<usize>,
) -> Result<Vec<Experiment>, CampaignError> {
    range
        .map(|i| {
            let mut rng = experiment_rng(campaign_seed, i);
            run_experiment(prog, workload, &mut rng)
        })
        .collect()
}

/// Run one campaign of `n` experiments in parallel. `seed` makes the
/// campaign reproducible.
pub fn run_campaign(
    prog: &Prepared,
    workload: &dyn Workload,
    n: usize,
    seed: u64,
) -> Result<CampaignResult, CampaignError> {
    let experiments: Result<Vec<Experiment>, CampaignError> = (0..n)
        .into_par_iter()
        .map(|i| {
            let mut rng = experiment_rng(seed, i);
            run_experiment(prog, workload, &mut rng)
        })
        .collect();
    let experiments = experiments?;
    let mut counts = OutcomeCounts::default();
    for e in &experiments {
        counts.add(e);
    }
    Ok(CampaignResult {
        counts,
        experiments,
    })
}

/// Study configuration (defaults follow the paper's §IV-D setup).
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct StudyConfig {
    /// Experiments per campaign (paper: 100).
    pub experiments_per_campaign: usize,
    /// Stop when the 95% margin of error is within this many percentage
    /// points (paper: 3.0).
    pub target_margin: f64,
    /// Minimum campaigns before testing convergence.
    pub min_campaigns: usize,
    /// Hard cap on campaigns (paper observed 20 suffice).
    pub max_campaigns: usize,
    pub seed: u64,
}

impl Default for StudyConfig {
    fn default() -> StudyConfig {
        StudyConfig {
            experiments_per_campaign: 100,
            target_margin: 3.0,
            min_campaigns: 4,
            max_campaigns: 20,
            seed: 0xDEAD_BEEF,
        }
    }
}

/// A completed study for one (workload, category) cell.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct StudyResult {
    pub category: SiteCategory,
    /// Per-campaign SDC rates (the statistical samples).
    pub samples: Vec<f64>,
    pub summary: StudySummary,
    pub counts: OutcomeCounts,
    pub converged: bool,
}

/// Run campaigns until the stopping rule fires (or `max_campaigns`).
pub fn run_study(
    prog: &Prepared,
    workload: &dyn Workload,
    cfg: &StudyConfig,
) -> Result<StudyResult, CampaignError> {
    let mut samples = Vec::new();
    let mut counts = OutcomeCounts::default();
    let mut converged = false;
    for c in 0..cfg.max_campaigns {
        let campaign = run_campaign(
            prog,
            workload,
            cfg.experiments_per_campaign,
            campaign_seed(cfg.seed, c),
        )?;
        samples.push(campaign.sdc_rate());
        counts.merge(&campaign.counts);
        if study_converged(&samples, cfg.target_margin, cfg.min_campaigns) {
            converged = true;
            break;
        }
    }
    Ok(StudyResult {
        category: prog.category,
        summary: StudySummary::from_samples(&samples),
        samples,
        counts,
        converged,
    })
}

/// Measure the dynamic instruction count of a golden run (used for Table I
/// and for detector-overhead measurements).
pub fn measure_dyn_insts(
    module: &Module,
    entry: &str,
    workload: &dyn Workload,
    input: u64,
) -> Result<u64, CampaignError> {
    let mut interp = Interp::new(module);
    let setup = workload
        .setup(&mut interp.mem, input)
        .map_err(|t| CampaignError(format!("setup failed: {t}")))?;
    let mut host = VulfiHost::profile();
    let r = interp
        .run(entry, &setup.args, &mut host)
        .map_err(|t| CampaignError(format!("golden run trapped: {t}")))?;
    Ok(r.dyn_insts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{OutputRegion, SetupResult};
    use vexec::{Memory, RtVal, Scalar};

    /// A tiny but real workload: scale an array in-place.
    struct ScaleWorkload {
        module: Module,
    }

    impl ScaleWorkload {
        fn new() -> ScaleWorkload {
            let src = r#"
define void @scale(ptr %a, i32 %n) {
entry:
  br label %header
header:
  %i = phi i32 [ 0, %entry ], [ %i2, %body ]
  %cond = icmp slt i32 %i, %n
  br i1 %cond, label %body, label %exit
body:
  %p = getelementptr float, ptr %a, i32 %i
  %v = load float, ptr %p
  %d = fmul float %v, 2.0
  store float %d, ptr %p
  %i2 = add i32 %i, 1
  br label %header
exit:
  ret void
}
"#;
            ScaleWorkload {
                module: vir::parser::parse_module(src).unwrap(),
            }
        }
    }

    impl Workload for ScaleWorkload {
        fn name(&self) -> &str {
            "scale"
        }
        fn entry(&self) -> &str {
            "scale"
        }
        fn module(&self) -> &Module {
            &self.module
        }
        fn num_inputs(&self) -> u64 {
            3
        }
        fn setup(&self, mem: &mut Memory, input: u64) -> Result<SetupResult, vexec::Trap> {
            let n = 8 + input * 4;
            let vals: Vec<f32> = (0..n).map(|i| (i as f32) + input as f32).collect();
            let a = mem.alloc_f32_slice(&vals)?;
            Ok(SetupResult {
                args: vec![
                    RtVal::Scalar(Scalar::ptr(a)),
                    RtVal::Scalar(Scalar::i32(n as i32)),
                ],
                outputs: vec![OutputRegion {
                    addr: a,
                    bytes: n * 4,
                }],
            })
        }
    }

    #[test]
    fn experiments_are_reproducible() {
        let w = ScaleWorkload::new();
        let prog = prepare(&w, SiteCategory::PureData).unwrap();
        let run = |seed: u64| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            run_experiment(&prog, &w, &mut rng).unwrap()
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.injection, b.injection);
        assert!(a.dynamic_sites > 0);
    }

    #[test]
    fn pure_data_faults_never_crash_scale() {
        // Pure-data sites in @scale are the loaded/multiplied values; bit
        // flips there corrupt data but cannot redirect control or
        // addresses.
        let w = ScaleWorkload::new();
        let prog = prepare(&w, SiteCategory::PureData).unwrap();
        let c = run_campaign(&prog, &w, 40, 7).unwrap();
        assert_eq!(c.counts.crash, 0, "{:?}", c.counts);
        assert!(c.counts.sdc > 0, "flipped data must show up as SDC");
    }

    #[test]
    fn address_faults_crash_sometimes() {
        let w = ScaleWorkload::new();
        let prog = prepare(&w, SiteCategory::Address).unwrap();
        let c = run_campaign(&prog, &w, 60, 11).unwrap();
        assert!(
            c.counts.crash > 0,
            "address-category flips should produce crashes: {:?}",
            c.counts
        );
    }

    #[test]
    fn control_faults_can_hang_and_are_classified_crash() {
        let w = ScaleWorkload::new();
        let prog = prepare(&w, SiteCategory::Control).unwrap();
        let c = run_campaign(&prog, &w, 60, 13).unwrap();
        // Control flips hit %i/%i2/%cond: early exit (SDC), runaway loop
        // (crash via hang budget or OOB), or benign.
        assert!(c.counts.total() == 60);
        assert!(c.counts.sdc + c.counts.crash > 0, "{:?}", c.counts);
    }

    #[test]
    fn campaign_outcome_counts_sum() {
        let w = ScaleWorkload::new();
        let prog = prepare(&w, SiteCategory::PureData).unwrap();
        let c = run_campaign(&prog, &w, 25, 3).unwrap();
        assert_eq!(c.counts.total(), 25);
        assert_eq!(c.experiments.len(), 25);
        let rate = c.sdc_rate();
        assert!((0.0..=100.0).contains(&rate));
    }

    #[test]
    fn study_converges_on_stable_workload() {
        let w = ScaleWorkload::new();
        let prog = prepare(&w, SiteCategory::PureData).unwrap();
        let cfg = StudyConfig {
            experiments_per_campaign: 30,
            target_margin: 10.0,
            min_campaigns: 4,
            max_campaigns: 10,
            seed: 5,
        };
        let s = run_study(&prog, &w, &cfg).unwrap();
        assert!(s.samples.len() >= 4);
        assert_eq!(s.counts.total(), s.samples.len() as u64 * 30,);
        assert!(s.summary.mean >= 0.0);
    }

    #[test]
    fn sharded_ranges_equal_whole_campaign() {
        let w = ScaleWorkload::new();
        let prog = prepare(&w, SiteCategory::PureData).unwrap();
        let seed = campaign_seed(0xDEAD_BEEF, 2);
        let whole = run_campaign(&prog, &w, 30, seed).unwrap();
        // Any partition of 0..30 must reproduce the same experiments.
        let mut pieced = Vec::new();
        for range in [0..7, 7..8, 8..21, 21..30] {
            pieced.extend(run_experiment_range(&prog, &w, seed, range).unwrap());
        }
        assert_eq!(whole.experiments, pieced);
    }

    #[test]
    fn experiment_serde_roundtrip() {
        let w = ScaleWorkload::new();
        let prog = prepare(&w, SiteCategory::PureData).unwrap();
        let mut rng = experiment_rng(99, 0);
        let e = run_experiment(&prog, &w, &mut rng).unwrap();
        let text = serde_json::to_string(&e).unwrap();
        let back: Experiment = serde_json::from_str(&text).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn measure_dyn_insts_deterministic() {
        let w = ScaleWorkload::new();
        let a = measure_dyn_insts(w.module(), "scale", &w, 0).unwrap();
        let b = measure_dyn_insts(w.module(), "scale", &w, 0).unwrap();
        assert_eq!(a, b);
        let c = measure_dyn_insts(w.module(), "scale", &w, 2).unwrap();
        assert!(c > a, "bigger input → more dynamic instructions");
    }
}
