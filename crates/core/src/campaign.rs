//! The fault-injection campaign driver (paper §IV-B, §IV-D).
//!
//! - An **experiment** runs a workload twice on one randomly chosen input:
//!   a golden run (no faults; records the output and the dynamic-fault-site
//!   count N) and a faulty run (one bit flip at a dynamic site drawn
//!   uniformly from 1..=N). The outcome is **SDC** (outputs differ),
//!   **Benign** (identical), or **Crash** (trap / fault-induced hang).
//! - A **campaign** is 100 independent experiments; its SDC rate is one
//!   statistical sample.
//! - A **study** repeats campaigns until the ±3 pp @95% stopping rule of
//!   `stats::study_converged` fires (the paper observed 20 campaigns
//!   suffice everywhere).
//!
//! Experiments are embarrassingly parallel; campaigns fan out over rayon.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use vexec::{Interp, Trap};
use vir::analysis::SiteCategory;
use vir::Module;

use crate::analyze::{analyze_module, PrunePlan};
use crate::fault::FaultModel;
use crate::faultlog::{panic_message, record_engine_fault, strict, EngineFault};
use crate::instrument::{instrument_module, InstrumentOptions, Instrumented};
use crate::runtime::{InjectionRecord, VulfiHost};
use crate::sites::StaticSite;
use crate::stats::{study_converged, StudySummary};
use crate::trace::TraceCapture;
use crate::workload::{snapshot_outputs, Workload};

/// Outcome classification of one experiment (paper §IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Outcome {
    /// Silent data corruption: faulty output differs from golden output.
    Sdc,
    /// No observable difference.
    Benign,
    /// System failure, program crash, hang — anything the user would
    /// notice without comparing outputs.
    Crash,
}

/// One completed experiment.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Experiment {
    pub outcome: Outcome,
    /// Did an inserted detector flag the run?
    pub detected: bool,
    pub injection: Option<InjectionRecord>,
    /// Input index used.
    pub input: u64,
    /// Dynamic fault sites observed in the golden run.
    pub dynamic_sites: u64,
    /// Golden-run dynamic instruction count.
    pub golden_dyn_insts: u64,
}

/// A campaign-level failure (workload bug, not a fault outcome).
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignError(pub String);

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "campaign error: {}", self.0)
    }
}

impl std::error::Error for CampaignError {}

/// Resource ceilings applied to the **faulty** run of every experiment.
///
/// The golden run is never limited: it defines correct behaviour, and a
/// trap there is a workload bug ([`CampaignError`]), not an outcome. The
/// faulty run, by contrast, executes under an injected bit flip and can
/// be driven into runaway loops or allocation storms; each ceiling
/// converts such a runaway into a contained [`Outcome::Crash`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ResourceLimits {
    /// Hang-budget multiplier over the golden run's dynamic instruction
    /// count (deterministic; the primary hang containment).
    pub hang_factor: u64,
    /// Flat slack added to the hang budget.
    pub hang_slack: u64,
    /// Wall-clock watchdog for the faulty run, in milliseconds. `0`
    /// disables it — the default, because wall time is inherently
    /// non-deterministic: a study run with a wall limit is only
    /// bit-reproducible if no experiment ever comes near the limit. Use
    /// it as a backstop when the instruction budget alone leaves single
    /// experiments unacceptably slow in real time.
    pub wall_ms: u64,
    /// Memory ceiling for program-driven allocation in the faulty run,
    /// in bytes. `0` keeps the engine default (64 MiB). Deterministic.
    pub mem_bytes: u64,
}

impl Default for ResourceLimits {
    fn default() -> ResourceLimits {
        ResourceLimits {
            hang_factor: HANG_FACTOR,
            hang_slack: HANG_SLACK,
            wall_ms: 0,
            mem_bytes: 0,
        }
    }
}

/// An instrumented program ready for injection runs.
pub struct Prepared {
    pub module: Module,
    pub entry: String,
    pub sites: Vec<StaticSite>,
    pub category: SiteCategory,
    /// Resource ceilings for faulty runs (defaults preserve historical
    /// behaviour: hang budget only).
    pub limits: ResourceLimits,
    /// Fault model applied by every experiment (default: the paper's
    /// single bit flip).
    pub model: FaultModel,
}

/// Instrument `workload`'s module for the given category.
pub fn prepare(workload: &dyn Workload, category: SiteCategory) -> Result<Prepared, CampaignError> {
    prepare_with(workload, InstrumentOptions::new(category))
}

/// Instrument with explicit options (used by the mask-awareness ablation).
pub fn prepare_with(
    workload: &dyn Workload,
    opts: InstrumentOptions,
) -> Result<Prepared, CampaignError> {
    let mut module = workload.module().clone();
    let Instrumented { sites } =
        instrument_module(&mut module, workload.entry(), opts).map_err(CampaignError)?;
    Ok(Prepared {
        module,
        entry: workload.entry().to_string(),
        sites,
        category: opts.category,
        limits: ResourceLimits::default(),
        model: FaultModel::default(),
    })
}

/// Hang-budget multiplier over the golden run's dynamic instruction count.
const HANG_FACTOR: u64 = 10;
const HANG_SLACK: u64 = 100_000;

/// Run one fault-injection experiment.
///
/// The experiment body is wrapped in `std::panic::catch_unwind`: an
/// engine (or workload) panic on faulted state is classified as
/// [`Outcome::Crash`] and recorded in the engine-fault log
/// ([`crate::engine_faults`]) instead of unwinding through the campaign.
/// Under [`crate::set_strict`] the panic aborts the campaign as a
/// [`CampaignError`] instead.
pub fn run_experiment(
    prog: &Prepared,
    workload: &dyn Workload,
    rng: &mut ChaCha8Rng,
) -> Result<Experiment, CampaignError> {
    run_experiment_tagged(prog, workload, rng, None, None)
}

/// [`run_experiment`] with panic provenance `(campaign_seed, index)` and
/// an optional propagation-trace capture (see [`crate::trace`]). Tracing
/// never changes the experiment result: the capture only observes.
pub(crate) fn run_experiment_tagged(
    prog: &Prepared,
    workload: &dyn Workload,
    rng: &mut ChaCha8Rng,
    provenance: Option<(u64, usize)>,
    mut capture: Option<&mut TraceCapture>,
) -> Result<Experiment, CampaignError> {
    // Draw the input OUTSIDE the isolated body: a panicking experiment
    // must still produce a deterministic record, identical whether it ran
    // via run_study or any shard partition.
    let input = rng.gen_range(0..workload.num_inputs().max(1));
    let body = std::panic::AssertUnwindSafe(|| {
        run_experiment_body(prog, workload, rng, input, capture.as_deref_mut())
    });
    match std::panic::catch_unwind(body) {
        Ok(result) => result,
        Err(payload) => {
            let fault = EngineFault {
                workload: workload.name().to_string(),
                experiment: provenance,
                input,
                message: panic_message(payload.as_ref()),
            };
            if strict() {
                return Err(CampaignError(format!("strict mode: {fault}")));
            }
            // A capture interrupted mid-experiment holds partial state;
            // reset it to describe what is actually known: the engine
            // died, which the outside world sees as a crash.
            if let Some(cap) = capture {
                *cap = TraceCapture {
                    trap: Some(format!("engine panic: {}", fault.message)),
                    ..TraceCapture::default()
                };
            }
            record_engine_fault(fault);
            // The engine died mid-experiment: from the outside that is a
            // crash of the faulted program. No injection record or site
            // counts survive the unwind, so the record carries zeros.
            Ok(Experiment {
                outcome: Outcome::Crash,
                detected: false,
                injection: None,
                input,
                dynamic_sites: 0,
                golden_dyn_insts: 0,
            })
        }
    }
}

fn run_experiment_body(
    prog: &Prepared,
    workload: &dyn Workload,
    rng: &mut ChaCha8Rng,
    input: u64,
    mut capture: Option<&mut TraceCapture>,
) -> Result<Experiment, CampaignError> {
    if prog.model.is_engine_model() {
        return run_experiment_engine(prog, workload, rng, input, capture);
    }
    // --- Golden run -------------------------------------------------------
    // When tracing, the golden run records the architectural event stream
    // (stores, branch decisions, return value) the faulty run will be
    // compared against. The sink only observes, so traced and untraced
    // experiments are bit-identical.
    let mut golden_tracer = capture.is_some().then(vexec::DivergenceTracer::record);
    let mut interp = Interp::new(&prog.module);
    let setup = workload
        .setup(&mut interp.mem, input)
        .map_err(|t| CampaignError(format!("setup failed: {t}")))?;
    if let Some(t) = golden_tracer.as_mut() {
        interp.set_trace_sink(t);
    }
    let mut golden_host = VulfiHost::profile();
    let golden = interp
        .run(&prog.entry, &setup.args, &mut golden_host)
        .map_err(|t| CampaignError(format!("golden run of {} trapped: {t}", workload.name())))?;
    let golden_out = snapshot_outputs(&interp.mem, &setup.outputs, &golden.ret)
        .map_err(|t| CampaignError(format!("golden snapshot failed: {t}")))?;
    let n_sites = golden_host.dynamic_sites;

    if n_sites == 0 {
        // Nothing to inject into under this category for this input.
        if let Some(cap) = capture.as_deref_mut() {
            *cap = TraceCapture::default();
        }
        return Ok(Experiment {
            outcome: Outcome::Benign,
            detected: false,
            injection: None,
            input,
            dynamic_sites: 0,
            golden_dyn_insts: golden.dyn_insts,
        });
    }

    // --- Faulty run -------------------------------------------------------
    let target = rng.gen_range(1..=n_sites);
    let bit_entropy: u64 = rng.gen();
    let mut faulty_tracer = golden_tracer
        .take()
        .map(|t| vexec::DivergenceTracer::compare(t.into_stream()));
    let mut interp = Interp::new(&prog.module);
    interp.set_budget(
        golden
            .dyn_insts
            .saturating_mul(prog.limits.hang_factor)
            .saturating_add(prog.limits.hang_slack),
    );
    let setup2 = workload
        .setup(&mut interp.mem, input)
        .map_err(|t| CampaignError(format!("setup failed: {t}")))?;
    // Ceilings go on after setup: workload-provided buffers are
    // legitimate; the ceilings bound what the *faulted program* does.
    if prog.limits.wall_ms > 0 {
        interp.set_wall_limit(std::time::Duration::from_millis(prog.limits.wall_ms));
    }
    if prog.limits.mem_bytes > 0 {
        interp.set_memory_limit(prog.limits.mem_bytes);
    }
    if let Some(t) = faulty_tracer.as_mut() {
        interp.set_trace_sink(t);
    }
    let mut host = VulfiHost::inject_model(target, bit_entropy, prog.model);
    let result = interp.run(&prog.entry, &setup2.args, &mut host);
    let faulty_dyn_insts = interp.executed();

    let (outcome, detected) = match &result {
        Err(Trap::HostError(m)) => return Err(CampaignError(format!("runtime bug: {m}"))),
        Err(_) => (Outcome::Crash, host.detectors.detected()),
        Ok(r) => {
            let out = snapshot_outputs(&interp.mem, &setup2.outputs, &r.ret)
                .map_err(|t| CampaignError(format!("faulty snapshot failed: {t}")))?;
            if out == golden_out {
                (Outcome::Benign, host.detectors.detected())
            } else {
                (Outcome::Sdc, host.detectors.detected())
            }
        }
    };
    if let Some(cap) = capture {
        let divergence = faulty_tracer.map(|mut t| {
            // A clean exit that consumed fewer events than golden is a
            // divergence by omission at the end of the run.
            if result.is_ok() {
                t.finish(faulty_dyn_insts);
            }
            t.divergence().map(|d| d.dyn_index)
        });
        *cap = TraceCapture {
            injected_at: host.injection_at,
            divergence: divergence.flatten(),
            faulty_dyn_insts,
            trap: result.as_ref().err().map(|t| t.to_string()),
        };
    }
    Ok(Experiment {
        outcome,
        detected,
        injection: host.injection,
        input,
        dynamic_sites: n_sites,
        golden_dyn_insts: golden.dyn_insts,
    })
}

/// Experiment body for the engine-level fault models (mask corruption,
/// address lines, memory cells): the corruption targets interpreter state
/// the instrumented `vulfi.inject` API never sees, so it is applied by a
/// [`vexec::EngineInjector`] installed on the interpreter instead of by
/// the host. The RNG draw order is identical to the value-model path
/// (target, then bit entropy), with the model's own event census as the
/// target denominator:
///
/// - mask corruption: masked-intrinsic executions (counted in the golden
///   run by a passive injector);
/// - address lines: guarded memory accesses (same);
/// - memory cells: golden dynamic instructions (no census run needed).
fn run_experiment_engine(
    prog: &Prepared,
    workload: &dyn Workload,
    rng: &mut ChaCha8Rng,
    input: u64,
    mut capture: Option<&mut TraceCapture>,
) -> Result<Experiment, CampaignError> {
    let engine_model = match prog.model {
        FaultModel::MaskCorrupt => vexec::EngineModel::MaskCorrupt,
        FaultModel::AddressLine { bit } => vexec::EngineModel::AddressLine { bit },
        FaultModel::MemoryCell => vexec::EngineModel::MemoryCell,
        other => {
            return Err(CampaignError(format!(
                "{other} is not an engine-level fault model"
            )))
        }
    };

    // --- Golden run -------------------------------------------------------
    let mut golden_tracer = capture.is_some().then(vexec::DivergenceTracer::record);
    let mut counter = vexec::EngineInjector::count(engine_model);
    let mut interp = Interp::new(&prog.module);
    let setup = workload
        .setup(&mut interp.mem, input)
        .map_err(|t| CampaignError(format!("setup failed: {t}")))?;
    if let Some(t) = golden_tracer.as_mut() {
        interp.set_trace_sink(t);
    }
    interp.set_engine_injector(&mut counter);
    let mut golden_host = VulfiHost::profile();
    let golden = interp
        .run(&prog.entry, &setup.args, &mut golden_host)
        .map_err(|t| CampaignError(format!("golden run of {} trapped: {t}", workload.name())))?;
    let golden_out = snapshot_outputs(&interp.mem, &setup.outputs, &golden.ret)
        .map_err(|t| CampaignError(format!("golden snapshot failed: {t}")))?;
    drop(interp);
    let n_events = match engine_model {
        vexec::EngineModel::MemoryCell => golden.dyn_insts,
        _ => counter.events(),
    };

    if n_events == 0 {
        // The model's event census is empty for this input (e.g. no
        // masked intrinsics execute): nothing to corrupt.
        if let Some(cap) = capture.as_deref_mut() {
            *cap = TraceCapture::default();
        }
        return Ok(Experiment {
            outcome: Outcome::Benign,
            detected: false,
            injection: None,
            input,
            dynamic_sites: 0,
            golden_dyn_insts: golden.dyn_insts,
        });
    }

    // --- Faulty run -------------------------------------------------------
    let target = rng.gen_range(1..=n_events);
    let bit_entropy: u64 = rng.gen();
    let mut faulty_tracer = golden_tracer
        .take()
        .map(|t| vexec::DivergenceTracer::compare(t.into_stream()));
    let mut injector = vexec::EngineInjector::inject(engine_model, target, bit_entropy);
    let mut interp = Interp::new(&prog.module);
    interp.set_budget(
        golden
            .dyn_insts
            .saturating_mul(prog.limits.hang_factor)
            .saturating_add(prog.limits.hang_slack),
    );
    let setup2 = workload
        .setup(&mut interp.mem, input)
        .map_err(|t| CampaignError(format!("setup failed: {t}")))?;
    if prog.limits.wall_ms > 0 {
        interp.set_wall_limit(std::time::Duration::from_millis(prog.limits.wall_ms));
    }
    if prog.limits.mem_bytes > 0 {
        interp.set_memory_limit(prog.limits.mem_bytes);
    }
    if let Some(t) = faulty_tracer.as_mut() {
        interp.set_trace_sink(t);
    }
    interp.set_engine_injector(&mut injector);
    // The host still serves detector checks; it never injects.
    let mut host = VulfiHost::profile();
    let result = interp.run(&prog.entry, &setup2.args, &mut host);
    let faulty_dyn_insts = interp.executed();

    let (outcome, detected) = match &result {
        Err(Trap::HostError(m)) => return Err(CampaignError(format!("runtime bug: {m}"))),
        Err(_) => (Outcome::Crash, host.detectors.detected()),
        Ok(r) => {
            let out = snapshot_outputs(&interp.mem, &setup2.outputs, &r.ret)
                .map_err(|t| CampaignError(format!("faulty snapshot failed: {t}")))?;
            if out == golden_out {
                (Outcome::Benign, host.detectors.detected())
            } else {
                (Outcome::Sdc, host.detectors.detected())
            }
        }
    };
    drop(interp);
    if let Some(cap) = capture {
        let divergence = faulty_tracer.map(|mut t| {
            if result.is_ok() {
                t.finish(faulty_dyn_insts);
            }
            t.divergence().map(|d| d.dyn_index)
        });
        *cap = TraceCapture {
            injected_at: injector.injection().map(|i| i.at_dyn_inst),
            divergence: divergence.flatten(),
            faulty_dyn_insts,
            trap: result.as_ref().err().map(|t| t.to_string()),
        };
    }
    // Engine faults have no static site or lane; site_id 0 marks the
    // synthetic provenance, occurrence is the index in the event census.
    let injection = injector.injection().map(|inj| InjectionRecord {
        site_id: 0,
        lane: 0,
        occurrence: inj.event,
        bit: inj.bit,
        bits_before: inj.bits_before,
        bits_after: inj.bits_after,
        model: prog.model,
    });
    Ok(Experiment {
        outcome,
        detected,
        injection,
        input,
        dynamic_sites: n_events,
        golden_dyn_insts: golden.dyn_insts,
    })
}

/// Aggregate outcome counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct OutcomeCounts {
    pub sdc: u64,
    pub benign: u64,
    pub crash: u64,
    /// SDC experiments flagged by a detector.
    pub sdc_detected: u64,
    /// All experiments flagged by a detector.
    pub detected: u64,
}

impl OutcomeCounts {
    pub fn total(&self) -> u64 {
        self.sdc + self.benign + self.crash
    }

    pub fn add(&mut self, e: &Experiment) {
        match e.outcome {
            Outcome::Sdc => self.sdc += 1,
            Outcome::Benign => self.benign += 1,
            Outcome::Crash => self.crash += 1,
        }
        if e.detected {
            self.detected += 1;
            if e.outcome == Outcome::Sdc {
                self.sdc_detected += 1;
            }
        }
    }

    pub fn merge(&mut self, other: &OutcomeCounts) {
        self.sdc += other.sdc;
        self.benign += other.benign;
        self.crash += other.crash;
        self.sdc_detected += other.sdc_detected;
        self.detected += other.detected;
    }

    pub fn sdc_rate(&self) -> f64 {
        percent(self.sdc, self.total())
    }

    pub fn benign_rate(&self) -> f64 {
        percent(self.benign, self.total())
    }

    pub fn crash_rate(&self) -> f64 {
        percent(self.crash, self.total())
    }

    /// Fraction of SDC experiments the detector flagged (paper Fig. 12's
    /// "SDC detection rate").
    pub fn sdc_detection_rate(&self) -> f64 {
        percent(self.sdc_detected, self.sdc)
    }
}

fn percent(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        100.0 * num as f64 / den as f64
    }
}

/// One campaign: `n` independent experiments (paper: 100).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct CampaignResult {
    pub counts: OutcomeCounts,
    pub experiments: Vec<Experiment>,
}

impl CampaignResult {
    pub fn sdc_rate(&self) -> f64 {
        self.counts.sdc_rate()
    }
}

/// Seed of campaign `c` within a study seeded `study_seed`.
///
/// Every driver (run_study, the orchestrator's shard scheduler) derives
/// campaign seeds through this one function so results are bit-identical
/// regardless of how experiments are grouped into shards or threads.
pub fn campaign_seed(study_seed: u64, c: usize) -> u64 {
    study_seed.wrapping_add((c as u64) << 32)
}

/// RNG of experiment `i` within a campaign seeded `campaign_seed`.
pub fn experiment_rng(campaign_seed: u64, i: usize) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(
        campaign_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(i as u64),
    )
}

/// Run experiments `range` of the campaign seeded `campaign_seed`,
/// sequentially. This is the shard-level entry point: concatenating the
/// results of any partition of `0..n` into ranges equals the experiment
/// list of [`run_campaign`] with the same seed.
pub fn run_experiment_range(
    prog: &Prepared,
    workload: &dyn Workload,
    campaign_seed: u64,
    range: std::ops::Range<usize>,
) -> Result<Vec<Experiment>, CampaignError> {
    range
        .map(|i| {
            let mut rng = experiment_rng(campaign_seed, i);
            run_experiment_tagged(prog, workload, &mut rng, Some((campaign_seed, i)), None)
        })
        .collect()
}

/// Per-input golden census used by the campaign pruner: the ordered
/// `(site_id, lane)` sequence of dynamic fault sites, exactly as the
/// runtime counts them.
#[derive(Debug, Clone, PartialEq)]
pub struct InputCensus {
    pub golden_dyn_insts: u64,
    pub trace: Vec<(u32, u32)>,
}

/// Everything [`run_experiment_range_pruned`] needs to predict an
/// experiment's injection coordinate without running it: the static
/// benign-coordinate plan plus one golden census per workload input.
#[derive(Debug, Clone)]
pub struct PruneContext {
    pub plan: PrunePlan,
    pub census: Vec<InputCensus>,
}

/// Build the prune context: analyze the uninstrumented module, then run
/// one logging golden run per input on the instrumented program.
///
/// Only the paper's single-bit-flip model is supported: the prediction
/// replays the model's `bit = entropy % width` choice, and multi-bit or
/// stuck-at corruptions would need their own replay logic.
pub fn build_prune_context(
    prog: &Prepared,
    workload: &dyn Workload,
) -> Result<PruneContext, CampaignError> {
    if prog.model != FaultModel::SingleBitFlip {
        return Err(CampaignError(format!(
            "pruning supports only the single-bit-flip model, not {}",
            prog.model
        )));
    }
    let report = analyze_module(workload.module(), workload.entry()).map_err(CampaignError)?;
    let plan = PrunePlan::from_report(&report);
    let mut census = Vec::new();
    for input in 0..workload.num_inputs().max(1) {
        let mut interp = Interp::new(&prog.module);
        let setup = workload
            .setup(&mut interp.mem, input)
            .map_err(|t| CampaignError(format!("setup failed: {t}")))?;
        let mut host = VulfiHost::profile_logging();
        let golden = interp
            .run(&prog.entry, &setup.args, &mut host)
            .map_err(|t| {
                CampaignError(format!("golden run of {} trapped: {t}", workload.name()))
            })?;
        census.push(InputCensus {
            golden_dyn_insts: golden.dyn_insts,
            trace: host.site_log.take().unwrap_or_default(),
        });
    }
    Ok(PruneContext { plan, census })
}

/// [`run_experiment_range`] with static pruning: each experiment's RNG
/// draws are replayed against the golden census to find the coordinate
/// the injector would corrupt; if the plan proves it benign, a synthetic
/// [`Outcome::Benign`] record is emitted without executing the faulty
/// run. Every other experiment re-runs exactly as the unpruned driver
/// would — a fresh RNG reproduces the identical draw sequence, so the
/// executed subset is bit-identical to a full run. Pruned records carry
/// `injection: None` (nothing was executed, so there is no corruption to
/// record); outcome, detection, input, and site counts match what the
/// full run would have produced.
pub fn run_experiment_range_pruned(
    prog: &Prepared,
    workload: &dyn Workload,
    ctx: &PruneContext,
    campaign_seed: u64,
    range: std::ops::Range<usize>,
) -> Result<Vec<Experiment>, CampaignError> {
    if prog.model != FaultModel::SingleBitFlip {
        return Err(CampaignError(format!(
            "pruning supports only the single-bit-flip model, not {}",
            prog.model
        )));
    }
    range
        .map(|i| {
            // Replay the draws on a throwaway RNG; the real run (if any)
            // recreates its own from scratch so sequences stay identical.
            let mut probe = experiment_rng(campaign_seed, i);
            let input = probe.gen_range(0..workload.num_inputs().max(1));
            let census = ctx
                .census
                .get(input as usize)
                .ok_or_else(|| CampaignError(format!("prune census missing input {input}")))?;
            let n_sites = census.trace.len() as u64;
            if n_sites == 0 {
                return Ok(Experiment {
                    outcome: Outcome::Benign,
                    detected: false,
                    injection: None,
                    input,
                    dynamic_sites: 0,
                    golden_dyn_insts: census.golden_dyn_insts,
                });
            }
            let target = probe.gen_range(1..=n_sites);
            let bit_entropy: u64 = probe.gen();
            let (site, lane) = census.trace[(target - 1) as usize];
            let width = ctx.plan.width(site).unwrap_or(64).max(1);
            let bit = (bit_entropy % width as u64) as u32;
            if ctx.plan.is_benign(site, lane, bit) {
                return Ok(Experiment {
                    outcome: Outcome::Benign,
                    detected: false,
                    injection: None,
                    input,
                    dynamic_sites: n_sites,
                    golden_dyn_insts: census.golden_dyn_insts,
                });
            }
            let mut rng = experiment_rng(campaign_seed, i);
            run_experiment_tagged(prog, workload, &mut rng, Some((campaign_seed, i)), None)
        })
        .collect()
}

/// Run one campaign of `n` experiments in parallel. `seed` makes the
/// campaign reproducible.
pub fn run_campaign(
    prog: &Prepared,
    workload: &dyn Workload,
    n: usize,
    seed: u64,
) -> Result<CampaignResult, CampaignError> {
    let experiments: Result<Vec<Experiment>, CampaignError> = (0..n)
        .into_par_iter()
        .map(|i| {
            let mut rng = experiment_rng(seed, i);
            run_experiment_tagged(prog, workload, &mut rng, Some((seed, i)), None)
        })
        .collect();
    let experiments = experiments?;
    let mut counts = OutcomeCounts::default();
    for e in &experiments {
        counts.add(e);
    }
    Ok(CampaignResult {
        counts,
        experiments,
    })
}

/// Study configuration (defaults follow the paper's §IV-D setup).
#[derive(Debug, Clone, Copy)]
pub struct StudyConfig {
    /// Experiments per campaign (paper: 100).
    pub experiments_per_campaign: usize,
    /// Stop when the 95% margin of error is within this many percentage
    /// points (paper: 3.0).
    pub target_margin: f64,
    /// Minimum campaigns before testing convergence.
    pub min_campaigns: usize,
    /// Hard cap on campaigns (paper observed 20 suffice).
    pub max_campaigns: usize,
    pub seed: u64,
    /// Fault model every experiment applies.
    pub model: FaultModel,
    /// Skip injections the static analyzer proves benign, accounting
    /// them as [`Outcome::Benign`] without execution (single-bit-flip
    /// model only). Changes the study identity: pruned records carry no
    /// injection payload for discharged experiments.
    pub prune: bool,
}

impl Default for StudyConfig {
    fn default() -> StudyConfig {
        StudyConfig {
            experiments_per_campaign: 100,
            target_margin: 3.0,
            min_campaigns: 4,
            max_campaigns: 20,
            seed: 0xDEAD_BEEF,
            model: FaultModel::default(),
            prune: false,
        }
    }
}

// Manual serde mirroring the derive, except `model` is omitted when it is
// the default single-bit flip (and defaulted when absent), so manifests
// written before the fault-model library existed keep parsing and
// default-model manifests stay byte-identical. `prune` follows the same
// pattern: omitted when false.
impl serde::Serialize for StudyConfig {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            (
                "experiments_per_campaign".to_string(),
                self.experiments_per_campaign.to_value(),
            ),
            ("target_margin".to_string(), self.target_margin.to_value()),
            ("min_campaigns".to_string(), self.min_campaigns.to_value()),
            ("max_campaigns".to_string(), self.max_campaigns.to_value()),
            ("seed".to_string(), self.seed.to_value()),
        ];
        if self.model != FaultModel::default() {
            fields.push(("model".to_string(), self.model.to_value()));
        }
        if self.prune {
            fields.push(("prune".to_string(), self.prune.to_value()));
        }
        serde::Value::Object(fields)
    }
}

impl serde::Deserialize for StudyConfig {
    fn from_value(v: &serde::Value) -> Result<StudyConfig, serde::DeError> {
        Ok(StudyConfig {
            experiments_per_campaign: serde::field(v, "experiments_per_campaign")?,
            target_margin: serde::field(v, "target_margin")?,
            min_campaigns: serde::field(v, "min_campaigns")?,
            max_campaigns: serde::field(v, "max_campaigns")?,
            seed: serde::field(v, "seed")?,
            model: match v.get("model") {
                Some(m) => FaultModel::from_value(m)?,
                None => FaultModel::default(),
            },
            prune: match v.get("prune") {
                Some(p) => bool::from_value(p)?,
                None => false,
            },
        })
    }
}

/// A completed study for one (workload, category) cell.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct StudyResult {
    pub category: SiteCategory,
    /// Per-campaign SDC rates (the statistical samples).
    pub samples: Vec<f64>,
    pub summary: StudySummary,
    pub counts: OutcomeCounts,
    pub converged: bool,
}

/// Run campaigns until the stopping rule fires (or `max_campaigns`).
pub fn run_study(
    prog: &Prepared,
    workload: &dyn Workload,
    cfg: &StudyConfig,
) -> Result<StudyResult, CampaignError> {
    let mut samples = Vec::new();
    let mut counts = OutcomeCounts::default();
    let mut converged = false;
    for c in 0..cfg.max_campaigns {
        let campaign = run_campaign(
            prog,
            workload,
            cfg.experiments_per_campaign,
            campaign_seed(cfg.seed, c),
        )?;
        samples.push(campaign.sdc_rate());
        counts.merge(&campaign.counts);
        if study_converged(&samples, cfg.target_margin, cfg.min_campaigns) {
            converged = true;
            break;
        }
    }
    Ok(StudyResult {
        category: prog.category,
        summary: StudySummary::from_samples(&samples),
        samples,
        counts,
        converged,
    })
}

/// Measure the dynamic instruction count of a golden run (used for Table I
/// and for detector-overhead measurements).
pub fn measure_dyn_insts(
    module: &Module,
    entry: &str,
    workload: &dyn Workload,
    input: u64,
) -> Result<u64, CampaignError> {
    let mut interp = Interp::new(module);
    let setup = workload
        .setup(&mut interp.mem, input)
        .map_err(|t| CampaignError(format!("setup failed: {t}")))?;
    let mut host = VulfiHost::profile();
    let r = interp
        .run(entry, &setup.args, &mut host)
        .map_err(|t| CampaignError(format!("golden run trapped: {t}")))?;
    Ok(r.dyn_insts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{OutputRegion, SetupResult};
    use vexec::{Memory, RtVal, Scalar};

    /// A tiny but real workload: scale an array in-place.
    struct ScaleWorkload {
        module: Module,
    }

    impl ScaleWorkload {
        fn new() -> ScaleWorkload {
            let src = r#"
define void @scale(ptr %a, i32 %n) {
entry:
  br label %header
header:
  %i = phi i32 [ 0, %entry ], [ %i2, %body ]
  %cond = icmp slt i32 %i, %n
  br i1 %cond, label %body, label %exit
body:
  %p = getelementptr float, ptr %a, i32 %i
  %v = load float, ptr %p
  %d = fmul float %v, 2.0
  store float %d, ptr %p
  %i2 = add i32 %i, 1
  br label %header
exit:
  ret void
}
"#;
            ScaleWorkload {
                module: vir::parser::parse_module(src).unwrap(),
            }
        }
    }

    impl Workload for ScaleWorkload {
        fn name(&self) -> &str {
            "scale"
        }
        fn entry(&self) -> &str {
            "scale"
        }
        fn module(&self) -> &Module {
            &self.module
        }
        fn num_inputs(&self) -> u64 {
            3
        }
        fn setup(&self, mem: &mut Memory, input: u64) -> Result<SetupResult, vexec::Trap> {
            let n = 8 + input * 4;
            let vals: Vec<f32> = (0..n).map(|i| (i as f32) + input as f32).collect();
            let a = mem.alloc_f32_slice(&vals)?;
            Ok(SetupResult {
                args: vec![
                    RtVal::Scalar(Scalar::ptr(a)),
                    RtVal::Scalar(Scalar::i32(n as i32)),
                ],
                outputs: vec![OutputRegion {
                    addr: a,
                    bytes: n * 4,
                }],
            })
        }
    }

    #[test]
    fn experiments_are_reproducible() {
        let w = ScaleWorkload::new();
        let prog = prepare(&w, SiteCategory::PureData).unwrap();
        let run = |seed: u64| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            run_experiment(&prog, &w, &mut rng).unwrap()
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.injection, b.injection);
        assert!(a.dynamic_sites > 0);
    }

    #[test]
    fn pure_data_faults_never_crash_scale() {
        // Pure-data sites in @scale are the loaded/multiplied values; bit
        // flips there corrupt data but cannot redirect control or
        // addresses.
        let w = ScaleWorkload::new();
        let prog = prepare(&w, SiteCategory::PureData).unwrap();
        let c = run_campaign(&prog, &w, 40, 7).unwrap();
        assert_eq!(c.counts.crash, 0, "{:?}", c.counts);
        assert!(c.counts.sdc > 0, "flipped data must show up as SDC");
    }

    #[test]
    fn address_faults_crash_sometimes() {
        let w = ScaleWorkload::new();
        let prog = prepare(&w, SiteCategory::Address).unwrap();
        let c = run_campaign(&prog, &w, 60, 11).unwrap();
        assert!(
            c.counts.crash > 0,
            "address-category flips should produce crashes: {:?}",
            c.counts
        );
    }

    #[test]
    fn control_faults_can_hang_and_are_classified_crash() {
        let w = ScaleWorkload::new();
        let prog = prepare(&w, SiteCategory::Control).unwrap();
        let c = run_campaign(&prog, &w, 60, 13).unwrap();
        // Control flips hit %i/%i2/%cond: early exit (SDC), runaway loop
        // (crash via hang budget or OOB), or benign.
        assert!(c.counts.total() == 60);
        assert!(c.counts.sdc + c.counts.crash > 0, "{:?}", c.counts);
    }

    #[test]
    fn campaign_outcome_counts_sum() {
        let w = ScaleWorkload::new();
        let prog = prepare(&w, SiteCategory::PureData).unwrap();
        let c = run_campaign(&prog, &w, 25, 3).unwrap();
        assert_eq!(c.counts.total(), 25);
        assert_eq!(c.experiments.len(), 25);
        let rate = c.sdc_rate();
        assert!((0.0..=100.0).contains(&rate));
    }

    #[test]
    fn study_converges_on_stable_workload() {
        let w = ScaleWorkload::new();
        let prog = prepare(&w, SiteCategory::PureData).unwrap();
        let cfg = StudyConfig {
            experiments_per_campaign: 30,
            target_margin: 10.0,
            min_campaigns: 4,
            max_campaigns: 10,
            seed: 5,
            model: FaultModel::default(),
            prune: false,
        };
        let s = run_study(&prog, &w, &cfg).unwrap();
        assert!(s.samples.len() >= 4);
        assert_eq!(s.counts.total(), s.samples.len() as u64 * 30,);
        assert!(s.summary.mean >= 0.0);
    }

    #[test]
    fn sharded_ranges_equal_whole_campaign() {
        let w = ScaleWorkload::new();
        let prog = prepare(&w, SiteCategory::PureData).unwrap();
        let seed = campaign_seed(0xDEAD_BEEF, 2);
        let whole = run_campaign(&prog, &w, 30, seed).unwrap();
        // Any partition of 0..30 must reproduce the same experiments.
        let mut pieced = Vec::new();
        for range in [0..7, 7..8, 8..21, 21..30] {
            pieced.extend(run_experiment_range(&prog, &w, seed, range).unwrap());
        }
        assert_eq!(whole.experiments, pieced);
    }

    #[test]
    fn experiment_serde_roundtrip() {
        let w = ScaleWorkload::new();
        let prog = prepare(&w, SiteCategory::PureData).unwrap();
        let mut rng = experiment_rng(99, 0);
        let e = run_experiment(&prog, &w, &mut rng).unwrap();
        let text = serde_json::to_string(&e).unwrap();
        let back: Experiment = serde_json::from_str(&text).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn measure_dyn_insts_deterministic() {
        let w = ScaleWorkload::new();
        let a = measure_dyn_insts(w.module(), "scale", &w, 0).unwrap();
        let b = measure_dyn_insts(w.module(), "scale", &w, 0).unwrap();
        assert_eq!(a, b);
        let c = measure_dyn_insts(w.module(), "scale", &w, 2).unwrap();
        assert!(c > a, "bigger input → more dynamic instructions");
    }

    #[test]
    fn every_fault_model_runs_deterministic_campaigns() {
        let w = ScaleWorkload::new();
        for model in [
            FaultModel::SingleBitFlip,
            FaultModel::MultiBitBurst { width: 3 },
            FaultModel::StuckAt {
                bit: 30,
                value: true,
            },
            FaultModel::MaskCorrupt,
            FaultModel::AddressLine { bit: 4 },
            FaultModel::TemporalPair { gap: 8 },
            FaultModel::MemoryCell,
        ] {
            let mut prog = prepare(&w, SiteCategory::PureData).unwrap();
            prog.model = model;
            let a = run_campaign(&prog, &w, 12, 3).unwrap();
            let b = run_campaign(&prog, &w, 12, 3).unwrap();
            assert_eq!(
                a.experiments, b.experiments,
                "{model} must be deterministic"
            );
            assert_eq!(a.counts.total(), 12, "{model}");
            for e in &a.experiments {
                if let Some(inj) = &e.injection {
                    assert_eq!(inj.model, model);
                }
            }
        }
    }

    #[test]
    fn engine_models_corrupt_engine_state() {
        let w = ScaleWorkload::new();
        // @scale has no masked intrinsics: the mask-corruption census is
        // empty and every experiment is benign by construction.
        let mut prog = prepare(&w, SiteCategory::PureData).unwrap();
        prog.model = FaultModel::MaskCorrupt;
        let c = run_campaign(&prog, &w, 10, 5).unwrap();
        assert_eq!(c.counts.benign, 10, "{:?}", c.counts);
        assert!(c.experiments.iter().all(|e| e.injection.is_none()));

        // Address-line flips on a strided loop must hit the guard pages
        // at least sometimes.
        let mut prog = prepare(&w, SiteCategory::PureData).unwrap();
        prog.model = FaultModel::AddressLine { bit: 20 };
        let c = run_campaign(&prog, &w, 30, 5).unwrap();
        assert!(c.counts.crash > 0, "{:?}", c.counts);
        assert!(c
            .experiments
            .iter()
            .any(|e| e.injection.as_ref().is_some_and(|i| i.site_id == 0)));

        // Memory-cell upsets corrupt live data: some must surface as SDC.
        let mut prog = prepare(&w, SiteCategory::PureData).unwrap();
        prog.model = FaultModel::MemoryCell;
        let c = run_campaign(&prog, &w, 30, 5).unwrap();
        assert!(c.counts.sdc > 0, "{:?}", c.counts);
    }

    // --- Static pruning ---------------------------------------------------

    /// A workload with provably-dead bits: %w's high 24 bits die in the
    /// truncation, so the analyzer discharges a solid fraction of the
    /// pure-data fault space.
    struct NarrowWorkload {
        module: Module,
    }

    impl NarrowWorkload {
        fn new() -> NarrowWorkload {
            let src = r#"
define void @narrow(ptr %a, i32 %n) {
entry:
  br label %header
header:
  %i = phi i32 [ 0, %entry ], [ %i2, %body ]
  %cond = icmp slt i32 %i, %n
  br i1 %cond, label %body, label %exit
body:
  %p = getelementptr i32, ptr %a, i32 %i
  %v = load i32, ptr %p
  %w = add i32 %v, 5
  %t = trunc i32 %w to i8
  %z = zext i8 %t to i32
  store i32 %z, ptr %p
  %i2 = add i32 %i, 1
  br label %header
exit:
  ret void
}
"#;
            NarrowWorkload {
                module: vir::parser::parse_module(src).unwrap(),
            }
        }
    }

    impl Workload for NarrowWorkload {
        fn name(&self) -> &str {
            "narrow"
        }
        fn entry(&self) -> &str {
            "narrow"
        }
        fn module(&self) -> &Module {
            &self.module
        }
        fn num_inputs(&self) -> u64 {
            2
        }
        fn setup(&self, mem: &mut Memory, input: u64) -> Result<SetupResult, vexec::Trap> {
            let n = 6 + input * 2;
            let vals: Vec<f32> = (0..n).map(|i| f32::from_bits(i as u32 * 37 + 1)).collect();
            let a = mem.alloc_f32_slice(&vals)?;
            Ok(SetupResult {
                args: vec![
                    RtVal::Scalar(Scalar::ptr(a)),
                    RtVal::Scalar(Scalar::i32(n as i32)),
                ],
                outputs: vec![OutputRegion {
                    addr: a,
                    bytes: n * 4,
                }],
            })
        }
    }

    #[test]
    fn pruned_range_matches_full_run_on_executed_subset() {
        let w = NarrowWorkload::new();
        let prog = prepare(&w, SiteCategory::PureData).unwrap();
        let ctx = build_prune_context(&prog, &w).unwrap();
        assert!(
            ctx.plan.benign_coordinates() > 0,
            "the truncation must discharge coordinates"
        );
        let seed = campaign_seed(0xBEE5, 0);
        let full = run_experiment_range(&prog, &w, seed, 0..60).unwrap();
        let pruned = run_experiment_range_pruned(&prog, &w, &ctx, seed, 0..60).unwrap();
        assert_eq!(full.len(), pruned.len());
        let mut discharged = 0;
        let mut executed = 0;
        for (f, p) in full.iter().zip(&pruned) {
            if p.injection.is_some() || f.injection.is_none() {
                // Executed (or empty-census) experiments must be
                // bit-identical to the full run.
                assert_eq!(f, p);
                executed += 1;
            } else {
                // Discharged: the full run must agree the flip was benign.
                discharged += 1;
                assert_eq!(f.outcome, Outcome::Benign, "unsound prune: {f:?}");
                assert!(!f.detected);
                assert_eq!(p.outcome, Outcome::Benign);
                assert!(!p.detected);
                assert_eq!(p.input, f.input);
                assert_eq!(p.dynamic_sites, f.dynamic_sites);
                assert_eq!(p.golden_dyn_insts, f.golden_dyn_insts);
            }
        }
        assert!(discharged > 0, "pruning must discharge something here");
        assert!(executed > 0, "pruning must not discharge everything");
        // Sharding still composes: any partition reproduces the whole.
        let mut pieced = Vec::new();
        for range in [0..13, 13..14, 14..45, 45..60] {
            pieced.extend(run_experiment_range_pruned(&prog, &w, &ctx, seed, range).unwrap());
        }
        assert_eq!(pruned, pieced);
    }

    #[test]
    fn executed_predictions_cross_validate_as_sound() {
        let w = NarrowWorkload::new();
        let prog = prepare(&w, SiteCategory::PureData).unwrap();
        let ctx = build_prune_context(&prog, &w).unwrap();
        let seed = campaign_seed(0xBEE5, 1);
        let full = run_experiment_range(&prog, &w, seed, 0..80).unwrap();
        let report = crate::analyze::check_soundness(&ctx.plan, &full);
        assert!(report.checked > 0);
        assert!(report.predicted_benign > 0, "{report:?}");
        assert!(
            report.is_sound(),
            "predicted-benign flips produced non-benign outcomes: {:?}",
            report.violations
        );
        assert_eq!(report.misprediction_pct(), 0.0);
    }

    #[test]
    fn prune_rejects_non_bit_flip_models() {
        let w = NarrowWorkload::new();
        let mut prog = prepare(&w, SiteCategory::PureData).unwrap();
        prog.model = FaultModel::MultiBitBurst { width: 3 };
        let err = build_prune_context(&prog, &w).unwrap_err();
        assert!(err.0.contains("single-bit-flip"), "{err}");
    }

    #[test]
    fn study_config_serde_keeps_prune_backward_compatible() {
        let cfg = StudyConfig::default();
        let text = serde_json::to_string(&cfg).unwrap();
        assert!(!text.contains("prune"), "default must omit prune: {text}");
        let back: StudyConfig = serde_json::from_str(&text).unwrap();
        assert!(!back.prune);

        let pruned = StudyConfig {
            prune: true,
            ..StudyConfig::default()
        };
        let text = serde_json::to_string(&pruned).unwrap();
        assert!(text.contains("prune"), "{text}");
        let back: StudyConfig = serde_json::from_str(&text).unwrap();
        assert!(back.prune);
    }

    // --- Fault containment -----------------------------------------------

    /// Serialises tests that depend on the process-global strict flag or
    /// the engine-fault log.
    static CONTAINMENT_GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn gate() -> std::sync::MutexGuard<'static, ()> {
        CONTAINMENT_GATE
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// A workload whose `setup` panics for one specific input: a stand-in
    /// for any engine panic on malformed faulted state.
    struct PanicWorkload {
        inner: ScaleWorkload,
    }

    impl Workload for PanicWorkload {
        fn name(&self) -> &str {
            "panicky scale"
        }
        fn entry(&self) -> &str {
            self.inner.entry()
        }
        fn module(&self) -> &Module {
            self.inner.module()
        }
        fn num_inputs(&self) -> u64 {
            self.inner.num_inputs()
        }
        fn setup(&self, mem: &mut Memory, input: u64) -> Result<SetupResult, vexec::Trap> {
            if input == 1 {
                panic!("deliberate test panic on input 1");
            }
            self.inner.setup(mem, input)
        }
    }

    #[test]
    fn engine_panic_is_contained_as_crash_with_provenance() {
        let _g = gate();
        crate::faultlog::drain_engine_faults();
        let w = PanicWorkload {
            inner: ScaleWorkload::new(),
        };
        let prog = prepare(&w, SiteCategory::PureData).unwrap();
        let seed = campaign_seed(0x51C, 0);
        let c = run_campaign(&prog, &w, 30, seed).unwrap();
        assert_eq!(c.counts.total(), 30, "every experiment must be recorded");
        let panicked: Vec<_> = c
            .experiments
            .iter()
            .enumerate()
            .filter(|(_, e)| e.input == 1)
            .collect();
        assert!(!panicked.is_empty(), "input 1 must be drawn at least once");
        for (_, e) in &panicked {
            assert_eq!(e.outcome, Outcome::Crash);
            assert_eq!(e.injection, None);
            assert_eq!(e.dynamic_sites, 0);
        }
        // Provenance: one log entry per panicking experiment, carrying
        // (campaign seed, index) and the panic message.
        let faults = crate::faultlog::drain_engine_faults();
        assert_eq!(faults.len(), panicked.len());
        for (i, _) in &panicked {
            assert!(
                faults.iter().any(|f| f.experiment == Some((seed, *i))
                    && f.message.contains("deliberate test panic")
                    && f.workload == "panicky scale"),
                "missing provenance for experiment {i}: {faults:?}"
            );
        }
        // Containment is deterministic: the same campaign replays
        // bit-identically, panics included.
        let c2 = run_campaign(&prog, &w, 30, seed).unwrap();
        assert_eq!(c.experiments, c2.experiments);
        crate::faultlog::drain_engine_faults();
    }

    #[test]
    fn strict_mode_aborts_on_engine_panic() {
        let _g = gate();
        let w = PanicWorkload {
            inner: ScaleWorkload::new(),
        };
        let prog = prepare(&w, SiteCategory::PureData).unwrap();
        crate::faultlog::set_strict(true);
        let result = run_campaign(&prog, &w, 30, campaign_seed(0x51C, 0));
        crate::faultlog::set_strict(false);
        let err = result.expect_err("strict mode must abort the campaign");
        assert!(err.0.contains("strict mode"), "{err}");
        assert!(err.0.contains("deliberate test panic"), "{err}");
        crate::faultlog::drain_engine_faults();
    }

    /// A loop that touches only `a[0]`: control flips cannot go out of
    /// bounds, so a runaway loop must be stopped by the hang budget or
    /// the wall-clock watchdog — nothing else.
    struct SpinWorkload {
        module: Module,
    }

    impl SpinWorkload {
        fn new() -> SpinWorkload {
            let src = r#"
define void @spin(ptr %a, i32 %n) {
entry:
  br label %header
header:
  %i = phi i32 [ 0, %entry ], [ %i2, %body ]
  %cond = icmp slt i32 %i, %n
  br i1 %cond, label %body, label %exit
body:
  %v = load float, ptr %a
  %d = fadd float %v, 1.0
  store float %d, ptr %a
  %i2 = add i32 %i, 1
  br label %header
exit:
  ret void
}
"#;
            SpinWorkload {
                module: vir::parser::parse_module(src).unwrap(),
            }
        }
    }

    impl Workload for SpinWorkload {
        fn name(&self) -> &str {
            "spin"
        }
        fn entry(&self) -> &str {
            "spin"
        }
        fn module(&self) -> &Module {
            &self.module
        }
        fn num_inputs(&self) -> u64 {
            1
        }
        fn setup(&self, mem: &mut Memory, _input: u64) -> Result<SetupResult, vexec::Trap> {
            let a = mem.alloc_f32_slice(&[0.0])?;
            Ok(SetupResult {
                args: vec![
                    RtVal::Scalar(Scalar::ptr(a)),
                    RtVal::Scalar(Scalar::i32(24)),
                ],
                outputs: vec![OutputRegion { addr: a, bytes: 4 }],
            })
        }
    }

    /// Like `SpinWorkload`, but every iteration `alloca`s a fresh buffer,
    /// so a runaway loop is an allocation storm.
    struct GrowWorkload {
        module: Module,
    }

    impl GrowWorkload {
        fn new() -> GrowWorkload {
            let src = r#"
define void @grow(ptr %a, i32 %n) {
entry:
  br label %header
header:
  %i = phi i32 [ 0, %entry ], [ %i2, %body ]
  %cond = icmp slt i32 %i, %n
  br i1 %cond, label %body, label %exit
body:
  %buf = alloca float, i32 64
  %v = load float, ptr %a
  store float %v, ptr %buf
  %i2 = add i32 %i, 1
  br label %header
exit:
  ret void
}
"#;
            GrowWorkload {
                module: vir::parser::parse_module(src).unwrap(),
            }
        }
    }

    impl Workload for GrowWorkload {
        fn name(&self) -> &str {
            "grow"
        }
        fn entry(&self) -> &str {
            "grow"
        }
        fn module(&self) -> &Module {
            &self.module
        }
        fn num_inputs(&self) -> u64 {
            1
        }
        fn setup(&self, mem: &mut Memory, _input: u64) -> Result<SetupResult, vexec::Trap> {
            let a = mem.alloc_f32_slice(&[0.0])?;
            Ok(SetupResult {
                args: vec![
                    RtVal::Scalar(Scalar::ptr(a)),
                    RtVal::Scalar(Scalar::i32(16)),
                ],
                outputs: vec![OutputRegion { addr: a, bytes: 4 }],
            })
        }
    }

    #[test]
    fn hang_budget_contains_runaway_loops_as_crash() {
        let w = SpinWorkload::new();
        let prog = prepare(&w, SiteCategory::Control).unwrap();
        assert_eq!(prog.limits, ResourceLimits::default());
        let c = run_campaign(&prog, &w, 60, 17).unwrap();
        assert_eq!(c.counts.total(), 60);
        // @spin touches only a[0]; any crash here is the hang budget.
        assert!(
            c.counts.crash > 0,
            "control flips must drive the loop past the budget: {:?}",
            c.counts
        );
    }

    #[test]
    fn wall_clock_watchdog_contains_runaway_loops_as_crash() {
        let w = SpinWorkload::new();
        let mut prog = prepare(&w, SiteCategory::Control).unwrap();
        // Push the instruction budget out of reach so only the watchdog
        // can stop a runaway loop, then give it a tight real-time leash.
        prog.limits.hang_factor = u64::MAX;
        prog.limits.hang_slack = u64::MAX;
        prog.limits.wall_ms = 30;
        let c = run_campaign(&prog, &w, 60, 17).unwrap();
        assert_eq!(c.counts.total(), 60);
        assert!(
            c.counts.crash > 0,
            "the watchdog must contain the runaway loops: {:?}",
            c.counts
        );
    }

    #[test]
    fn memory_ceiling_contains_allocation_storms_as_crash() {
        let w = GrowWorkload::new();
        let mut prog = prepare(&w, SiteCategory::Control).unwrap();
        // No instruction or wall limit: only the memory ceiling can stop
        // a runaway allocation loop (64 floats per iteration).
        prog.limits.hang_factor = u64::MAX;
        prog.limits.hang_slack = u64::MAX;
        prog.limits.mem_bytes = 1 << 20;
        let c = run_campaign(&prog, &w, 60, 17).unwrap();
        assert_eq!(c.counts.total(), 60);
        assert!(
            c.counts.crash > 0,
            "the memory ceiling must contain the allocation storms: {:?}",
            c.counts
        );
    }
}
