//! Per-experiment trace spans: the structured record of what one fault
//! *did* between injection and outcome.
//!
//! A campaign's persisted [`Experiment`](crate::Experiment) keeps only
//! the outcome-level facts the statistics need. The trace span recorded
//! here carries the observability detail the paper's aggregate figures
//! throw away:
//!
//! - **site provenance** — which static site was hit, its opcode, and
//!   which §II-C categories its forward slice matches;
//! - **injection coordinates** — lane, bit, dynamic occurrence, and the
//!   dynamic instruction index at which the flip landed;
//! - **propagation profile** — dynamic instructions executed between the
//!   injection and the first architectural divergence from the golden
//!   run (first differing store / branch decision / return), with the
//!   trap site standing in as the divergence point on Crash;
//! - **latency** — wall time of the experiment pair.
//!
//! Tracing is opt-in and purely observational: a traced run produces the
//! bit-identical `Experiment` list of an untraced run (the study key and
//! all persisted results are unchanged).

use std::time::Instant;

use vir::analysis::SiteCategory;

use crate::campaign::{
    experiment_rng, run_experiment_tagged, CampaignError, Experiment, Outcome, Prepared,
};
use crate::workload::Workload;

/// Raw measurements collected by the experiment body while tracing
/// (internal hand-off between `campaign` and the span builder).
#[derive(Debug, Clone, Default)]
pub(crate) struct TraceCapture {
    /// Dynamic instruction index at which the bit flip landed.
    pub injected_at: Option<u64>,
    /// Dynamic instruction index of the first architectural divergence.
    pub divergence: Option<u64>,
    /// Dynamic instructions the faulty run executed before finishing or
    /// trapping.
    pub faulty_dyn_insts: u64,
    /// Trap description when the faulty run crashed.
    pub trap: Option<String>,
}

/// Provenance of the injected static site (from `sites.rs`
/// classification).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TraceInjection {
    pub site_id: u32,
    /// Opcode of the instruction owning the site (`"?"` if the site id
    /// cannot be resolved against the instrumented module).
    pub opcode: String,
    /// §II-C categories the site's forward slice matches
    /// (`pure-data` / `control` / `address`; the latter two may overlap).
    pub categories: Vec<String>,
    pub lane: u32,
    pub bit: u32,
    /// 1-based dynamic occurrence index of the site.
    pub occurrence: u64,
    /// Dynamic instruction index at which the flip landed.
    pub at_dyn_inst: u64,
}

/// One experiment's trace span.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ExperimentTrace {
    /// Experiment index within its campaign.
    pub index: usize,
    pub outcome: Outcome,
    pub detected: bool,
    pub input: u64,
    /// `None` when no injection happened (no dynamic sites for this
    /// input, or the engine died before injecting).
    pub injection: Option<TraceInjection>,
    pub golden_dyn_insts: u64,
    pub faulty_dyn_insts: u64,
    /// Faulty minus golden dynamic instructions (positive under
    /// fault-induced extra work, negative under early crashes).
    pub dyn_inst_delta: i64,
    /// Dynamic instructions from injection to first architectural
    /// divergence (trap site on Crash). `None` when the fault never
    /// became architecturally visible (masked) or never landed.
    pub propagation: Option<u64>,
    /// Trap description when the faulty run crashed.
    pub trap: Option<String>,
    /// Wall time of the experiment pair, in nanoseconds.
    pub wall_ns: u64,
}

/// Resolve a site id to its opcode and category names.
fn site_provenance(prog: &Prepared, site_id: u32) -> (String, Vec<String>) {
    let Some(site) = prog.sites.iter().find(|s| s.id == site_id) else {
        return ("?".to_string(), Vec::new());
    };
    let opcode = prog
        .module
        .function(&prog.entry)
        .map(|f| f.inst(site.inst).opcode().to_string())
        .unwrap_or_else(|| "?".to_string());
    let categories = SiteCategory::ALL
        .iter()
        .filter(|c| c.matches(site.flags))
        .map(|c| c.name().to_string())
        .collect();
    (opcode, categories)
}

fn build_trace(
    prog: &Prepared,
    index: usize,
    e: &Experiment,
    cap: &TraceCapture,
    wall_ns: u64,
) -> ExperimentTrace {
    let injection = e.injection.as_ref().map(|inj| {
        let (opcode, categories) = site_provenance(prog, inj.site_id);
        TraceInjection {
            site_id: inj.site_id,
            opcode,
            categories,
            lane: inj.lane,
            bit: inj.bit,
            occurrence: inj.occurrence,
            at_dyn_inst: cap.injected_at.unwrap_or(0),
        }
    });
    // The divergence anchor: first differing architectural event, or the
    // trap site when the run crashed before any event differed.
    let anchor = cap
        .divergence
        .or_else(|| cap.trap.as_ref().map(|_| cap.faulty_dyn_insts));
    let propagation = match (&injection, anchor) {
        (Some(inj), Some(at)) => Some(at.saturating_sub(inj.at_dyn_inst)),
        _ => None,
    };
    ExperimentTrace {
        index,
        outcome: e.outcome,
        detected: e.detected,
        input: e.input,
        injection,
        golden_dyn_insts: e.golden_dyn_insts,
        faulty_dyn_insts: cap.faulty_dyn_insts,
        dyn_inst_delta: cap.faulty_dyn_insts as i64 - e.golden_dyn_insts as i64,
        propagation,
        trap: cap.trap.clone(),
        wall_ns,
    }
}

/// [`crate::run_experiment_range`] with per-experiment trace spans.
///
/// The returned experiment list is **bit-identical** to the untraced
/// function's — tracing adds the golden-run event recording and the
/// faulty-run comparison, neither of which can affect execution.
pub fn run_experiment_range_traced(
    prog: &Prepared,
    workload: &dyn Workload,
    campaign_seed: u64,
    range: std::ops::Range<usize>,
) -> Result<(Vec<Experiment>, Vec<ExperimentTrace>), CampaignError> {
    let mut experiments = Vec::with_capacity(range.len());
    let mut traces = Vec::with_capacity(range.len());
    for i in range {
        let mut rng = experiment_rng(campaign_seed, i);
        let mut cap = TraceCapture::default();
        let started = Instant::now();
        let e = run_experiment_tagged(
            prog,
            workload,
            &mut rng,
            Some((campaign_seed, i)),
            Some(&mut cap),
        )?;
        let wall_ns = started.elapsed().as_nanos() as u64;
        traces.push(build_trace(prog, i, &e, &cap, wall_ns));
        experiments.push(e);
    }
    Ok((experiments, traces))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{campaign_seed, prepare, run_experiment_range, StudyConfig};
    use crate::workload::{OutputRegion, SetupResult};
    use vexec::{Memory, RtVal, Scalar, Trap};

    /// Scale-by-two over a small buffer: a mix of SDC / Benign / Crash
    /// under pure-data injection.
    struct ScaleWorkload {
        m: vir::Module,
    }

    impl ScaleWorkload {
        fn new() -> ScaleWorkload {
            let src = r#"
define void @scale(ptr %a, i32 %n) {
entry:
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %inext, %body ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  %p = getelementptr float, ptr %a, i32 %i
  %v = load float, ptr %p
  %d = fmul float %v, 2.0
  store float %d, ptr %p
  %inext = add i32 %i, 1
  br label %head
exit:
  ret void
}
"#;
            ScaleWorkload {
                m: vir::parser::parse_module(src).unwrap(),
            }
        }
    }

    impl Workload for ScaleWorkload {
        fn name(&self) -> &str {
            "scale"
        }
        fn entry(&self) -> &str {
            "scale"
        }
        fn module(&self) -> &vir::Module {
            &self.m
        }
        fn num_inputs(&self) -> u64 {
            4
        }
        fn setup(&self, mem: &mut Memory, input: u64) -> Result<SetupResult, Trap> {
            let data: Vec<f32> = (0..8).map(|i| (i as f32) + (input as f32)).collect();
            let a = mem.alloc_f32_slice(&data)?;
            Ok(SetupResult {
                args: vec![RtVal::Scalar(Scalar::ptr(a)), RtVal::Scalar(Scalar::i32(8))],
                outputs: vec![OutputRegion { addr: a, bytes: 32 }],
            })
        }
    }

    #[test]
    fn traced_experiments_match_untraced_bit_for_bit() {
        let w = ScaleWorkload::new();
        let prog = prepare(&w, SiteCategory::PureData).unwrap();
        let cfg = StudyConfig::default();
        let seed = campaign_seed(cfg.seed, 0);
        let plain = run_experiment_range(&prog, &w, seed, 0..24).unwrap();
        let (traced, spans) = run_experiment_range_traced(&prog, &w, seed, 0..24).unwrap();
        assert_eq!(plain, traced, "tracing must not perturb results");
        assert_eq!(spans.len(), 24);
        for (k, span) in spans.iter().enumerate() {
            assert_eq!(span.index, k);
        }

        // Lane-occupancy profiling holds the same contract: campaigns run
        // with profiling disabled (a single Option test), and a profiled
        // golden execution of the same workload is bit-identical to the
        // unprofiled one the experiments above measured.
        let golden = |profile: bool| {
            let mut interp = vexec::Interp::new(w.module());
            if profile {
                interp.enable_profiling();
            }
            let setup = w.setup(&mut interp.mem, 0).unwrap();
            let r = interp
                .run(w.entry(), &setup.args, &mut vexec::NoHost)
                .unwrap();
            let out = interp.mem.read_f32_slice(setup.outputs[0].addr, 8).unwrap();
            (r, out)
        };
        let (r_plain, out_plain) = golden(false);
        let (r_prof, out_prof) = golden(true);
        assert_eq!(r_plain, r_prof, "profiling must not perturb execution");
        assert_eq!(out_plain, out_prof);
    }

    #[test]
    fn spans_carry_provenance_and_propagation() {
        let w = ScaleWorkload::new();
        let prog = prepare(&w, SiteCategory::PureData).unwrap();
        let seed = campaign_seed(7, 0);
        let (exps, spans) = run_experiment_range_traced(&prog, &w, seed, 0..40).unwrap();

        let mut saw_sdc_with_propagation = false;
        for (e, span) in exps.iter().zip(&spans) {
            assert_eq!(span.outcome, e.outcome);
            assert_eq!(span.golden_dyn_insts, e.golden_dyn_insts);
            if let Some(inj) = &span.injection {
                assert_ne!(inj.opcode, "?", "site must resolve to an opcode");
                assert!(
                    inj.categories.iter().any(|c| c == "pure-data"),
                    "pure-data study must hit pure-data sites: {:?}",
                    inj.categories
                );
                assert!(inj.at_dyn_inst > 0, "injection clock must be recorded");
            }
            match e.outcome {
                Outcome::Sdc => {
                    // A corrupted output implies an architecturally
                    // visible divergence.
                    let p = span.propagation.expect("SDC must have diverged");
                    assert!(span.injection.is_some());
                    saw_sdc_with_propagation = true;
                    // Divergence cannot precede injection.
                    let inj = span.injection.as_ref().unwrap();
                    assert!(inj.at_dyn_inst + p <= span.faulty_dyn_insts + 1);
                }
                Outcome::Crash => {
                    assert!(span.trap.is_some(), "crash span records the trap site");
                }
                Outcome::Benign => {}
            }
        }
        assert!(
            saw_sdc_with_propagation,
            "expected at least one SDC over 40 experiments"
        );
    }
}
