//! The workload abstraction: how the campaign driver sets up a benchmark
//! program, runs it, and observes its output.
//!
//! A fault-injection experiment "involves executing a benchmark program
//! twice using a randomly selected program input chosen from a predefined
//! set of inputs" (paper §IV-B). [`Workload::setup`] must therefore be
//! *deterministic per input index*: the golden and faulty runs of one
//! experiment call it with the same index and must see identical memory.

use vexec::{Memory, RtVal, Trap};
use vir::Module;

/// A memory region whose final contents are the program's observable
/// output (compared bit-exactly for SDC classification).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutputRegion {
    pub addr: u64,
    pub bytes: u64,
}

/// Everything the driver needs to launch one run.
#[derive(Debug, Clone)]
pub struct SetupResult {
    /// Arguments for the entry function.
    pub args: Vec<RtVal>,
    /// Output regions to snapshot after the run.
    pub outputs: Vec<OutputRegion>,
}

/// A benchmark program plus its input family.
pub trait Workload: Sync {
    /// Human-readable name ("Blackscholes", ...).
    fn name(&self) -> &str;

    /// The vectorized kernel targeted for fault injection.
    fn entry(&self) -> &str;

    /// The compiled, *uninstrumented* module.
    fn module(&self) -> &Module;

    /// Size of the predefined input set.
    fn num_inputs(&self) -> u64;

    /// Deterministically materialize input `input` (`< num_inputs`) into
    /// `mem` and describe the run.
    fn setup(&self, mem: &mut Memory, input: u64) -> Result<SetupResult, Trap>;
}

/// Snapshot the observable output of a finished run: the concatenated
/// output-region bytes plus the returned value's raw bits.
pub fn snapshot_outputs(
    mem: &Memory,
    outputs: &[OutputRegion],
    ret: &Option<RtVal>,
) -> Result<Vec<u8>, Trap> {
    let mut buf = Vec::new();
    for r in outputs {
        buf.extend_from_slice(&mem.snapshot(r.addr, r.bytes)?);
    }
    if let Some(v) = ret {
        for lane in v.lanes() {
            buf.extend_from_slice(&lane.bits.to_le_bytes());
        }
    }
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vexec::Scalar;

    #[test]
    fn snapshot_concatenates_regions_and_ret() {
        let mut mem = Memory::default();
        let a = mem.alloc_f32_slice(&[1.0, 2.0]).unwrap();
        let b = mem.alloc_i32_slice(&[3]).unwrap();
        let regions = [
            OutputRegion { addr: a, bytes: 8 },
            OutputRegion { addr: b, bytes: 4 },
        ];
        let ret = Some(RtVal::Scalar(Scalar::f32(5.0)));
        let snap = snapshot_outputs(&mem, &regions, &ret).unwrap();
        assert_eq!(snap.len(), 8 + 4 + 8);
        assert_eq!(&snap[..4], &1.0f32.to_le_bytes());
        assert_eq!(&snap[8..12], &3i32.to_le_bytes());
    }

    #[test]
    fn snapshot_differs_on_corruption() {
        let mut mem = Memory::default();
        let a = mem.alloc_f32_slice(&[1.0, 2.0]).unwrap();
        let regions = [OutputRegion { addr: a, bytes: 8 }];
        let before = snapshot_outputs(&mem, &regions, &None).unwrap();
        mem.write_scalar(a + 4, Scalar::f32(2.0000002)).unwrap();
        let after = snapshot_outputs(&mem, &regions, &None).unwrap();
        assert_ne!(before, after, "bit-exact comparison catches tiny SDCs");
    }
}
