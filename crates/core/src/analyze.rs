//! Static resiliency analysis: prove injection coordinates benign before
//! ever running them.
//!
//! The fault space of a study is the set of `(site, lane, bit)`
//! coordinates the injector can corrupt. This pass classifies every
//! coordinate by joining the site enumeration of [`crate::sites`] with
//! the vir dataflow analyses:
//!
//! - [`vir::analysis::DemandedBits`] — a bit whose demand is clear
//!   influences no store, address, branch, trap condition, host call, or
//!   return value; flipping it is architecturally invisible.
//! - [`vir::analysis::MaskReach`] — a lane of a masked op proven
//!   inactive on all paths never executes as a dynamic fault site.
//!
//! A coordinate proven [`BitClass::ProvablyBenign`] can be *pruned*: the
//! campaign driver accounts it as [`crate::Outcome::Benign`] without
//! executing the faulty run (see [`crate::campaign::run_experiment_range_pruned`]).
//! Everything else keeps its feeding class (store / address / control /
//! unknown) for the report.
//!
//! Soundness rests on the demand transfer functions over-demanding
//! around every observable: stored values, addresses, branch conditions,
//! potential trap operands (division, allocation counts), host-call
//! arguments (which covers detector checks), and returns are always
//! fully demanded. The analysis runs on the *uninstrumented* module —
//! the same module [`crate::instrument`] enumerates, so site ids line up
//! with the instrumented program by construction.

use vir::analysis::{DemandedBits, MaskReach, UseGraph};
use vir::intrinsics::{self, Intrinsic};
use vir::{Function, InstKind, Module, ValueId};

use crate::campaign::Experiment;
use crate::fault::FaultModel;
use crate::sites::{enumerate_sites, SiteKind, StaticSite};
use crate::Outcome;

/// Why a coordinate is provably benign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenignReason {
    /// The bit's demand is clear: no observable depends on it.
    DeadBit,
    /// The bit sits above the highest demanded bit of its lane — a
    /// truncation (or narrowing use) discards it.
    Truncated,
    /// The whole lane's demand is clear.
    DeadLane,
    /// The lane is masked off on every path (or the site never
    /// executes); it is not even a dynamic fault site.
    MaskedLane,
}

/// Static classification of one `(site, lane, bit)` coordinate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BitClass {
    /// Flipping this bit provably cannot change any observable output.
    ProvablyBenign(BenignReason),
    /// Feeds a stored value or the return value.
    StoreFeeding,
    /// Feeds an address computation.
    AddressFeeding,
    /// Feeds a branch condition.
    ControlFeeding,
    /// Demanded, but the forward slice reaches no classified observable
    /// (e.g. only an opaque call).
    Unknown,
}

impl BitClass {
    pub fn is_benign(&self) -> bool {
        matches!(self, BitClass::ProvablyBenign(_))
    }

    pub fn name(&self) -> &'static str {
        match self {
            BitClass::ProvablyBenign(_) => "provably-benign",
            BitClass::StoreFeeding => "store-feeding",
            BitClass::AddressFeeding => "address-feeding",
            BitClass::ControlFeeding => "control-feeding",
            BitClass::Unknown => "unknown",
        }
    }
}

/// Per-site slice of the static vulnerability report.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SiteReport {
    /// Site id from the full enumeration (matches instrumented ids).
    pub id: u32,
    /// Display name of the injected value.
    pub value: String,
    pub opcode: String,
    /// `"lvalue"` or `"store-value"`.
    pub kind: String,
    /// Primary category (address > control > pure-data).
    pub category: String,
    /// Feeding class of the non-benign coordinates.
    pub class: String,
    pub lanes: u32,
    /// Element width in bits.
    pub width: u32,
    /// Benign-bit mask per lane (bit set ⇔ provably benign).
    pub lane_benign: Vec<u64>,
    /// Lanes proven inactive on all paths.
    pub masked_off: Vec<bool>,
}

impl SiteReport {
    fn width_mask(&self) -> u64 {
        if self.width >= 64 {
            u64::MAX
        } else {
            (1u64 << self.width) - 1
        }
    }

    /// Total coordinates at this site.
    pub fn total_bits(&self) -> u64 {
        self.lanes as u64 * self.width as u64
    }

    /// Provably-benign coordinates at this site.
    pub fn benign_bits(&self) -> u64 {
        self.lane_benign
            .iter()
            .map(|m| (m & self.width_mask()).count_ones() as u64)
            .sum()
    }

    /// Fraction of this site's coordinates predicted benign, 0..=1.
    pub fn benign_fraction(&self) -> f64 {
        let total = self.total_bits();
        if total == 0 {
            0.0
        } else {
            self.benign_bits() as f64 / total as f64
        }
    }

    /// Classify one `(lane, bit)` coordinate of this site.
    pub fn class_of(&self, lane: u32, bit: u32) -> BitClass {
        let li = lane as usize;
        if li >= self.lane_benign.len() || bit >= self.width {
            return BitClass::Unknown;
        }
        let benign = self.lane_benign[li] & self.width_mask();
        if self.masked_off.get(li).copied().unwrap_or(false) {
            return BitClass::ProvablyBenign(BenignReason::MaskedLane);
        }
        if benign == self.width_mask() {
            return BitClass::ProvablyBenign(BenignReason::DeadLane);
        }
        if benign & (1u64 << bit) != 0 {
            let live = !benign & self.width_mask();
            let highest_live = 63 - live.leading_zeros();
            return BitClass::ProvablyBenign(if bit > highest_live {
                BenignReason::Truncated
            } else {
                BenignReason::DeadBit
            });
        }
        match self.class.as_str() {
            "store-feeding" => BitClass::StoreFeeding,
            "address-feeding" => BitClass::AddressFeeding,
            "control-feeding" => BitClass::ControlFeeding,
            _ => BitClass::Unknown,
        }
    }
}

/// The static vulnerability report for one function.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct VulnReport {
    pub function: String,
    pub sites: Vec<SiteReport>,
}

impl VulnReport {
    pub fn total_bits(&self) -> u64 {
        self.sites.iter().map(SiteReport::total_bits).sum()
    }

    pub fn benign_bits(&self) -> u64 {
        self.sites.iter().map(SiteReport::benign_bits).sum()
    }

    /// Fraction of the whole fault space predicted benign, 0..=1.
    pub fn benign_fraction(&self) -> f64 {
        let total = self.total_bits();
        if total == 0 {
            0.0
        } else {
            self.benign_bits() as f64 / total as f64
        }
    }

    pub fn site(&self, id: u32) -> Option<&SiteReport> {
        self.sites.iter().find(|s| s.id == id)
    }
}

/// The benign-coordinate set in the shape the campaign driver consumes:
/// indexed by site id, one benign-bit mask per lane.
#[derive(Debug, Clone, PartialEq)]
pub struct PrunePlan {
    widths: Vec<u32>,
    benign: Vec<Vec<u64>>,
}

impl PrunePlan {
    pub fn from_report(r: &VulnReport) -> PrunePlan {
        let n = r.sites.iter().map(|s| s.id as usize + 1).max().unwrap_or(0);
        let mut widths = vec![0u32; n];
        let mut benign = vec![Vec::new(); n];
        for s in &r.sites {
            widths[s.id as usize] = s.width;
            benign[s.id as usize] = s.lane_benign.iter().map(|m| m & s.width_mask()).collect();
        }
        PrunePlan { widths, benign }
    }

    /// Element width (bits) of site `id`, if known.
    pub fn width(&self, site: u32) -> Option<u32> {
        self.widths.get(site as usize).copied().filter(|&w| w > 0)
    }

    /// Is flipping `bit` of `lane` at `site` provably benign?
    pub fn is_benign(&self, site: u32, lane: u32, bit: u32) -> bool {
        self.benign
            .get(site as usize)
            .and_then(|lanes| lanes.get(lane as usize))
            .is_some_and(|m| bit < 64 && m & (1u64 << bit) != 0)
    }

    /// Total coordinates covered by the plan.
    pub fn total_coordinates(&self) -> u64 {
        self.benign
            .iter()
            .zip(&self.widths)
            .map(|(lanes, w)| lanes.len() as u64 * *w as u64)
            .sum()
    }

    /// Coordinates predicted benign.
    pub fn benign_coordinates(&self) -> u64 {
        self.benign
            .iter()
            .map(|lanes| lanes.iter().map(|m| m.count_ones() as u64).sum::<u64>())
            .sum()
    }
}

fn scalar_mask(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// Does `v`'s forward slice reach a store or the return value?
fn reaches_store_or_ret(f: &Function, uses: &UseGraph, v: ValueId) -> bool {
    let mut seen = vec![false; f.values.len()];
    let mut stack = vec![v];
    while let Some(cur) = stack.pop() {
        if seen[cur.index()] {
            continue;
        }
        seen[cur.index()] = true;
        if !uses.term_uses(cur).is_empty() {
            // RetVal or BranchCond — both observable; branch-feeding
            // sites carry the control flag, so reaching here from an
            // unflagged site means the return value.
            return true;
        }
        for &u in uses.users(cur) {
            let inst = f.inst(u);
            match &inst.kind {
                InstKind::Store { .. } => return true,
                InstKind::Call { callee, .. }
                    if intrinsics::parse(callee)
                        .is_some_and(|i| matches!(i, Intrinsic::MaskStore { .. })) =>
                {
                    return true;
                }
                _ => {}
            }
            if let Some(r) = inst.result {
                stack.push(r);
            }
        }
    }
    false
}

fn feeding_class(f: &Function, uses: &UseGraph, site: &StaticSite) -> &'static str {
    if site.flags.address {
        return "address-feeding";
    }
    if site.flags.control {
        return "control-feeding";
    }
    match site.kind {
        SiteKind::StoreValue { .. } => "store-feeding",
        SiteKind::Lvalue => {
            let result = f.inst(site.inst).result;
            match result {
                Some(v) if reaches_store_or_ret(f, uses, v) => "store-feeding",
                _ => "unknown",
            }
        }
    }
}

/// Analyze one function: classify every enumerable injection coordinate.
pub fn analyze_function(f: &Function) -> VulnReport {
    let sites = enumerate_sites(f);
    let demand = DemandedBits::compute(f);
    let mask = MaskReach::new(f);
    let uses = UseGraph::build(f);

    let mut reports = Vec::with_capacity(sites.len());
    for site in &sites {
        let inst = f.inst(site.inst);
        let lanes = site.lanes();
        let width = site.elem().bits();
        let wmask = scalar_mask(width);
        let block = f.block_of(site.inst);
        let reachable = block.is_none_or(|b| mask.block_reachable(b));

        // Which lanes are provably inactive? Unreachable code never
        // executes at all; masked ops may prove individual lanes off.
        let mut masked_off = vec![!reachable; lanes as usize];
        if reachable && site.mask.is_some() {
            if let Some(activity) = mask.masked_op_lanes(site.inst) {
                for (i, a) in activity.iter().enumerate().take(lanes as usize) {
                    if *a == Some(false) {
                        masked_off[i] = true;
                    }
                }
            }
        }

        // Demand-based benignity applies to Lvalue sites only: the
        // corrupted value is the instruction result, whose demanded bits
        // the dataflow computed. Store-value corruption lands in memory,
        // which the analysis never proves dead.
        let demand_value = match site.kind {
            SiteKind::Lvalue => inst.result,
            SiteKind::StoreValue { .. } => None,
        };
        let lane_benign: Vec<u64> = (0..lanes)
            .map(|l| {
                if masked_off[l as usize] {
                    return wmask;
                }
                match demand_value {
                    Some(v) => !demand.lane(v, l) & wmask,
                    None => 0,
                }
            })
            .collect();

        let value = match site.kind {
            SiteKind::Lvalue => inst
                .result
                .map(|v| f.value_display_name(v))
                .unwrap_or_default(),
            SiteKind::StoreValue { operand_index } => inst
                .operands()
                .get(operand_index)
                .and_then(|op| op.value())
                .map(|v| f.value_display_name(v))
                .unwrap_or_else(|| "const".to_string()),
        };
        let category = if site.flags.address {
            "address"
        } else if site.flags.control {
            "control"
        } else {
            "pure-data"
        };
        reports.push(SiteReport {
            id: site.id,
            value,
            opcode: inst.opcode().to_string(),
            kind: match site.kind {
                SiteKind::Lvalue => "lvalue".to_string(),
                SiteKind::StoreValue { .. } => "store-value".to_string(),
            },
            category: category.to_string(),
            class: feeding_class(f, &uses, site).to_string(),
            lanes,
            width,
            lane_benign,
            masked_off,
        });
    }
    VulnReport {
        function: f.name.clone(),
        sites: reports,
    }
}

/// Analyze `entry` of `module`. The module is verified first: analysis
/// results on ill-formed IR would be meaningless, so a [`vir::VerifyError`]
/// surfaces as a clean error instead.
pub fn analyze_module(module: &Module, entry: &str) -> Result<VulnReport, String> {
    vir::verify::verify_module(module).map_err(|e| format!("module verification failed: {e}"))?;
    let f = module
        .function(entry)
        .ok_or_else(|| format!("no function '{entry}' in module"))?;
    Ok(analyze_function(f))
}

/// One prediction the executed study contradicted.
#[derive(Debug, Clone, PartialEq)]
pub struct SoundnessViolation {
    pub site_id: u32,
    pub lane: u32,
    pub flip_mask: u64,
    pub outcome: Outcome,
    pub detected: bool,
}

impl std::fmt::Display for SoundnessViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "site {} lane {} flip {:#x} predicted benign but observed {:?}{}",
            self.site_id,
            self.lane,
            self.flip_mask,
            self.outcome,
            if self.detected { " (detected)" } else { "" }
        )
    }
}

/// Cross-validation result: did any executed injection the plan called
/// benign produce a non-benign outcome?
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SoundnessReport {
    /// Experiments whose injection record the plan could judge.
    pub checked: u64,
    /// Of those, predicted provably benign.
    pub predicted_benign: u64,
    pub violations: Vec<SoundnessViolation>,
}

impl SoundnessReport {
    pub fn is_sound(&self) -> bool {
        self.violations.is_empty()
    }

    /// Misprediction rate over predicted-benign experiments, in percent.
    pub fn misprediction_pct(&self) -> f64 {
        if self.predicted_benign == 0 {
            0.0
        } else {
            100.0 * self.violations.len() as f64 / self.predicted_benign as f64
        }
    }
}

/// Scan executed experiments against the plan: every injection whose
/// flipped bits are all predicted benign must have come out
/// [`Outcome::Benign`] and undetected. Engine-level models (no static
/// site) and temporal pairs (second flip unrecorded) are skipped.
pub fn check_soundness<'a>(
    plan: &PrunePlan,
    experiments: impl IntoIterator<Item = &'a Experiment>,
) -> SoundnessReport {
    let mut report = SoundnessReport::default();
    for e in experiments {
        let Some(inj) = &e.injection else { continue };
        match inj.model {
            FaultModel::SingleBitFlip
            | FaultModel::MultiBitBurst { .. }
            | FaultModel::StuckAt { .. } => {}
            _ => continue,
        }
        report.checked += 1;
        let flip = inj.bits_before ^ inj.bits_after;
        let all_benign =
            (0..64).all(|b| flip & (1u64 << b) == 0 || plan.is_benign(inj.site_id, inj.lane, b));
        if !all_benign {
            continue;
        }
        report.predicted_benign += 1;
        if e.outcome != Outcome::Benign || e.detected {
            report.violations.push(SoundnessViolation {
                site_id: inj.site_id,
                lane: inj.lane,
                flip_mask: flip,
                outcome: e.outcome,
                detected: e.detected,
            });
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze(src: &str, entry: &str) -> VulnReport {
        let m = vir::parser::parse_module(src).unwrap();
        analyze_module(&m, entry).unwrap()
    }

    #[test]
    fn truncated_high_bits_are_benign() {
        // %w is truncated to i8: bits 8..32 of %w are provably benign.
        let r = analyze(
            r#"
define i8 @f(i32 %x) {
entry:
  %w = add i32 %x, 1
  %t = trunc i32 %w to i8
  ret i8 %t
}
"#,
            "f",
        );
        let site = r
            .sites
            .iter()
            .find(|s| s.value.contains('w'))
            .expect("site for %w");
        assert_eq!(site.width, 32);
        assert_eq!(site.lane_benign[0], 0xFFFF_FF00);
        assert_eq!(
            site.class_of(0, 12),
            BitClass::ProvablyBenign(BenignReason::Truncated)
        );
        assert_eq!(site.class_of(0, 3), BitClass::StoreFeeding);
        // The truncated value itself is fully demanded by the return.
        let t = r.sites.iter().find(|s| s.value.contains('t')).unwrap();
        assert_eq!(t.lane_benign[0] & 0xFF, 0);
    }

    #[test]
    fn store_value_sites_are_never_bit_benign() {
        let r = analyze(
            r#"
define void @f(ptr %p, i32 %x) {
entry:
  %v = and i32 %x, 255
  store i32 %v, ptr %p
  ret void
}
"#,
            "f",
        );
        let stored = r.sites.iter().find(|s| s.kind == "store-value").unwrap();
        assert_eq!(stored.benign_bits(), 0);
        assert_eq!(stored.class, "store-feeding");
        assert_eq!(stored.class_of(0, 31), BitClass::StoreFeeding);
        // But the Lvalue site of %v knows bits 8..32 die in the `and`...
        // no: %v IS the stored value. Its Lvalue site is fully demanded.
        let lv = r
            .sites
            .iter()
            .find(|s| s.kind == "lvalue" && s.value.contains('v'))
            .unwrap();
        assert_eq!(lv.benign_bits(), 0);
    }

    #[test]
    fn address_and_control_classes_win_over_store() {
        let r = analyze(
            r#"
define void @f(ptr %a, i32 %n) {
entry:
  br label %header
header:
  %i = phi i32 [ 0, %entry ], [ %i2, %body ]
  %cond = icmp slt i32 %i, %n
  br i1 %cond, label %body, label %exit
body:
  %p = getelementptr float, ptr %a, i32 %i
  %v = load float, ptr %p
  store float %v, ptr %p
  %i2 = add i32 %i, 1
  br label %header
exit:
  ret void
}
"#,
            "f",
        );
        let p = r.sites.iter().find(|s| s.value.contains('p')).unwrap();
        assert_eq!(p.class, "address-feeding");
        assert_eq!(p.class_of(0, 5), BitClass::AddressFeeding);
        let cond = r.sites.iter().find(|s| s.value.contains("cond")).unwrap();
        assert_eq!(cond.class, "control-feeding");
        // i1 has one meaningful bit and it steers the branch.
        assert_eq!(cond.width, 1);
        assert_eq!(cond.class_of(0, 0), BitClass::ControlFeeding);
    }

    #[test]
    fn dead_value_is_fully_benign() {
        let r = analyze(
            r#"
define void @f(ptr %p, i32 %x) {
entry:
  %dead = mul i32 %x, 3
  store i32 %x, ptr %p
  ret void
}
"#,
            "f",
        );
        let dead = r.sites.iter().find(|s| s.value.contains("dead")).unwrap();
        assert_eq!(dead.benign_bits(), 32);
        assert_eq!(
            dead.class_of(0, 17),
            BitClass::ProvablyBenign(BenignReason::DeadLane)
        );
    }

    #[test]
    fn masked_memop_mask_bits_below_msb_are_benign() {
        // The AVX maskload reads only the sign bit of each mask lane:
        // bits 0..31 of every %m lane are provably benign.
        let r = analyze(
            r#"
define <8 x float> @f(ptr %p, <8 x i32> %m) {
entry:
  %v = call <8 x float> @llvm.x86.avx.maskload.ps.256(ptr %p, <8 x i32> %m)
  ret <8 x float> %v
}
"#,
            "f",
        );
        // %m is a param, not a site; but the loaded value %v is fully
        // demanded by the return.
        let v = r.sites.iter().find(|s| s.value.contains('v')).unwrap();
        assert_eq!(v.lanes, 8);
        assert_eq!(v.benign_bits(), 0);
    }

    #[test]
    fn provably_off_lanes_of_masked_ops_are_benign() {
        // Constant mask 0,0,0,0,-1,-1,-1,-1: lanes 0..4 never execute.
        let r = analyze(
            r#"
define <8 x float> @f(ptr %p) {
entry:
  %v = call <8 x float> @llvm.x86.avx.maskload.ps.256(ptr %p, <8 x i32> <i32 0, i32 0, i32 0, i32 0, i32 -1, i32 -1, i32 -1, i32 -1>)
  ret <8 x float> %v
}
"#,
            "f",
        );
        let v = r.sites.iter().find(|s| s.value.contains('v')).unwrap();
        for lane in 0..4 {
            assert!(v.masked_off[lane], "lane {lane} provably off");
            assert_eq!(
                v.class_of(lane as u32, 13),
                BitClass::ProvablyBenign(BenignReason::MaskedLane)
            );
        }
        for lane in 4..8 {
            assert!(!v.masked_off[lane]);
            assert_eq!(v.class_of(lane as u32, 13), BitClass::StoreFeeding);
        }
        assert_eq!(v.benign_bits(), 4 * 32);
    }

    #[test]
    fn plan_mirrors_report_and_counts_coordinates() {
        let r = analyze(
            r#"
define i8 @f(i32 %x) {
entry:
  %w = add i32 %x, 1
  %t = trunc i32 %w to i8
  ret i8 %t
}
"#,
            "f",
        );
        let plan = PrunePlan::from_report(&r);
        let w = r.sites.iter().find(|s| s.value.contains('w')).unwrap();
        assert!(plan.is_benign(w.id, 0, 20));
        assert!(!plan.is_benign(w.id, 0, 3));
        assert!(!plan.is_benign(w.id, 1, 20), "no such lane");
        assert!(!plan.is_benign(999, 0, 0), "no such site");
        assert_eq!(plan.width(w.id), Some(32));
        assert_eq!(plan.total_coordinates(), r.total_bits());
        assert_eq!(plan.benign_coordinates(), r.benign_bits());
        assert!(r.benign_fraction() > 0.0);
    }

    #[test]
    fn analyze_module_verifies_first() {
        // Parses fine, but %y is used before its definition dominates the
        // use — verification must reject it before analysis runs.
        let m = vir::parser::parse_module(
            r#"
define i32 @f(i32 %x) {
entry:
  %z = add i32 %y, 1
  br label %later
later:
  %y = add i32 %x, 1
  ret i32 %z
}
"#,
        )
        .unwrap();
        let err = analyze_module(&m, "f").unwrap_err();
        assert!(err.contains("verification failed"), "{err}");
        let ok = vir::parser::parse_module("define void @g() {\nentry:\n  ret void\n}\n").unwrap();
        let err = analyze_module(&ok, "missing").unwrap_err();
        assert!(err.contains("missing"), "{err}");
    }

    #[test]
    fn report_roundtrips_as_json() {
        let r = analyze(
            r#"
define i8 @f(i32 %x) {
entry:
  %w = add i32 %x, 1
  %t = trunc i32 %w to i8
  ret i8 %t
}
"#,
            "f",
        );
        let text = serde_json::to_string(&r).unwrap();
        let back: VulnReport = serde_json::from_str(&text).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn unreachable_sites_are_fully_benign() {
        let r = analyze(
            r#"
define void @f(ptr %p, i32 %x) {
entry:
  ret void
orphan:
  %v = add i32 %x, 7
  store i32 %v, ptr %p
  ret void
}
"#,
            "f",
        );
        for s in &r.sites {
            assert_eq!(s.benign_bits(), s.total_bits(), "site {}", s.value);
            assert_eq!(
                s.class_of(0, 0),
                BitClass::ProvablyBenign(BenignReason::MaskedLane)
            );
        }
    }
}
