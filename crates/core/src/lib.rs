//! # vulfi — Vector-oriented fault injector, in Rust
//!
//! This crate is the primary contribution of the reproduced paper,
//! *"Towards Resiliency Evaluation of Vector Programs"*: an IR-level fault
//! injector that understands **vector registers** and **masked vector
//! operations**.
//!
//! Pipeline (paper Fig. 1):
//!
//! 1. Compile the target program to [`vir`] (via `spmdc` for ISPC-style
//!    sources or `vir::parser` for hand-written IR).
//! 2. [`sites`] — enumerate static fault sites (every instruction Lvalue
//!    plus store value operands; one site per vector lane) and classify
//!    each by its forward slice into **pure-data / control / address**
//!    (§II-C).
//! 3. [`instrument`] — splice runtime-API calls at every selected site,
//!    cloning vector registers lane by lane with mask plumbing (§II-D,
//!    Figs. 4-5).
//! 4. [`runtime`] — at execution time, count dynamic fault sites (active
//!    lanes only) and flip exactly one random bit at one uniformly chosen
//!    dynamic site (§II-B).
//! 5. [`campaign`] — run golden/faulty pairs, classify SDC / Benign /
//!    Crash, aggregate 100-experiment campaigns, and repeat until the
//!    ±3 pp @95% stopping rule of [`stats`] fires (§IV).
//!
//! ```
//! use vulfi::campaign::{prepare, run_campaign};
//! use vulfi::workload::{OutputRegion, SetupResult, Workload};
//! use vir::analysis::SiteCategory;
//! # use vexec::{Memory, RtVal, Scalar, Trap};
//! # struct W { m: vir::Module }
//! # impl Workload for W {
//! #   fn name(&self) -> &str { "demo" }
//! #   fn entry(&self) -> &str { "scale" }
//! #   fn module(&self) -> &vir::Module { &self.m }
//! #   fn num_inputs(&self) -> u64 { 1 }
//! #   fn setup(&self, mem: &mut Memory, _i: u64) -> Result<SetupResult, Trap> {
//! #     let a = mem.alloc_f32_slice(&[1.0, 2.0, 3.0, 4.0])?;
//! #     Ok(SetupResult { args: vec![RtVal::Scalar(Scalar::ptr(a)), RtVal::Scalar(Scalar::i32(4))],
//! #                      outputs: vec![OutputRegion { addr: a, bytes: 16 }] })
//! #   }
//! # }
//! # let src = "define void @scale(ptr %a, i32 %n) {\nentry:\n  br label %h\nh:\n  %i = phi i32 [ 0, %entry ], [ %i2, %b ]\n  %c = icmp slt i32 %i, %n\n  br i1 %c, label %b, label %x\nb:\n  %p = getelementptr float, ptr %a, i32 %i\n  %v = load float, ptr %p\n  %d = fmul float %v, 2.0\n  store float %d, ptr %p\n  %i2 = add i32 %i, 1\n  br label %h\nx:\n  ret void\n}\n";
//! # let w = W { m: vir::parser::parse_module(src).unwrap() };
//! let prog = prepare(&w, SiteCategory::PureData).unwrap();
//! let result = run_campaign(&prog, &w, 20, 42).unwrap();
//! assert_eq!(result.counts.total(), 20);
//! ```

pub mod analyze;
pub mod campaign;
pub mod fault;
pub mod faultlog;
pub mod instrument;
pub mod report;
pub mod runtime;
pub mod sites;
pub mod spec;
pub mod stats;
pub mod trace;
pub mod workload;

pub use analyze::{
    analyze_function, analyze_module, check_soundness, BenignReason, BitClass, PrunePlan,
    SiteReport, SoundnessReport, SoundnessViolation, VulnReport,
};
pub use campaign::{
    build_prune_context, campaign_seed, experiment_rng, prepare, prepare_with, run_campaign,
    run_experiment, run_experiment_range, run_experiment_range_pruned, run_study, CampaignError,
    CampaignResult, Experiment, InputCensus, Outcome, OutcomeCounts, Prepared, PruneContext,
    ResourceLimits, StudyConfig, StudyResult,
};
pub use fault::{FaultModel, MODEL_KINDS};
pub use faultlog::{
    drain_engine_faults, engine_faults, record_engine_fault, set_strict, strict, EngineFault,
};
pub use instrument::{instrument_module, InstrumentOptions, Instrumented};
pub use report::{StudyReport, SuiteReport};
pub use runtime::{DetectorStats, InjectionRecord, RunMode, VulfiHost};
pub use sites::{category_mix, enumerate_sites, CategoryMix, SiteKind, StaticSite};
pub use spec::{StudySpec, SPEC_CATEGORIES, SPEC_ISAS, SPEC_SCALES};
pub use stats::{study_converged, two_proportion_z_test, wilson_interval_95, StudySummary, ZTest};
pub use trace::{run_experiment_range_traced, ExperimentTrace, TraceInjection};
pub use workload::{OutputRegion, SetupResult, Workload};
