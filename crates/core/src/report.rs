//! Serializable experiment reports.
//!
//! Campaign and study results flattened into plain-old-data structures for
//! JSON export, so EXPERIMENTS.md-style records and external analysis
//! scripts can consume harness output without re-running anything.

use serde::{Deserialize, Serialize};
use vir::analysis::SiteCategory;

use crate::campaign::{OutcomeCounts, StudyResult};
use crate::stats::StudySummary;

/// One (benchmark × ISA × category) study cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudyReport {
    pub benchmark: String,
    /// ISA label ("AVX" / "SSE").
    pub target: String,
    pub category: SiteCategory,
    pub counts: OutcomeCounts,
    pub summary: StudySummary,
    /// Per-campaign SDC-rate samples.
    pub samples: Vec<f64>,
    pub converged: bool,
}

impl StudyReport {
    pub fn new(benchmark: &str, target: &str, study: &StudyResult) -> StudyReport {
        StudyReport {
            benchmark: benchmark.to_string(),
            target: target.to_string(),
            category: study.category,
            counts: study.counts,
            summary: study.summary,
            samples: study.samples.clone(),
            converged: study.converged,
        }
    }

    pub fn sdc_rate(&self) -> f64 {
        self.counts.sdc_rate()
    }

    /// Wilson 95% score interval on the experiment-level SDC proportion,
    /// in percent — the uncertainty band analytics tables print next to
    /// [`Self::sdc_rate`].
    pub fn sdc_wilson_95(&self) -> (f64, f64) {
        let (lo, hi) = crate::stats::wilson_interval_95(self.counts.sdc, self.counts.total());
        (100.0 * lo, 100.0 * hi)
    }
}

/// A whole evaluation run: many cells plus the configuration used.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct SuiteReport {
    /// Free-form description of the run (scale, seed, protocol).
    pub config: String,
    pub cells: Vec<StudyReport>,
}

impl SuiteReport {
    pub fn new(config: impl Into<String>) -> SuiteReport {
        SuiteReport {
            config: config.into(),
            cells: Vec::new(),
        }
    }

    pub fn push(&mut self, cell: StudyReport) {
        self.cells.push(cell);
    }

    /// Average SDC rate per benchmark, sorted descending — the Fig. 11
    /// ranking the paper narrates.
    pub fn sdc_ranking(&self) -> Vec<(String, f64)> {
        let mut by_bench: std::collections::BTreeMap<String, (f64, u32)> = Default::default();
        for c in &self.cells {
            let e = by_bench.entry(c.benchmark.clone()).or_insert((0.0, 0));
            e.0 += c.sdc_rate();
            e.1 += 1;
        }
        let mut out: Vec<(String, f64)> = by_bench
            .into_iter()
            .map(|(n, (s, k))| (n, s / k.max(1) as f64))
            .collect();
        out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        out
    }

    /// Average crash rate per category — the paper's "address crashes most"
    /// observation.
    pub fn crash_by_category(&self) -> Vec<(SiteCategory, f64)> {
        SiteCategory::ALL
            .iter()
            .map(|&cat| {
                let cells: Vec<&StudyReport> =
                    self.cells.iter().filter(|c| c.category == cat).collect();
                let avg = if cells.is_empty() {
                    0.0
                } else {
                    cells.iter().map(|c| c.counts.crash_rate()).sum::<f64>() / cells.len() as f64
                };
                (cat, avg)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(bench: &str, cat: SiteCategory, sdc: u64, crash: u64) -> StudyReport {
        let counts = OutcomeCounts {
            sdc,
            benign: 100 - sdc - crash,
            crash,
            sdc_detected: 0,
            detected: 0,
        };
        StudyReport {
            benchmark: bench.to_string(),
            target: "AVX".to_string(),
            category: cat,
            counts,
            summary: StudySummary {
                mean: counts.sdc_rate(),
                std_dev: 1.0,
                margin_95: 2.0,
                campaigns: 4,
            },
            samples: vec![counts.sdc_rate(); 4],
            converged: true,
        }
    }

    #[test]
    fn ranking_orders_by_average_sdc() {
        let mut r = SuiteReport::new("test");
        r.push(cell("Hot", SiteCategory::PureData, 90, 0));
        r.push(cell("Hot", SiteCategory::Control, 70, 10));
        r.push(cell("Cold", SiteCategory::PureData, 10, 0));
        r.push(cell("Cold", SiteCategory::Control, 20, 10));
        let ranking = r.sdc_ranking();
        assert_eq!(ranking[0].0, "Hot");
        assert_eq!(ranking[1].0, "Cold");
        assert!((ranking[0].1 - 80.0).abs() < 1e-9);
    }

    #[test]
    fn crash_by_category_averages() {
        let mut r = SuiteReport::new("test");
        r.push(cell("A", SiteCategory::Address, 10, 60));
        r.push(cell("B", SiteCategory::Address, 10, 80));
        r.push(cell("A", SiteCategory::PureData, 50, 0));
        let by_cat = r.crash_by_category();
        let addr = by_cat
            .iter()
            .find(|(c, _)| *c == SiteCategory::Address)
            .unwrap()
            .1;
        assert!((addr - 70.0).abs() < 1e-9);
    }

    #[test]
    fn wilson_band_brackets_the_rate() {
        let c = cell("A", SiteCategory::PureData, 40, 10);
        let (lo, hi) = c.sdc_wilson_95();
        assert!(lo < c.sdc_rate() && c.sdc_rate() < hi);
        assert!(lo > 30.0 && hi < 51.0, "({lo}, {hi})");
    }

    #[test]
    fn json_roundtrip() {
        let mut r = SuiteReport::new("seed=7, 50x10");
        r.push(cell("A", SiteCategory::Control, 42, 13));
        let text = serde_json::to_string_pretty(&r).unwrap();
        let back: SuiteReport = serde_json::from_str(&text).unwrap();
        assert_eq!(r, back);
        assert!(text.contains("\"Control\""));
    }
}
