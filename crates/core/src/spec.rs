//! Serializable study specifications — the wire format a client submits
//! to an injection service.
//!
//! `vulfi study` derives its configuration from CLI flags in-process; a
//! long-running service instead receives a [`StudySpec`] as JSON, checks
//! it with [`StudySpec::validate`], and expands it into the benchmark
//! name plus a [`StudyConfig`]. The spec deliberately carries *names*
//! (benchmark, ISA, category) rather than compiled artifacts: the
//! executing worker compiles and instruments the workload itself, which
//! is what makes the scheme safe for multi-host fleets — every worker
//! deterministically reproduces the same instrumented module, and the
//! content-addressed study key pins the identity.

use vir::analysis::SiteCategory;

use crate::fault::FaultModel;
use crate::StudyConfig;

/// Every string field a [`StudySpec`] constrains, with its accepted
/// values — kept in one place so validation errors can enumerate them.
pub const SPEC_ISAS: [&str; 2] = ["avx", "sse"];
pub const SPEC_CATEGORIES: [&str; 3] = ["pure-data", "control", "address"];
pub const SPEC_SCALES: [&str; 2] = ["test", "paper"];

/// A complete, self-contained description of one study submission.
///
/// All fields are required on the wire (the vendored serde has no
/// defaulting); [`StudySpec::default`] gives the canonical starting
/// point, matching `vulfi study`'s CLI defaults.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StudySpec {
    /// Benchmark name (see `vulfi list`).
    pub bench: String,
    /// Vector ISA lowering: `"avx"` or `"sse"`.
    pub isa: String,
    /// Fault-site category: `"pure-data"`, `"control"`, or `"address"`.
    pub category: String,
    /// Input scale: `"test"` or `"paper"`.
    pub scale: String,
    /// Experiments per campaign.
    pub experiments: usize,
    /// Hard cap on campaigns (the ±3 pp stopping rule may use fewer).
    pub campaigns: usize,
    pub seed: u64,
    /// Experiments per schedulable shard.
    pub shard_size: usize,
    /// Insert SDC detectors into the workload before instrumenting.
    pub detectors: bool,
    /// Fault model, e.g. `"single-bit-flip"` or `"multi-bit-burst:2"`
    /// (see [`crate::MODEL_KINDS`]).
    pub model: String,
    /// Statically discharge provably-benign injections without running
    /// them (single-bit-flip model only).
    pub prune: bool,
}

impl Default for StudySpec {
    fn default() -> StudySpec {
        StudySpec {
            bench: String::new(),
            isa: "avx".to_string(),
            category: "pure-data".to_string(),
            scale: "test".to_string(),
            experiments: 25,
            campaigns: 8,
            seed: 42,
            shard_size: 25,
            detectors: false,
            model: FaultModel::default().name(),
            prune: false,
        }
    }
}

impl StudySpec {
    /// Reject anything a worker could not execute, with errors that name
    /// the accepted values. (Benchmark-name existence is checked by the
    /// executor, which owns the benchmark registry.)
    pub fn validate(&self) -> Result<(), String> {
        if self.bench.trim().is_empty() {
            return Err("spec.bench must name a benchmark (see `vulfi list`)".to_string());
        }
        if !SPEC_ISAS.contains(&self.isa.as_str()) {
            return Err(format!("spec.isa '{}' not in {SPEC_ISAS:?}", self.isa));
        }
        self.site_category()?;
        if !SPEC_SCALES.contains(&self.scale.as_str()) {
            return Err(format!(
                "spec.scale '{}' not in {SPEC_SCALES:?}",
                self.scale
            ));
        }
        if self.experiments == 0 {
            return Err("spec.experiments must be positive".to_string());
        }
        if self.campaigns == 0 {
            return Err("spec.campaigns must be positive".to_string());
        }
        if self.shard_size == 0 {
            return Err("spec.shard_size must be positive".to_string());
        }
        let model = self.fault_model()?;
        if self.prune && model != FaultModel::SingleBitFlip {
            return Err(format!(
                "spec.prune requires the single-bit-flip model, not '{}'",
                self.model
            ));
        }
        Ok(())
    }

    /// The fault model as the injector's enum.
    pub fn fault_model(&self) -> Result<FaultModel, String> {
        FaultModel::parse(&self.model).map_err(|e| format!("spec.model: {e}"))
    }

    /// The category as the injector's enum.
    pub fn site_category(&self) -> Result<SiteCategory, String> {
        match self.category.as_str() {
            "pure-data" => Ok(SiteCategory::PureData),
            "control" => Ok(SiteCategory::Control),
            "address" => Ok(SiteCategory::Address),
            other => Err(format!(
                "spec.category '{other}' not in {SPEC_CATEGORIES:?}"
            )),
        }
    }

    /// Expand into the campaign-layer configuration. Margin and
    /// minimum-campaign defaults come from [`StudyConfig::default`]
    /// (the paper's §IV-D stopping rule).
    pub fn study_config(&self) -> StudyConfig {
        StudyConfig {
            experiments_per_campaign: self.experiments,
            max_campaigns: self.campaigns,
            seed: self.seed,
            model: self.fault_model().unwrap_or_default(),
            prune: self.prune,
            ..StudyConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> StudySpec {
        StudySpec {
            bench: "vector sum".to_string(),
            ..StudySpec::default()
        }
    }

    #[test]
    fn roundtrips_as_json() {
        let s = spec();
        let text = serde_json::to_string(&s).unwrap();
        let back: StudySpec = serde_json::from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn validate_accepts_defaults_and_names_bad_fields() {
        spec().validate().unwrap();

        let mut s = spec();
        s.bench = "  ".to_string();
        assert!(s.validate().unwrap_err().contains("bench"));

        let mut s = spec();
        s.isa = "mips".to_string();
        let e = s.validate().unwrap_err();
        assert!(e.contains("mips") && e.contains("avx"), "{e}");

        let mut s = spec();
        s.category = "weird".to_string();
        let e = s.validate().unwrap_err();
        assert!(e.contains("weird") && e.contains("pure-data"), "{e}");

        let mut s = spec();
        s.scale = "huge".to_string();
        assert!(s.validate().is_err());

        let mut s = spec();
        s.prune = true;
        s.validate().unwrap();
        s.model = "multi-bit-burst:2".to_string();
        let e = s.validate().unwrap_err();
        assert!(e.contains("prune"), "{e}");

        let mut s = spec();
        s.model = "cosmic-ray".to_string();
        let e = s.validate().unwrap_err();
        assert!(
            e.contains("cosmic-ray") && e.contains("single-bit-flip"),
            "{e}"
        );

        for zeroed in [
            |s: &mut StudySpec| s.experiments = 0,
            |s: &mut StudySpec| s.campaigns = 0,
            |s: &mut StudySpec| s.shard_size = 0,
        ] {
            let mut s = spec();
            zeroed(&mut s);
            assert!(s.validate().is_err());
        }
    }

    #[test]
    fn config_expansion_matches_cli_defaults() {
        let cfg = spec().study_config();
        assert_eq!(cfg.experiments_per_campaign, 25);
        assert_eq!(cfg.max_campaigns, 8);
        assert_eq!(cfg.seed, 42);
        // Stopping-rule knobs come from the paper defaults.
        assert_eq!(cfg.target_margin, StudyConfig::default().target_margin);
        assert_eq!(cfg.min_campaigns, StudyConfig::default().min_campaigns);
        assert_eq!(spec().site_category().unwrap(), SiteCategory::PureData);
        assert_eq!(cfg.model, FaultModel::SingleBitFlip);

        let mut s = spec();
        s.model = "stuck-at:7=1".to_string();
        assert_eq!(
            s.study_config().model,
            FaultModel::StuckAt {
                bit: 7,
                value: true
            }
        );
    }
}
