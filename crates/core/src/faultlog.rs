//! Engine-fault containment log.
//!
//! A fault injector must survive the faults it injects: one pathological
//! faulted execution that panics inside the engine must not take down the
//! whole campaign (the paper's outcome taxonomy, §IV-B, only holds if
//! every experiment is accounted for). [`crate::run_experiment`] wraps
//! each experiment in `std::panic::catch_unwind`; a caught panic is
//! classified as [`crate::Outcome::Crash`] and recorded here with its
//! provenance, so a study that absorbed engine faults is *visible* as
//! such rather than silently indistinguishable from a clean one.
//!
//! In **strict mode** ([`set_strict`]) a caught panic aborts the
//! campaign with a [`crate::CampaignError`] instead — the mode CI and
//! engine developers want, where an engine panic is a bug to fix, not an
//! outcome to count.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Provenance of one engine panic absorbed during a campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineFault {
    /// Workload that was executing.
    pub workload: String,
    /// `(campaign_seed, experiment_index)` when known (study/shard paths);
    /// `None` for direct [`crate::run_experiment`] calls.
    pub experiment: Option<(u64, usize)>,
    /// Input index the experiment drew.
    pub input: u64,
    /// The panic message.
    pub message: String,
}

impl std::fmt::Display for EngineFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.experiment {
            Some((seed, idx)) => write!(
                f,
                "engine panic in {} (campaign seed {seed:#x}, experiment {idx}, input {}): {}",
                self.workload, self.input, self.message
            ),
            None => write!(
                f,
                "engine panic in {} (input {}): {}",
                self.workload, self.input, self.message
            ),
        }
    }
}

static STRICT: AtomicBool = AtomicBool::new(false);
static LOG: Mutex<Vec<EngineFault>> = Mutex::new(Vec::new());

/// In strict mode a caught engine panic aborts the campaign as a
/// [`crate::CampaignError`] instead of being recorded as a Crash outcome.
pub fn set_strict(on: bool) {
    STRICT.store(on, Ordering::Relaxed);
}

/// Is strict mode on?
pub fn strict() -> bool {
    STRICT.load(Ordering::Relaxed)
}

/// Record one absorbed engine panic. Called by the experiment runner;
/// callers normally only read the log.
pub fn record_engine_fault(fault: EngineFault) {
    // A panic while the log lock is held would poison it; recover the
    // guard so containment bookkeeping itself can never cascade.
    let mut log = LOG
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    log.push(fault);
}

/// Snapshot of every engine fault recorded since the last
/// [`drain_engine_faults`].
pub fn engine_faults() -> Vec<EngineFault> {
    LOG.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .clone()
}

/// Take (and clear) the recorded engine faults.
pub fn drain_engine_faults() -> Vec<EngineFault> {
    std::mem::take(
        &mut *LOG
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner),
    )
}

/// Render a panic payload (from `catch_unwind`) as a message string.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_records_and_drains() {
        drain_engine_faults();
        record_engine_fault(EngineFault {
            workload: "w".into(),
            experiment: Some((7, 3)),
            input: 1,
            message: "boom".into(),
        });
        let snap = engine_faults();
        assert!(snap.iter().any(|f| f.message == "boom"));
        let drained = drain_engine_faults();
        assert!(drained.iter().any(|f| f.experiment == Some((7, 3))));
        assert!(!engine_faults().iter().any(|f| f.message == "boom"));
    }

    #[test]
    fn panic_messages_render() {
        let static_payload: Box<dyn std::any::Any + Send> = Box::new("static");
        assert_eq!(panic_message(static_payload.as_ref()), "static");
        let owned: Box<dyn std::any::Any + Send> = Box::new(String::from("owned"));
        assert_eq!(panic_message(owned.as_ref()), "owned");
        let odd: Box<dyn std::any::Any + Send> = Box::new(42u32);
        assert_eq!(panic_message(odd.as_ref()), "non-string panic payload");
    }

    #[test]
    fn fault_display_includes_provenance() {
        let f = EngineFault {
            workload: "scale".into(),
            experiment: Some((0xAB, 9)),
            input: 2,
            message: "index out of bounds".into(),
        };
        let text = f.to_string();
        assert!(text.contains("scale"), "{text}");
        assert!(text.contains("experiment 9"), "{text}");
        assert!(text.contains("index out of bounds"), "{text}");
    }
}
