//! The VULFI runtime: the host-side implementation of the injected
//! `vulfi.inject.*` API calls and of the detector runtime checks.
//!
//! Fault model (paper §II-B): exactly one single-bit fault per program
//! execution, at a dynamic fault site chosen uniformly at random. A
//! *dynamic fault site* is one active-lane execution of one instrumented
//! static site — calls whose execution-mask element is off are **not**
//! fault sites and pass through uncounted.

use vexec::{HostEnv, Memory, RtVal, Trap};

use crate::fault::FaultModel;

/// Execution mode of the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunMode {
    /// Count dynamic fault sites; never inject (the golden run).
    Profile,
    /// Inject one bit flip when the running dynamic-site count reaches
    /// `target` (1-based). `bit_entropy` is reduced modulo the value width
    /// at the site.
    Inject { target: u64, bit_entropy: u64 },
}

/// Record of the (primary) injection performed.
#[derive(Debug, Clone, PartialEq)]
pub struct InjectionRecord {
    pub site_id: u32,
    pub lane: u32,
    /// 1-based dynamic occurrence index.
    pub occurrence: u64,
    pub bit: u32,
    pub bits_before: u64,
    pub bits_after: u64,
    /// Fault model that produced this corruption.
    pub model: FaultModel,
}

// Manual serde: the `model` field is omitted when it is the default
// single-bit flip (and defaulted when absent on read), so records written
// before the fault-model library existed parse — and default-model
// records stay byte-identical to what that era wrote.
impl serde::Serialize for InjectionRecord {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("site_id".to_string(), self.site_id.to_value()),
            ("lane".to_string(), self.lane.to_value()),
            ("occurrence".to_string(), self.occurrence.to_value()),
            ("bit".to_string(), self.bit.to_value()),
            ("bits_before".to_string(), self.bits_before.to_value()),
            ("bits_after".to_string(), self.bits_after.to_value()),
        ];
        if self.model != FaultModel::default() {
            fields.push(("model".to_string(), self.model.to_value()));
        }
        serde::Value::Object(fields)
    }
}

impl serde::Deserialize for InjectionRecord {
    fn from_value(v: &serde::Value) -> Result<InjectionRecord, serde::DeError> {
        Ok(InjectionRecord {
            site_id: serde::field(v, "site_id")?,
            lane: serde::field(v, "lane")?,
            occurrence: serde::field(v, "occurrence")?,
            bit: serde::field(v, "bit")?,
            bits_before: serde::field(v, "bits_before")?,
            bits_after: serde::field(v, "bits_after")?,
            model: match v.get("model") {
                Some(m) => FaultModel::from_value(m)?,
                None => FaultModel::default(),
            },
        })
    }
}

/// Statistics from detector runtime checks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DetectorStats {
    /// Number of detector check calls executed.
    pub checks: u64,
    /// Number of checks whose invariant did not hold.
    pub violations: u64,
}

impl DetectorStats {
    pub fn detected(&self) -> bool {
        self.violations > 0
    }
}

/// The combined VULFI host environment: fault-injection API plus detector
/// runtime. Any other host call is rejected.
pub struct VulfiHost {
    mode: RunMode,
    /// Fault model applied at the target site (value models only; engine
    /// models bypass the instrumented API entirely).
    model: FaultModel,
    /// Dynamic fault sites observed so far (active lanes only).
    pub dynamic_sites: u64,
    pub injection: Option<InjectionRecord>,
    /// Dynamic instruction count at the moment of injection (from the
    /// interpreter's host clock). Observability only — not serialized
    /// with the experiment record.
    pub injection_at: Option<u64>,
    /// Host-clock deadline for the second flip of a temporal pair.
    second_due: Option<u64>,
    pub detectors: DetectorStats,
    /// When present, every counted dynamic site is appended as
    /// `(site_id, lane)` — the census the campaign pruner replays to
    /// predict which coordinate a given target index would hit.
    pub site_log: Option<Vec<(u32, u32)>>,
}

impl VulfiHost {
    /// Golden-run host: counts sites, never injects.
    pub fn profile() -> VulfiHost {
        VulfiHost {
            mode: RunMode::Profile,
            model: FaultModel::default(),
            dynamic_sites: 0,
            injection: None,
            injection_at: None,
            second_due: None,
            detectors: DetectorStats::default(),
            site_log: None,
        }
    }

    /// Golden-run host that also records the ordered `(site_id, lane)`
    /// census of every counted dynamic site.
    pub fn profile_logging() -> VulfiHost {
        VulfiHost {
            site_log: Some(Vec::new()),
            ..VulfiHost::profile()
        }
    }

    /// Faulty-run host: flips one bit at dynamic site `target` (1-based).
    pub fn inject(target: u64, bit_entropy: u64) -> VulfiHost {
        VulfiHost::inject_model(target, bit_entropy, FaultModel::default())
    }

    /// Faulty-run host applying `model` at dynamic site `target`
    /// (1-based). `bit_entropy` feeds every random choice the model
    /// makes.
    pub fn inject_model(target: u64, bit_entropy: u64, model: FaultModel) -> VulfiHost {
        VulfiHost {
            mode: RunMode::Inject {
                target,
                bit_entropy,
            },
            model,
            dynamic_sites: 0,
            injection: None,
            injection_at: None,
            second_due: None,
            detectors: DetectorStats::default(),
            site_log: None,
        }
    }

    fn handle_inject(
        &mut self,
        name: &str,
        args: &[RtVal],
        mem: &Memory,
    ) -> Result<Option<RtVal>, Trap> {
        let bad = |m: &str| Trap::HostError(format!("@{name}: {m}"));
        if args.len() < 4 {
            return Err(bad("expects (value, mask, site, lane)"));
        }
        let val = match &args[0] {
            RtVal::Scalar(s) => *s,
            RtVal::Vector(..) => return Err(bad("value must be scalar (per-lane calls)")),
        };
        let mask = match &args[1] {
            RtVal::Scalar(s) => *s,
            RtVal::Vector(..) => return Err(bad("mask must be scalar")),
        };
        if !mask.mask_active() {
            // Masked-off lane: not a fault site (paper §II-D).
            return Ok(Some(RtVal::Scalar(val)));
        }
        self.dynamic_sites += 1;
        if let Some(log) = &mut self.site_log {
            log.push((
                args[2].lane(0).as_u64() as u32,
                args[3].lane(0).as_u64() as u32,
            ));
        }
        if let RunMode::Inject {
            target,
            bit_entropy,
        } = self.mode
        {
            if self.dynamic_sites == target && self.injection.is_none() {
                let (flipped, bit) = self.model.mutate_value(val, bit_entropy);
                self.injection = Some(InjectionRecord {
                    site_id: args[2].lane(0).as_u64() as u32,
                    lane: args[3].lane(0).as_u64() as u32,
                    occurrence: self.dynamic_sites,
                    bit,
                    bits_before: val.bits,
                    bits_after: flipped.bits,
                    model: self.model,
                });
                self.injection_at = Some(mem.host_clock());
                if let FaultModel::TemporalPair { gap } = self.model {
                    self.second_due = Some(mem.host_clock().saturating_add(gap));
                }
                return Ok(Some(RtVal::Scalar(flipped)));
            }
            // Second flip of a temporal pair: the next active site once
            // the dynamic-instruction clock has advanced past the gap.
            // Only the primary is recorded; the pair shares one entropy
            // draw (high half selects the second bit).
            if let Some(due) = self.second_due {
                if self.injection.is_some() && mem.host_clock() >= due {
                    self.second_due = None;
                    let bit = ((bit_entropy >> 32) % val.ty.bits() as u64) as u32;
                    return Ok(Some(RtVal::Scalar(val.flip_bit(bit))));
                }
            }
        }
        Ok(Some(RtVal::Scalar(val)))
    }

    fn handle_check(&mut self, name: &str, args: &[RtVal]) -> Result<Option<RtVal>, Trap> {
        match name {
            // checkInvariantsForeachFullBody(new_counter, aligned_end, Vl, id)
            // — the three invariants of paper Fig. 8, checked on loop exit.
            "vulfi.check.foreach" => {
                if args.len() < 3 {
                    return Err(Trap::HostError(
                        "@vulfi.check.foreach expects (new_counter, aligned_end, Vl)".into(),
                    ));
                }
                let nc = args[0].lane(0).as_i64();
                let ae = args[1].lane(0).as_i64();
                let vl = args[2].lane(0).as_i64();
                self.detectors.checks += 1;
                let ok = vl > 0 && nc >= 0 && nc <= ae && nc % vl == 0;
                if !ok {
                    self.detectors.violations += 1;
                }
                Ok(None)
            }
            // checkUniformBroadcast(vec) — all lanes must hold one value
            // (paper §III-B).
            "vulfi.check.uniform" => {
                let v = &args[0];
                self.detectors.checks += 1;
                let first = v.lane(0).bits;
                // An XOR-reduction in spirit: any differing lane trips it.
                if (1..v.num_lanes()).any(|i| v.lane(i).bits != first) {
                    self.detectors.violations += 1;
                }
                Ok(None)
            }
            other => Err(Trap::UnknownFunction(other.to_string())),
        }
    }
}

impl HostEnv for VulfiHost {
    fn call(
        &mut self,
        name: &str,
        args: &[RtVal],
        mem: &mut Memory,
    ) -> Result<Option<RtVal>, Trap> {
        if name.starts_with("vulfi.inject.") {
            return self.handle_inject(name, args, mem);
        }
        if name.starts_with("vulfi.check.") {
            return self.handle_check(name, args);
        }
        Err(Trap::UnknownFunction(name.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vexec::{Memory, Scalar};

    fn call(h: &mut VulfiHost, name: &str, args: Vec<RtVal>) -> Result<Option<RtVal>, Trap> {
        let mut mem = Memory::default();
        h.call(name, &args, &mut mem)
    }

    fn inject_args(v: f32, mask_on: bool) -> Vec<RtVal> {
        vec![
            RtVal::Scalar(Scalar::f32(v)),
            RtVal::Scalar(Scalar::i1(mask_on)),
            RtVal::Scalar(Scalar::i64(7)),
            RtVal::Scalar(Scalar::i32(3)),
        ]
    }

    #[test]
    fn profile_counts_active_lanes_only() {
        let mut h = VulfiHost::profile();
        call(&mut h, "vulfi.inject.f32", inject_args(1.0, true)).unwrap();
        call(&mut h, "vulfi.inject.f32", inject_args(2.0, false)).unwrap();
        call(&mut h, "vulfi.inject.f32", inject_args(3.0, true)).unwrap();
        assert_eq!(h.dynamic_sites, 2);
        assert!(h.injection.is_none());
    }

    #[test]
    fn profile_logging_records_active_lane_census() {
        let mut h = VulfiHost::profile_logging();
        call(&mut h, "vulfi.inject.f32", inject_args(1.0, true)).unwrap();
        call(&mut h, "vulfi.inject.f32", inject_args(2.0, false)).unwrap();
        call(&mut h, "vulfi.inject.f32", inject_args(3.0, true)).unwrap();
        assert_eq!(h.dynamic_sites, 2);
        assert_eq!(h.site_log.as_deref(), Some(&[(7, 3), (7, 3)][..]));
    }

    #[test]
    fn inject_flips_exactly_one_bit_at_target() {
        let mut h = VulfiHost::inject(2, 31); // bit 31 of f32 = sign bit
        let r1 = call(&mut h, "vulfi.inject.f32", inject_args(1.0, true))
            .unwrap()
            .unwrap();
        assert_eq!(r1.scalar().as_f32(), 1.0, "first occurrence untouched");
        let r2 = call(&mut h, "vulfi.inject.f32", inject_args(1.0, true))
            .unwrap()
            .unwrap();
        assert_eq!(r2.scalar().as_f32(), -1.0, "sign bit flipped");
        let r3 = call(&mut h, "vulfi.inject.f32", inject_args(1.0, true))
            .unwrap()
            .unwrap();
        assert_eq!(r3.scalar().as_f32(), 1.0, "only one injection ever");
        let rec = h.injection.unwrap();
        assert_eq!(rec.site_id, 7);
        assert_eq!(rec.lane, 3);
        assert_eq!(rec.occurrence, 2);
        assert_eq!(rec.bit, 31);
    }

    #[test]
    fn masked_lanes_are_not_counted_toward_target() {
        let mut h = VulfiHost::inject(1, 0);
        let r = call(&mut h, "vulfi.inject.f32", inject_args(1.0, false))
            .unwrap()
            .unwrap();
        assert_eq!(r.scalar().as_f32(), 1.0);
        assert!(h.injection.is_none(), "masked lane must not be injected");
        call(&mut h, "vulfi.inject.f32", inject_args(1.0, true)).unwrap();
        assert!(h.injection.is_some());
    }

    #[test]
    fn bit_entropy_reduced_by_width() {
        let mut h = VulfiHost::inject(1, 64 + 5); // i32 width 32 → bit 5... (69 % 32 = 5)
        let args = vec![
            RtVal::Scalar(Scalar::i32(0)),
            RtVal::Scalar(Scalar::i1(true)),
            RtVal::Scalar(Scalar::i64(0)),
            RtVal::Scalar(Scalar::i32(0)),
        ];
        let r = call(&mut h, "vulfi.inject.i32", args).unwrap().unwrap();
        assert_eq!(r.scalar().as_u64(), 1 << 5);
    }

    #[test]
    fn foreach_invariants() {
        let args = |nc: i32, ae: i32, vl: i32| {
            vec![
                RtVal::Scalar(Scalar::i32(nc)),
                RtVal::Scalar(Scalar::i32(ae)),
                RtVal::Scalar(Scalar::i32(vl)),
                RtVal::Scalar(Scalar::i64(0)),
            ]
        };
        let mut h = VulfiHost::profile();
        // Holds: 16 ≤ 16, 16 % 8 == 0, ≥ 0.
        call(&mut h, "vulfi.check.foreach", args(16, 16, 8)).unwrap();
        assert_eq!(h.detectors.violations, 0);
        // Invariant 2 violated: counter ran past aligned_end.
        call(&mut h, "vulfi.check.foreach", args(24, 16, 8)).unwrap();
        assert_eq!(h.detectors.violations, 1);
        // Invariant 3 violated: misaligned counter.
        call(&mut h, "vulfi.check.foreach", args(13, 16, 8)).unwrap();
        assert_eq!(h.detectors.violations, 2);
        // Invariant 1 violated: negative counter.
        call(&mut h, "vulfi.check.foreach", args(-8, 16, 8)).unwrap();
        assert_eq!(h.detectors.violations, 3);
        assert_eq!(h.detectors.checks, 4);
        assert!(h.detectors.detected());
    }

    #[test]
    fn uniform_broadcast_check() {
        let mut h = VulfiHost::profile();
        let uniform = RtVal::Vector(vir::ScalarTy::F32, vec![0x40000000; 8]);
        call(&mut h, "vulfi.check.uniform", vec![uniform]).unwrap();
        assert_eq!(h.detectors.violations, 0);
        let mut lanes = vec![0x40000000u64; 8];
        lanes[5] ^= 1 << 12;
        let corrupted = RtVal::Vector(vir::ScalarTy::F32, lanes);
        call(&mut h, "vulfi.check.uniform", vec![corrupted]).unwrap();
        assert_eq!(h.detectors.violations, 1);
    }

    #[test]
    fn unknown_hosts_rejected() {
        let mut h = VulfiHost::profile();
        assert!(matches!(
            call(&mut h, "mystery.fn", vec![]),
            Err(Trap::UnknownFunction(_))
        ));
    }
}
