//! Textual printing of VIR modules in an LLVM-flavored syntax.
//!
//! The printed form round-trips through [`crate::parser`], which the test
//! suite checks property-style. Float constants print in Rust's shortest
//! round-trip decimal form when finite and as raw `0x` bit patterns
//! otherwise, so printing never loses bits.

use std::fmt::Write;

use crate::constant::{sext, ConstData, Constant};
use crate::function::{FuncDecl, Function, Module};
use crate::inst::{BlockId, InstKind, Operand, Terminator};
use crate::types::{ScalarTy, Type};

/// Print a whole module.
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    if !m.name.is_empty() {
        let _ = writeln!(out, "; ModuleID = '{}'", m.name);
    }
    for d in &m.decls {
        let _ = writeln!(out, "{}", print_decl(d));
    }
    if !m.decls.is_empty() {
        out.push('\n');
    }
    for (i, f) in m.functions.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&print_function(f));
    }
    out
}

fn print_decl(d: &FuncDecl) -> String {
    let mut params: Vec<String> = d.params.iter().map(|t| t.to_string()).collect();
    if d.vararg {
        params.push("...".to_string());
    }
    format!("declare {} @{}({})", d.ret, d.name, params.join(", "))
}

/// Compute collision-free display names for every SSA value of `f`.
/// Duplicate source names get LLVM-style numeric suffixes, and anonymous
/// values print as `%vN`.
pub fn value_names(f: &Function) -> Vec<String> {
    let mut taken = std::collections::HashSet::new();
    let mut names = Vec::with_capacity(f.values.len());
    for (i, info) in f.values.iter().enumerate() {
        let base = match &info.name {
            Some(n) => n.clone(),
            None => format!("v{i}"),
        };
        let mut name = base.clone();
        let mut k = 0;
        while !taken.insert(name.clone()) {
            k += 1;
            name = format!("{base}.{k}");
        }
        names.push(name);
    }
    names
}

/// Print one function definition.
pub fn print_function(f: &Function) -> String {
    let names = value_names(f);
    let mut out = String::new();
    let params = f
        .params
        .iter()
        .enumerate()
        .map(|(i, (_, t))| format!("{t} %{}", names[i]))
        .collect::<Vec<_>>()
        .join(", ");
    let _ = writeln!(out, "define {} @{}({}) {{", f.ret, f.name, params);
    for b in &f.blocks {
        let _ = writeln!(out, "{}:", b.name);
        for &iid in &b.insts {
            let _ = writeln!(out, "  {}", print_inst_named(f, iid, &names));
        }
        let _ = writeln!(out, "  {}", print_term(f, &b.term, &names));
    }
    out.push_str("}\n");
    out
}

/// Print one scalar constant payload of the given element type.
fn print_scalar_bits(bits: u64, ty: ScalarTy) -> String {
    match ty {
        ScalarTy::I1 => {
            if bits & 1 == 1 {
                "true".to_string()
            } else {
                "false".to_string()
            }
        }
        ScalarTy::I8 | ScalarTy::I16 | ScalarTy::I32 | ScalarTy::I64 => {
            format!("{}", sext(bits, ty.bits()))
        }
        ScalarTy::F32 => {
            let v = f32::from_bits(bits as u32);
            if v.is_finite() {
                let s = format!("{v:?}");
                // `{:?}` of f32 round-trips through f32 parsing.
                s
            } else {
                format!("0x{:08X}", bits as u32)
            }
        }
        ScalarTy::F64 => {
            let v = f64::from_bits(bits);
            if v.is_finite() {
                format!("{v:?}")
            } else {
                format!("0x{bits:016X}")
            }
        }
        ScalarTy::Ptr => {
            if bits == 0 {
                "null".to_string()
            } else {
                format!("0x{bits:X}")
            }
        }
    }
}

/// Print a constant (without its leading type).
pub fn print_constant(c: &Constant) -> String {
    match (&c.data, c.ty) {
        (ConstData::Undef, _) => "undef".to_string(),
        (ConstData::Zero, Type::Scalar(ScalarTy::Ptr)) => "null".to_string(),
        (ConstData::Zero, Type::Vector(..)) => "zeroinitializer".to_string(),
        (ConstData::Zero, Type::Scalar(s)) => print_scalar_bits(0, s),
        (ConstData::Zero, Type::Void) => "void".to_string(),
        (ConstData::Scalar(b), Type::Scalar(s)) => print_scalar_bits(*b, s),
        (ConstData::Scalar(b), _) => format!("0x{b:X}"),
        (ConstData::Vector(v), Type::Vector(s, _)) => {
            let elems = v
                .iter()
                .map(|&b| format!("{} {}", s.name(), print_scalar_bits(b, s)))
                .collect::<Vec<_>>()
                .join(", ");
            format!("<{elems}>")
        }
        (ConstData::Vector(_), _) => "<malformed>".to_string(),
    }
}

/// Print an operand without a type prefix.
fn op_str(_f: &Function, op: &Operand, names: &[String]) -> String {
    match op {
        Operand::Value(v) => format!("%{}", names[v.index()]),
        Operand::Const(c) => print_constant(c),
    }
}

/// Print an operand with its type prefix (`i32 %x`).
fn typed_op(f: &Function, op: &Operand, names: &[String]) -> String {
    format!("{} {}", f.operand_type(op), op_str(f, op, names))
}

fn bb(f: &Function, b: BlockId) -> String {
    format!("%{}", f.block(b).name)
}

/// Print one instruction (standalone; computes names for the whole
/// function — prefer [`print_function`] for bulk printing).
pub fn print_inst(f: &Function, iid: crate::inst::InstId) -> String {
    print_inst_named(f, iid, &value_names(f))
}

fn print_inst_named(f: &Function, iid: crate::inst::InstId, names: &[String]) -> String {
    let inst = f.inst(iid);
    let lhs_prefix = match inst.result {
        Some(v) => format!("%{} = ", names[v.index()]),
        None => String::new(),
    };
    let body = match &inst.kind {
        InstKind::Bin { op, lhs, rhs } => format!(
            "{} {} {}, {}",
            op.mnemonic(),
            f.operand_type(lhs),
            op_str(f, lhs, names),
            op_str(f, rhs, names)
        ),
        InstKind::ICmp { pred, lhs, rhs } => format!(
            "icmp {} {} {}, {}",
            pred.mnemonic(),
            f.operand_type(lhs),
            op_str(f, lhs, names),
            op_str(f, rhs, names)
        ),
        InstKind::FCmp { pred, lhs, rhs } => format!(
            "fcmp {} {} {}, {}",
            pred.mnemonic(),
            f.operand_type(lhs),
            op_str(f, lhs, names),
            op_str(f, rhs, names)
        ),
        InstKind::Select {
            cond,
            on_true,
            on_false,
        } => format!(
            "select {}, {}, {}",
            typed_op(f, cond, names),
            typed_op(f, on_true, names),
            typed_op(f, on_false, names)
        ),
        InstKind::Cast { op, val } => format!(
            "{} {} to {}",
            op.mnemonic(),
            typed_op(f, val, names),
            inst.ty
        ),
        InstKind::Alloca { elem, count } => {
            format!("alloca {}, {}", elem, typed_op(f, count, names))
        }
        InstKind::Load { ptr } => format!("load {}, {}", inst.ty, typed_op(f, ptr, names)),
        InstKind::Store { val, ptr } => {
            format!(
                "store {}, {}",
                typed_op(f, val, names),
                typed_op(f, ptr, names)
            )
        }
        InstKind::Gep { elem, base, index } => format!(
            "getelementptr {}, {}, {}",
            elem,
            typed_op(f, base, names),
            typed_op(f, index, names)
        ),
        InstKind::ExtractElement { vec, idx } => format!(
            "extractelement {}, {}",
            typed_op(f, vec, names),
            typed_op(f, idx, names)
        ),
        InstKind::InsertElement { vec, elt, idx } => format!(
            "insertelement {}, {}, {}",
            typed_op(f, vec, names),
            typed_op(f, elt, names),
            typed_op(f, idx, names)
        ),
        InstKind::ShuffleVector { a, b, mask } => {
            let mask_elems = mask
                .iter()
                .map(|&m| {
                    if m < 0 {
                        "i32 undef".to_string()
                    } else {
                        format!("i32 {m}")
                    }
                })
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "shufflevector {}, {}, <{} x i32> <{}>",
                typed_op(f, a, names),
                typed_op(f, b, names),
                mask.len(),
                mask_elems
            )
        }
        InstKind::Phi { incomings } => {
            let inc = incomings
                .iter()
                .map(|(blk, op)| format!("[ {}, {} ]", op_str(f, op, names), bb(f, *blk)))
                .collect::<Vec<_>>()
                .join(", ");
            format!("phi {} {}", inst.ty, inc)
        }
        InstKind::Call { callee, args } => {
            let a = args
                .iter()
                .map(|op| typed_op(f, op, names))
                .collect::<Vec<_>>()
                .join(", ");
            format!("call {} @{}({})", inst.ty, callee, a)
        }
    };
    format!("{lhs_prefix}{body}")
}

fn print_term(f: &Function, t: &Terminator, names: &[String]) -> String {
    match t {
        Terminator::Br(b) => format!("br label {}", bb(f, *b)),
        Terminator::CondBr {
            cond,
            on_true,
            on_false,
        } => format!(
            "br {}, label {}, label {}",
            typed_op(f, cond, names),
            bb(f, *on_true),
            bb(f, *on_false)
        ),
        Terminator::Ret(Some(op)) => format!("ret {}", typed_op(f, op, names)),
        Terminator::Ret(None) => "ret void".to_string(),
        Terminator::Unreachable => "unreachable".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::inst::{BinOp, ICmpPred};

    #[test]
    fn prints_constants() {
        assert_eq!(print_constant(&Constant::i32(-5)), "-5");
        assert_eq!(print_constant(&Constant::bool(true)), "true");
        assert_eq!(print_constant(&Constant::f32(1.5)), "1.5");
        assert_eq!(print_constant(&Constant::f64(0.1)), "0.1");
        assert_eq!(print_constant(&Constant::f32(f32::INFINITY)), "0x7F800000");
        assert_eq!(
            print_constant(&Constant::zero(Type::vec(ScalarTy::I32, 4))),
            "zeroinitializer"
        );
        assert_eq!(print_constant(&Constant::undef(Type::F32)), "undef");
        assert_eq!(
            print_constant(&Constant::vec_i32(&[0, 1])),
            "<i32 0, i32 1>"
        );
        assert_eq!(print_constant(&Constant::ptr(0)), "null");
    }

    #[test]
    fn prints_simple_function() {
        let mut b = FuncBuilder::new("f", vec![("x".into(), Type::I32)], Type::I32);
        let entry = b.add_block("entry");
        b.position_at(entry);
        let x = b.param(0);
        let y = b.bin(BinOp::Add, x, Constant::i32(1).into(), "y");
        b.ret(Some(y));
        let s = print_function(&b.finish());
        assert!(s.contains("define i32 @f(i32 %x) {"), "{s}");
        assert!(s.contains("%y = add i32 %x, 1"), "{s}");
        assert!(s.contains("ret i32 %y"), "{s}");
    }

    #[test]
    fn prints_condbr_and_phi() {
        let mut b = FuncBuilder::new("g", vec![("n".into(), Type::I32)], Type::I32);
        let entry = b.add_block("entry");
        let loop_bb = b.add_block("loop");
        let exit = b.add_block("exit");
        b.position_at(entry);
        b.br(loop_bb);
        b.position_at(loop_bb);
        let i = b.phi(Type::I32, "i");
        let i2 = b.bin(BinOp::Add, i.clone(), Constant::i32(1).into(), "i2");
        let c = b.icmp(ICmpPred::Slt, i2.clone(), b.param(0), "c");
        b.cond_br(c, loop_bb, exit);
        b.add_incoming(&i, entry, Constant::i32(0).into());
        b.add_incoming(&i, loop_bb, i2);
        b.position_at(exit);
        b.ret(Some(i));
        let s = print_function(&b.finish());
        assert!(
            s.contains("%i = phi i32 [ 0, %entry ], [ %i2, %loop ]"),
            "{s}"
        );
        assert!(s.contains("br i1 %c, label %loop, label %exit"), "{s}");
    }

    #[test]
    fn prints_vector_ops_like_fig5() {
        use crate::intrinsics::maskload_name;
        let vty = Type::vec(ScalarTy::F32, 8);
        let mut b = FuncBuilder::new(
            "v",
            vec![("p".into(), Type::PTR), ("m".into(), vty)],
            Type::Void,
        );
        let entry = b.add_block("entry");
        b.position_at(entry);
        let p = b.param(0);
        let m = b.param(1);
        let ld = b.call(
            maskload_name(8, ScalarTy::F32),
            vec![p, m.clone()],
            vty,
            "0",
        );
        let e = b.extract(ld.clone(), Constant::i32(0).into(), "ext0");
        b.insert(ld, e, Constant::i32(0).into(), "ins0");
        b.ret(None);
        let s = print_function(&b.finish());
        assert!(
            s.contains("call <8 x float> @llvm.x86.avx.maskload.ps.256(ptr %p, <8 x float> %m)"),
            "{s}"
        );
        assert!(s.contains("extractelement <8 x float> %0, i32 0"), "{s}");
        assert!(
            s.contains("insertelement <8 x float> %0, float %ext0, i32 0"),
            "{s}"
        );
    }
}

#[cfg(test)]
mod name_tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::inst::BinOp;

    #[test]
    fn duplicate_names_get_suffixes_and_roundtrip() {
        // The SPMD-C compiler can emit the same source-level name twice
        // (full body + partial body); printing must uniquify.
        let mut b = FuncBuilder::new("f", vec![("x".into(), Type::I32)], Type::I32);
        let e = b.add_block("entry");
        b.position_at(e);
        let a = b.bin(BinOp::Add, b.param(0), Constant::i32(1).into(), "t");
        let c = b.bin(BinOp::Add, a, Constant::i32(2).into(), "t");
        b.ret(Some(c));
        let mut m = crate::function::Module::new("dup");
        m.add_function(b.finish());
        let text = print_module(&m);
        assert!(text.contains("%t = "), "{text}");
        assert!(text.contains("%t.1 = "), "{text}");
        let m2 = crate::parser::parse_module(&text).unwrap();
        crate::verify::verify_module(&m2).unwrap();
        assert_eq!(print_module(&m2), text);
    }

    #[test]
    fn anonymous_values_never_collide_with_named_ones() {
        let mut b = FuncBuilder::new("g", vec![("v1".into(), Type::I32)], Type::I32);
        let e = b.add_block("entry");
        b.position_at(e);
        // Anonymous result would default to "v1" (value index 1) — must be
        // disambiguated against the parameter named v1.
        let a = b.bin(BinOp::Add, b.param(0), Constant::i32(1).into(), "");
        b.ret(Some(a));
        let mut m = crate::function::Module::new("anon");
        m.add_function(b.finish());
        let text = print_module(&m);
        let m2 = crate::parser::parse_module(&text).unwrap();
        assert_eq!(print_module(&m2), text, "{text}");
    }
}
