//! Ergonomic construction of VIR functions.
//!
//! [`FuncBuilder`] wraps a [`Function`] with an insertion cursor, so code
//! generators and tests can emit instructions in LLVM-builder style:
//!
//! ```
//! use vir::builder::FuncBuilder;
//! use vir::{BinOp, Constant, Terminator, Type};
//!
//! let mut b = FuncBuilder::new("double_it", vec![("x".into(), Type::I32)], Type::I32);
//! let entry = b.add_block("entry");
//! b.position_at(entry);
//! let x = b.param(0);
//! let doubled = b.bin(BinOp::Mul, x, Constant::i32(2).into(), "d");
//! b.ret(Some(doubled));
//! let f = b.finish();
//! assert_eq!(f.num_placed_insts(), 1);
//! ```

use crate::constant::Constant;
use crate::function::Function;
use crate::inst::{
    BinOp, BlockId, CastOp, FCmpPred, ICmpPred, InstKind, Operand, Terminator, ValueId,
};
use crate::types::Type;

/// A function under construction.
pub struct FuncBuilder {
    f: Function,
    cur: Option<BlockId>,
}

impl FuncBuilder {
    pub fn new(name: impl Into<String>, params: Vec<(String, Type)>, ret: Type) -> FuncBuilder {
        FuncBuilder {
            f: Function::new(name, params, ret),
            cur: None,
        }
    }

    /// Add a block (does not move the cursor).
    pub fn add_block(&mut self, name: impl Into<String>) -> BlockId {
        self.f.add_block(name)
    }

    /// Move the insertion cursor to the end of `b`.
    pub fn position_at(&mut self, b: BlockId) {
        self.cur = Some(b);
    }

    pub fn current_block(&self) -> BlockId {
        self.cur.expect("builder has no current block")
    }

    /// The operand for parameter `i`.
    pub fn param(&self, i: usize) -> Operand {
        self.f.param_value(i).into()
    }

    pub fn func(&self) -> &Function {
        &self.f
    }

    pub fn func_mut(&mut self) -> &mut Function {
        &mut self.f
    }

    /// Type of an operand.
    pub fn ty_of(&self, op: &Operand) -> Type {
        self.f.operand_type(op)
    }

    fn emit(&mut self, kind: InstKind, ty: Type, name: &str) -> Operand {
        let block = self.current_block();
        let name = if name.is_empty() {
            None
        } else {
            Some(name.to_string())
        };
        let (_, res) = self.f.append_inst(block, kind, ty, name);
        match res {
            Some(v) => v.into(),
            None => Operand::Const(Constant::zero(Type::I32)), // void; callers ignore
        }
    }

    /// Emit a binary operation; the result type is the lhs type.
    pub fn bin(&mut self, op: BinOp, lhs: Operand, rhs: Operand, name: &str) -> Operand {
        let ty = self.ty_of(&lhs);
        self.emit(InstKind::Bin { op, lhs, rhs }, ty, name)
    }

    pub fn icmp(&mut self, pred: ICmpPred, lhs: Operand, rhs: Operand, name: &str) -> Operand {
        let ty = self.ty_of(&lhs).mask_type();
        self.emit(InstKind::ICmp { pred, lhs, rhs }, ty, name)
    }

    pub fn fcmp(&mut self, pred: FCmpPred, lhs: Operand, rhs: Operand, name: &str) -> Operand {
        let ty = self.ty_of(&lhs).mask_type();
        self.emit(InstKind::FCmp { pred, lhs, rhs }, ty, name)
    }

    pub fn select(
        &mut self,
        cond: Operand,
        on_true: Operand,
        on_false: Operand,
        name: &str,
    ) -> Operand {
        let ty = self.ty_of(&on_true);
        self.emit(
            InstKind::Select {
                cond,
                on_true,
                on_false,
            },
            ty,
            name,
        )
    }

    pub fn cast(&mut self, op: CastOp, val: Operand, to: Type, name: &str) -> Operand {
        self.emit(InstKind::Cast { op, val }, to, name)
    }

    pub fn alloca(&mut self, elem: Type, count: Operand, name: &str) -> Operand {
        self.emit(InstKind::Alloca { elem, count }, Type::PTR, name)
    }

    pub fn load(&mut self, ty: Type, ptr: Operand, name: &str) -> Operand {
        self.emit(InstKind::Load { ptr }, ty, name)
    }

    pub fn store(&mut self, val: Operand, ptr: Operand) {
        self.emit(InstKind::Store { val, ptr }, Type::Void, "");
    }

    /// `getelementptr`: `base + index * sizeof(elem)`.
    pub fn gep(&mut self, elem: Type, base: Operand, index: Operand, name: &str) -> Operand {
        self.emit(InstKind::Gep { elem, base, index }, Type::PTR, name)
    }

    pub fn extract(&mut self, vec: Operand, idx: Operand, name: &str) -> Operand {
        let ty = self
            .ty_of(&vec)
            .elem()
            .map(Type::Scalar)
            .expect("extractelement on non-vector");
        self.emit(InstKind::ExtractElement { vec, idx }, ty, name)
    }

    pub fn insert(&mut self, vec: Operand, elt: Operand, idx: Operand, name: &str) -> Operand {
        let ty = self.ty_of(&vec);
        self.emit(InstKind::InsertElement { vec, elt, idx }, ty, name)
    }

    pub fn shuffle(&mut self, a: Operand, b: Operand, mask: Vec<i32>, name: &str) -> Operand {
        let elem = self.ty_of(&a).elem().expect("shuffle on non-vector");
        let ty = Type::vec(elem, mask.len() as u32);
        self.emit(InstKind::ShuffleVector { a, b, mask }, ty, name)
    }

    /// Broadcast a scalar to all lanes using the exact two-instruction ISPC
    /// pattern from paper Fig. 9: `insertelement undef` + `shufflevector
    /// zeroinitializer-mask`.
    pub fn broadcast(&mut self, scalar: Operand, lanes: u32, name: &str) -> Operand {
        let elem = match self.ty_of(&scalar) {
            Type::Scalar(s) => s,
            t => panic!("broadcast of non-scalar type {t}"),
        };
        let vty = Type::vec(elem, lanes);
        let init = self.insert(
            Constant::undef(vty).into(),
            scalar,
            Constant::i32(0).into(),
            &format!("{name}_broadcast_init"),
        );
        self.shuffle(
            init,
            Constant::undef(vty).into(),
            vec![0; lanes as usize],
            &format!("{name}_broadcast"),
        )
    }

    /// Phi with no incomings yet; fill via [`FuncBuilder::add_incoming`].
    pub fn phi(&mut self, ty: Type, name: &str) -> Operand {
        self.emit(InstKind::Phi { incomings: vec![] }, ty, name)
    }

    /// Append an incoming edge to a previously created phi.
    pub fn add_incoming(&mut self, phi: &Operand, block: BlockId, val: Operand) {
        let vid = phi.value().expect("phi operand must be a value");
        let def = match self.f.value(vid).def {
            crate::function::ValueDef::Inst(i) => i,
            _ => panic!("add_incoming on non-instruction value"),
        };
        match &mut self.f.inst_mut(def).kind {
            InstKind::Phi { incomings } => incomings.push((block, val)),
            _ => panic!("add_incoming on non-phi instruction"),
        }
    }

    pub fn call(
        &mut self,
        callee: impl Into<String>,
        args: Vec<Operand>,
        ret: Type,
        name: &str,
    ) -> Operand {
        self.emit(
            InstKind::Call {
                callee: callee.into(),
                args,
            },
            ret,
            name,
        )
    }

    // Terminators ---------------------------------------------------------

    pub fn br(&mut self, target: BlockId) {
        let b = self.current_block();
        self.f.block_mut(b).term = Terminator::Br(target);
    }

    pub fn cond_br(&mut self, cond: Operand, on_true: BlockId, on_false: BlockId) {
        let b = self.current_block();
        self.f.block_mut(b).term = Terminator::CondBr {
            cond,
            on_true,
            on_false,
        };
    }

    pub fn ret(&mut self, val: Option<Operand>) {
        let b = self.current_block();
        self.f.block_mut(b).term = Terminator::Ret(val);
    }

    pub fn unreachable(&mut self) {
        let b = self.current_block();
        self.f.block_mut(b).term = Terminator::Unreachable;
    }

    /// Finish construction and return the function.
    pub fn finish(self) -> Function {
        self.f
    }

    /// Resolve a value id from an operand (for tests/passes).
    pub fn as_value(&self, op: &Operand) -> Option<ValueId> {
        op.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ScalarTy;

    #[test]
    fn builder_builds_loop_with_phi() {
        // sum 0..n
        let mut b = FuncBuilder::new("sum", vec![("n".into(), Type::I32)], Type::I32);
        let entry = b.add_block("entry");
        let header = b.add_block("header");
        let body = b.add_block("body");
        let exit = b.add_block("exit");

        b.position_at(entry);
        b.br(header);

        b.position_at(header);
        let i = b.phi(Type::I32, "i");
        let acc = b.phi(Type::I32, "acc");
        let n = b.param(0);
        let cond = b.icmp(ICmpPred::Slt, i.clone(), n, "cond");
        b.cond_br(cond, body, exit);

        b.position_at(body);
        let acc2 = b.bin(BinOp::Add, acc.clone(), i.clone(), "acc2");
        let i2 = b.bin(BinOp::Add, i.clone(), Constant::i32(1).into(), "i2");
        b.br(header);

        b.add_incoming(&i, entry, Constant::i32(0).into());
        b.add_incoming(&i, body, i2);
        b.add_incoming(&acc, entry, Constant::i32(0).into());
        b.add_incoming(&acc, body, acc2);

        b.position_at(exit);
        b.ret(Some(acc));

        let f = b.finish();
        assert_eq!(f.blocks.len(), 4);
        assert_eq!(f.num_placed_insts(), 5);
    }

    #[test]
    fn broadcast_emits_ispc_pattern() {
        let mut b = FuncBuilder::new("bc", vec![("x".into(), Type::F32)], Type::Void);
        let entry = b.add_block("entry");
        b.position_at(entry);
        let x = b.param(0);
        let v = b.broadcast(x, 8, "uval");
        b.ret(None);
        let f = b.finish();
        assert_eq!(f.operand_type(&v), Type::vec(ScalarTy::F32, 8));
        // insertelement followed by shufflevector, as in paper Fig. 9.
        let kinds: Vec<_> = f
            .placed_insts()
            .map(|(_, i)| std::mem::discriminant(&f.inst(i).kind))
            .collect();
        assert_eq!(kinds.len(), 2);
        assert!(matches!(
            f.inst(f.block(entry).insts[0]).kind,
            InstKind::InsertElement { .. }
        ));
        assert!(matches!(
            f.inst(f.block(entry).insts[1]).kind,
            InstKind::ShuffleVector { .. }
        ));
    }

    #[test]
    fn select_and_casts() {
        let mut b = FuncBuilder::new(
            "c",
            vec![("x".into(), Type::I32), ("c".into(), Type::I1)],
            Type::F32,
        );
        let entry = b.add_block("entry");
        b.position_at(entry);
        let x = b.param(0);
        let c = b.param(1);
        let sel = b.select(c, x.clone(), Constant::i32(0).into(), "sel");
        let f32v = b.cast(CastOp::SiToFp, sel, Type::F32, "f");
        b.ret(Some(f32v.clone()));
        let f = b.finish();
        assert_eq!(f.operand_type(&f32v), Type::F32);
    }
}
