//! Functions, basic blocks, and modules.
//!
//! A [`Function`] owns three arenas: SSA values, instructions, and basic
//! blocks. Instructions live in the instruction arena and blocks hold
//! ordered lists of [`InstId`]s, so transformation passes (e.g. VULFI's
//! per-lane instrumentation) can splice new instructions into a block
//! without invalidating existing ids.

use std::collections::HashMap;

use crate::inst::{BlockId, Inst, InstId, InstKind, Operand, Terminator, ValueId};
use crate::types::Type;

/// Where an SSA value comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueDef {
    /// The n-th function parameter.
    Param(u32),
    /// The result of an instruction.
    Inst(InstId),
}

/// Metadata for one SSA value.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueInfo {
    pub ty: Type,
    pub name: Option<String>,
    pub def: ValueDef,
}

/// A basic block: a label, an ordered instruction list, and a terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    pub name: String,
    pub insts: Vec<InstId>,
    pub term: Terminator,
}

/// An external function declaration (VULFI runtime API functions, detector
/// runtime calls, and any other host-provided functions are declared, not
/// defined).
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDecl {
    pub name: String,
    pub ret: Type,
    pub params: Vec<Type>,
    /// Lenient signature: extra arguments of any type are accepted.
    pub vararg: bool,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    pub name: String,
    /// Parameter names; parameter `i` is SSA value `ValueId(i)`.
    pub params: Vec<(String, Type)>,
    pub ret: Type,
    pub values: Vec<ValueInfo>,
    pub insts: Vec<Inst>,
    pub blocks: Vec<Block>,
}

impl Function {
    /// Create a function with no blocks yet. Parameters become the first
    /// SSA values.
    pub fn new(name: impl Into<String>, params: Vec<(String, Type)>, ret: Type) -> Function {
        let values = params
            .iter()
            .enumerate()
            .map(|(i, (n, t))| ValueInfo {
                ty: *t,
                name: Some(n.clone()),
                def: ValueDef::Param(i as u32),
            })
            .collect();
        Function {
            name: name.into(),
            params,
            ret,
            values,
            insts: Vec::new(),
            blocks: Vec::new(),
        }
    }

    /// The entry block (block 0 by convention).
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    pub fn param_value(&self, i: usize) -> ValueId {
        debug_assert!(i < self.params.len());
        ValueId(i as u32)
    }

    pub fn block(&self, b: BlockId) -> &Block {
        &self.blocks[b.index()]
    }

    pub fn block_mut(&mut self, b: BlockId) -> &mut Block {
        &mut self.blocks[b.index()]
    }

    pub fn inst(&self, i: InstId) -> &Inst {
        &self.insts[i.index()]
    }

    pub fn inst_mut(&mut self, i: InstId) -> &mut Inst {
        &mut self.insts[i.index()]
    }

    pub fn value(&self, v: ValueId) -> &ValueInfo {
        &self.values[v.index()]
    }

    /// Type of an operand (values resolved through the value table).
    pub fn operand_type(&self, op: &Operand) -> Type {
        match op {
            Operand::Value(v) => self.value(*v).ty,
            Operand::Const(c) => c.ty,
        }
    }

    /// Append a new basic block and return its id.
    pub fn add_block(&mut self, name: impl Into<String>) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block {
            name: name.into(),
            insts: Vec::new(),
            term: Terminator::Unreachable,
        });
        id
    }

    /// Find a block by label.
    pub fn block_by_name(&self, name: &str) -> Option<BlockId> {
        self.blocks
            .iter()
            .position(|b| b.name == name)
            .map(|i| BlockId(i as u32))
    }

    /// Allocate a fresh SSA value of type `ty` (defined by `def`).
    pub fn new_value(&mut self, ty: Type, name: Option<String>, def: ValueDef) -> ValueId {
        let id = ValueId(self.values.len() as u32);
        self.values.push(ValueInfo { ty, name, def });
        id
    }

    /// Append an instruction to the end of `block`, creating a result value
    /// when `ty` is non-void. Returns `(inst, result)`.
    pub fn append_inst(
        &mut self,
        block: BlockId,
        kind: InstKind,
        ty: Type,
        name: Option<String>,
    ) -> (InstId, Option<ValueId>) {
        let iid = InstId(self.insts.len() as u32);
        let result = if ty.is_void() {
            None
        } else {
            Some(self.new_value(ty, name, ValueDef::Inst(iid)))
        };
        self.insts.push(Inst { kind, ty, result });
        self.blocks[block.index()].insts.push(iid);
        (iid, result)
    }

    /// Create an instruction *without* placing it into any block. Used by
    /// passes that splice instruction chains at precise positions.
    pub fn create_inst(&mut self, kind: InstKind, ty: Type, name: Option<String>) -> InstId {
        let iid = InstId(self.insts.len() as u32);
        let result = if ty.is_void() {
            None
        } else {
            Some(self.new_value(ty, name, ValueDef::Inst(iid)))
        };
        self.insts.push(Inst { kind, ty, result });
        iid
    }

    /// Insert `new` into `block` immediately after `after`.
    /// Panics if `after` is not in `block`.
    pub fn insert_after(&mut self, block: BlockId, after: InstId, new: InstId) {
        let b = &mut self.blocks[block.index()];
        let pos = b
            .insts
            .iter()
            .position(|&i| i == after)
            .expect("anchor instruction not found in block");
        b.insts.insert(pos + 1, new);
    }

    /// Insert `new` into `block` immediately before `before`.
    pub fn insert_before(&mut self, block: BlockId, before: InstId, new: InstId) {
        let b = &mut self.blocks[block.index()];
        let pos = b
            .insts
            .iter()
            .position(|&i| i == before)
            .expect("anchor instruction not found in block");
        b.insts.insert(pos, new);
    }

    /// Replace every use of value `old` with `new` across the whole function
    /// (instruction operands and terminator operands), except inside the
    /// instructions listed in `skip`. This is the "redirect all users"
    /// step of the VULFI instrumentation workflow (paper Fig. 4).
    pub fn replace_uses(&mut self, old: ValueId, new: Operand, skip: &[InstId]) {
        for (idx, inst) in self.insts.iter_mut().enumerate() {
            if skip.contains(&InstId(idx as u32)) {
                continue;
            }
            inst.for_each_operand_mut(|op| {
                if op.value() == Some(old) {
                    *op = new.clone();
                }
            });
        }
        for block in &mut self.blocks {
            block.term.for_each_operand_mut(|op| {
                if op.value() == Some(old) {
                    *op = new.clone();
                }
            });
        }
    }

    /// The block that contains instruction `i`, if it is placed.
    pub fn block_of(&self, i: InstId) -> Option<BlockId> {
        for (bi, b) in self.blocks.iter().enumerate() {
            if b.insts.contains(&i) {
                return Some(BlockId(bi as u32));
            }
        }
        None
    }

    /// Resolve the printable name of a value (`%name` or `%vN`).
    pub fn value_display_name(&self, v: ValueId) -> String {
        match &self.value(v).name {
            Some(n) => n.clone(),
            None => format!("v{}", v.0),
        }
    }

    /// True when `inst` is a vector instruction per the paper's definition
    /// (§II-A): it has at least one vector-typed operand or a vector result.
    pub fn inst_is_vector(&self, i: InstId) -> bool {
        let inst = self.inst(i);
        if inst.ty.is_vector() {
            return true;
        }
        inst.operands()
            .iter()
            .any(|op| self.operand_type(op).is_vector())
    }

    /// Iterate `(BlockId, InstId)` over all placed instructions in layout
    /// order.
    pub fn placed_insts(&self) -> impl Iterator<Item = (BlockId, InstId)> + '_ {
        self.blocks
            .iter()
            .enumerate()
            .flat_map(|(bi, b)| b.insts.iter().map(move |&i| (BlockId(bi as u32), i)))
    }

    /// Total number of placed instructions (terminators not counted).
    pub fn num_placed_insts(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }
}

/// A translation unit: defined functions plus external declarations.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Module {
    pub name: String,
    pub functions: Vec<Function>,
    pub decls: Vec<FuncDecl>,
}

impl Module {
    pub fn new(name: impl Into<String>) -> Module {
        Module {
            name: name.into(),
            functions: Vec::new(),
            decls: Vec::new(),
        }
    }

    pub fn add_function(&mut self, f: Function) -> usize {
        self.functions.push(f);
        self.functions.len() - 1
    }

    /// Add an external declaration if not already present.
    pub fn declare(&mut self, decl: FuncDecl) {
        if !self.decls.iter().any(|d| d.name == decl.name) {
            self.decls.push(decl);
        }
    }

    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    pub fn function_mut(&mut self, name: &str) -> Option<&mut Function> {
        self.functions.iter_mut().find(|f| f.name == name)
    }

    pub fn decl(&self, name: &str) -> Option<&FuncDecl> {
        self.decls.iter().find(|d| d.name == name)
    }

    /// Map from function name to definition index.
    pub fn function_index(&self) -> HashMap<&str, usize> {
        self.functions
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.as_str(), i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constant::Constant;
    use crate::inst::BinOp;

    fn simple_fn() -> Function {
        // define i32 @f(i32 %x) { entry: %y = add i32 %x, 1; ret i32 %y }
        let mut f = Function::new("f", vec![("x".into(), Type::I32)], Type::I32);
        let entry = f.add_block("entry");
        let x = f.param_value(0);
        let (_, y) = f.append_inst(
            entry,
            InstKind::Bin {
                op: BinOp::Add,
                lhs: x.into(),
                rhs: Constant::i32(1).into(),
            },
            Type::I32,
            Some("y".into()),
        );
        f.block_mut(entry).term = Terminator::Ret(Some(y.unwrap().into()));
        f
    }

    #[test]
    fn params_are_first_values() {
        let f = simple_fn();
        assert_eq!(f.value(ValueId(0)).ty, Type::I32);
        assert_eq!(f.value(ValueId(0)).def, ValueDef::Param(0));
        assert_eq!(f.params.len(), 1);
    }

    #[test]
    fn append_creates_result_values() {
        let f = simple_fn();
        assert_eq!(f.num_placed_insts(), 1);
        let (_, iid) = f.placed_insts().next().unwrap();
        let inst = f.inst(iid);
        assert!(inst.result.is_some());
        assert_eq!(inst.ty, Type::I32);
    }

    #[test]
    fn replace_uses_rewrites_terminators_too() {
        let mut f = simple_fn();
        let y = ValueId(1);
        f.replace_uses(y, Constant::i32(42).into(), &[]);
        match &f.block(BlockId(0)).term {
            Terminator::Ret(Some(Operand::Const(c))) => assert_eq!(c.as_i64(), Some(42)),
            t => panic!("unexpected terminator {t:?}"),
        }
    }

    #[test]
    fn replace_uses_respects_skip_list() {
        let mut f = simple_fn();
        let x = ValueId(0);
        let (_, add_iid) = f.placed_insts().next().unwrap();
        f.replace_uses(x, Constant::i32(9).into(), &[add_iid]);
        // The add still refers to %x because it was skipped.
        let inst = f.inst(add_iid);
        assert_eq!(inst.operands()[0].value(), Some(x));
    }

    #[test]
    fn insert_after_positions_correctly() {
        let mut f = simple_fn();
        let entry = BlockId(0);
        let anchor = f.block(entry).insts[0];
        let new = f.create_inst(
            InstKind::Bin {
                op: BinOp::Mul,
                lhs: ValueId(1).into(),
                rhs: Constant::i32(2).into(),
            },
            Type::I32,
            None,
        );
        f.insert_after(entry, anchor, new);
        assert_eq!(f.block(entry).insts, vec![anchor, new]);
        assert_eq!(f.block_of(new), Some(entry));
    }

    #[test]
    fn module_lookup() {
        let mut m = Module::new("test");
        m.add_function(simple_fn());
        m.declare(FuncDecl {
            name: "ext".into(),
            ret: Type::Void,
            params: vec![Type::I32],
            vararg: false,
        });
        // Duplicate declarations are merged.
        m.declare(FuncDecl {
            name: "ext".into(),
            ret: Type::Void,
            params: vec![Type::I32],
            vararg: false,
        });
        assert!(m.function("f").is_some());
        assert!(m.function("g").is_none());
        assert_eq!(m.decls.len(), 1);
        assert_eq!(m.function_index()["f"], 0);
    }

    #[test]
    fn inst_is_vector_uses_value_types() {
        let mut f = Function::new(
            "v",
            vec![("a".into(), Type::vec(crate::types::ScalarTy::F32, 8))],
            Type::F32,
        );
        let entry = f.add_block("entry");
        let a = f.param_value(0);
        // extractelement: scalar result but vector operand => vector inst.
        let (iid, r) = f.append_inst(
            entry,
            InstKind::ExtractElement {
                vec: a.into(),
                idx: Constant::i32(0).into(),
            },
            Type::F32,
            None,
        );
        f.block_mut(entry).term = Terminator::Ret(Some(r.unwrap().into()));
        assert!(f.inst_is_vector(iid));
    }
}
