//! Type system of the VIR intermediate representation.
//!
//! VIR mirrors the slice of the LLVM 3.2 type system that the VULFI paper
//! exercises: scalar integers (`i1`..`i64`), IEEE floats (`float`/`double`),
//! an opaque pointer type, and fixed-length vectors of any scalar type.

use std::fmt;

/// A scalar (non-aggregate) type: the element domain of vector registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ScalarTy {
    /// 1-bit integer (booleans, comparison results, lane masks).
    I1,
    /// 8-bit integer.
    I8,
    /// 16-bit integer.
    I16,
    /// 32-bit integer.
    I32,
    /// 64-bit integer.
    I64,
    /// IEEE-754 binary32.
    F32,
    /// IEEE-754 binary64.
    F64,
    /// Opaque pointer, 64 bits wide in the VIR memory model.
    Ptr,
}

impl ScalarTy {
    /// Width of the value in bits. This is the domain over which the fault
    /// injector picks a random bit position (paper §II-B).
    pub fn bits(self) -> u32 {
        match self {
            ScalarTy::I1 => 1,
            ScalarTy::I8 => 8,
            ScalarTy::I16 => 16,
            ScalarTy::I32 | ScalarTy::F32 => 32,
            ScalarTy::I64 | ScalarTy::F64 | ScalarTy::Ptr => 64,
        }
    }

    /// Storage footprint in bytes (i1 is stored as one byte).
    pub fn bytes(self) -> u64 {
        match self {
            ScalarTy::I1 | ScalarTy::I8 => 1,
            ScalarTy::I16 => 2,
            ScalarTy::I32 | ScalarTy::F32 => 4,
            ScalarTy::I64 | ScalarTy::F64 | ScalarTy::Ptr => 8,
        }
    }

    /// True for the integer family (including `i1`).
    pub fn is_int(self) -> bool {
        matches!(
            self,
            ScalarTy::I1 | ScalarTy::I8 | ScalarTy::I16 | ScalarTy::I32 | ScalarTy::I64
        )
    }

    /// True for `float`/`double`.
    pub fn is_float(self) -> bool {
        matches!(self, ScalarTy::F32 | ScalarTy::F64)
    }

    /// Mask keeping only the bits that belong to this type's width.
    pub fn bit_mask(self) -> u64 {
        match self.bits() {
            64 => u64::MAX,
            b => (1u64 << b) - 1,
        }
    }

    /// LLVM-style spelling (`i32`, `float`, `ptr`, ...).
    pub fn name(self) -> &'static str {
        match self {
            ScalarTy::I1 => "i1",
            ScalarTy::I8 => "i8",
            ScalarTy::I16 => "i16",
            ScalarTy::I32 => "i32",
            ScalarTy::I64 => "i64",
            ScalarTy::F32 => "float",
            ScalarTy::F64 => "double",
            ScalarTy::Ptr => "ptr",
        }
    }

    /// Short suffix used in intrinsic names (`f32`, `i32`, ...).
    pub fn suffix(self) -> &'static str {
        match self {
            ScalarTy::I1 => "i1",
            ScalarTy::I8 => "i8",
            ScalarTy::I16 => "i16",
            ScalarTy::I32 => "i32",
            ScalarTy::I64 => "i64",
            ScalarTy::F32 => "f32",
            ScalarTy::F64 => "f64",
            ScalarTy::Ptr => "p0",
        }
    }
}

impl fmt::Display for ScalarTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A first-class VIR type.
///
/// Per the paper's terminology (§II-A): a *vector register* has a `Vector`
/// type; a *scalar register* has integer, floating point, or pointer type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Type {
    /// The type of instructions that produce no value (`store`, void calls).
    Void,
    /// A scalar register type.
    Scalar(ScalarTy),
    /// A packed vector of `lanes` scalar elements.
    Vector(ScalarTy, u32),
}

impl Type {
    /// Convenience constructors.
    pub const I1: Type = Type::Scalar(ScalarTy::I1);
    pub const I8: Type = Type::Scalar(ScalarTy::I8);
    pub const I16: Type = Type::Scalar(ScalarTy::I16);
    pub const I32: Type = Type::Scalar(ScalarTy::I32);
    pub const I64: Type = Type::Scalar(ScalarTy::I64);
    pub const F32: Type = Type::Scalar(ScalarTy::F32);
    pub const F64: Type = Type::Scalar(ScalarTy::F64);
    pub const PTR: Type = Type::Scalar(ScalarTy::Ptr);

    /// Build a vector type; `lanes` must be at least 1.
    pub fn vec(elem: ScalarTy, lanes: u32) -> Type {
        assert!(lanes >= 1, "vector types need at least one lane");
        Type::Vector(elem, lanes)
    }

    /// The paper's `Vl`: number of scalar registers packed in this register.
    /// Scalars count as one lane.
    pub fn lanes(self) -> u32 {
        match self {
            Type::Vector(_, n) => n,
            Type::Scalar(_) => 1,
            Type::Void => 0,
        }
    }

    /// Element scalar type (the type itself for scalars).
    pub fn elem(self) -> Option<ScalarTy> {
        match self {
            Type::Scalar(s) | Type::Vector(s, _) => Some(s),
            Type::Void => None,
        }
    }

    /// True when this is a vector register type.
    pub fn is_vector(self) -> bool {
        matches!(self, Type::Vector(..))
    }

    /// True when this is a scalar register type.
    pub fn is_scalar(self) -> bool {
        matches!(self, Type::Scalar(_))
    }

    pub fn is_void(self) -> bool {
        matches!(self, Type::Void)
    }

    /// True for scalar or vector of integers.
    pub fn is_int(self) -> bool {
        self.elem().is_some_and(ScalarTy::is_int)
    }

    /// True for scalar or vector of floats.
    pub fn is_float(self) -> bool {
        self.elem().is_some_and(ScalarTy::is_float)
    }

    /// True for the scalar pointer type.
    pub fn is_ptr(self) -> bool {
        self == Type::PTR
    }

    /// Storage footprint in bytes.
    pub fn size_bytes(self) -> u64 {
        match self {
            Type::Void => 0,
            Type::Scalar(s) => s.bytes(),
            Type::Vector(s, n) => s.bytes() * n as u64,
        }
    }

    /// The `<n x i1>` mask type matching this vector's lane count.
    pub fn mask_type(self) -> Type {
        match self {
            Type::Vector(_, n) => Type::Vector(ScalarTy::I1, n),
            _ => Type::I1,
        }
    }

    /// Replace the element type, keeping the shape (scalar stays scalar).
    pub fn with_elem(self, elem: ScalarTy) -> Type {
        match self {
            Type::Vector(_, n) => Type::Vector(elem, n),
            Type::Scalar(_) => Type::Scalar(elem),
            Type::Void => Type::Void,
        }
    }

    /// Suffix used in intrinsic names: `f32` for scalars, `v8f32` for vectors.
    pub fn intrinsic_suffix(self) -> String {
        match self {
            Type::Void => "void".to_string(),
            Type::Scalar(s) => s.suffix().to_string(),
            Type::Vector(s, n) => format!("v{}{}", n, s.suffix()),
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => f.write_str("void"),
            Type::Scalar(s) => write!(f, "{s}"),
            Type::Vector(s, n) => write!(f, "<{n} x {s}>"),
        }
    }
}

impl From<ScalarTy> for Type {
    fn from(s: ScalarTy) -> Type {
        Type::Scalar(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_widths() {
        assert_eq!(ScalarTy::I1.bits(), 1);
        assert_eq!(ScalarTy::I8.bits(), 8);
        assert_eq!(ScalarTy::I16.bits(), 16);
        assert_eq!(ScalarTy::I32.bits(), 32);
        assert_eq!(ScalarTy::I64.bits(), 64);
        assert_eq!(ScalarTy::F32.bits(), 32);
        assert_eq!(ScalarTy::F64.bits(), 64);
        assert_eq!(ScalarTy::Ptr.bits(), 64);
    }

    #[test]
    fn bit_masks_cover_width() {
        assert_eq!(ScalarTy::I1.bit_mask(), 1);
        assert_eq!(ScalarTy::I8.bit_mask(), 0xff);
        assert_eq!(ScalarTy::F32.bit_mask(), 0xffff_ffff);
        assert_eq!(ScalarTy::I64.bit_mask(), u64::MAX);
    }

    #[test]
    fn vector_lane_counts() {
        let avx = Type::vec(ScalarTy::F32, 8);
        let sse = Type::vec(ScalarTy::F32, 4);
        assert_eq!(avx.lanes(), 8);
        assert_eq!(sse.lanes(), 4);
        assert_eq!(Type::I32.lanes(), 1);
        assert!(avx.is_vector());
        assert!(!Type::I32.is_vector());
    }

    #[test]
    fn sizes() {
        assert_eq!(Type::vec(ScalarTy::F32, 8).size_bytes(), 32);
        assert_eq!(Type::vec(ScalarTy::I32, 4).size_bytes(), 16);
        assert_eq!(Type::F64.size_bytes(), 8);
        assert_eq!(Type::Void.size_bytes(), 0);
    }

    #[test]
    fn display_matches_llvm_spelling() {
        assert_eq!(Type::vec(ScalarTy::F32, 8).to_string(), "<8 x float>");
        assert_eq!(Type::I32.to_string(), "i32");
        assert_eq!(Type::PTR.to_string(), "ptr");
        assert_eq!(Type::Void.to_string(), "void");
    }

    #[test]
    fn mask_types() {
        assert_eq!(
            Type::vec(ScalarTy::F32, 8).mask_type(),
            Type::vec(ScalarTy::I1, 8)
        );
        assert_eq!(Type::F32.mask_type(), Type::I1);
    }

    #[test]
    fn intrinsic_suffixes() {
        assert_eq!(Type::vec(ScalarTy::F32, 8).intrinsic_suffix(), "v8f32");
        assert_eq!(Type::F64.intrinsic_suffix(), "f64");
        assert_eq!(Type::I32.intrinsic_suffix(), "i32");
    }

    #[test]
    fn with_elem_keeps_shape() {
        assert_eq!(
            Type::vec(ScalarTy::F32, 4).with_elem(ScalarTy::I32),
            Type::vec(ScalarTy::I32, 4)
        );
        assert_eq!(Type::F32.with_elem(ScalarTy::I64), Type::I64);
    }
}
