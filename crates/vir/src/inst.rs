//! Instructions, operands and terminators.

use crate::constant::Constant;
use crate::types::Type;

/// Index of an instruction within a function's instruction arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstId(pub u32);

/// Index of a basic block within a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

/// Index of an SSA value (parameter or instruction result) within a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub u32);

impl InstId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}
impl BlockId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}
impl ValueId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An instruction operand: an SSA value reference or an inline constant.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    Value(ValueId),
    Const(Constant),
}

impl Operand {
    pub fn value(&self) -> Option<ValueId> {
        match self {
            Operand::Value(v) => Some(*v),
            Operand::Const(_) => None,
        }
    }

    pub fn constant(&self) -> Option<&Constant> {
        match self {
            Operand::Const(c) => Some(c),
            Operand::Value(_) => None,
        }
    }
}

impl From<ValueId> for Operand {
    fn from(v: ValueId) -> Operand {
        Operand::Value(v)
    }
}

impl From<Constant> for Operand {
    fn from(c: Constant) -> Operand {
        Operand::Const(c)
    }
}

/// Binary opcodes. Integer and float arithmetic share one enum, like LLVM's
/// instruction namespace; the verifier enforces the operand domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    SDiv,
    UDiv,
    SRem,
    URem,
    And,
    Or,
    Xor,
    Shl,
    LShr,
    AShr,
    FAdd,
    FSub,
    FMul,
    FDiv,
    FRem,
}

impl BinOp {
    pub fn is_float(self) -> bool {
        matches!(
            self,
            BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FDiv | BinOp::FRem
        )
    }

    pub fn is_int(self) -> bool {
        !self.is_float()
    }

    /// Division-family ops that can trap on a zero divisor.
    pub fn can_trap(self) -> bool {
        matches!(self, BinOp::SDiv | BinOp::UDiv | BinOp::SRem | BinOp::URem)
    }

    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::SDiv => "sdiv",
            BinOp::UDiv => "udiv",
            BinOp::SRem => "srem",
            BinOp::URem => "urem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::LShr => "lshr",
            BinOp::AShr => "ashr",
            BinOp::FAdd => "fadd",
            BinOp::FSub => "fsub",
            BinOp::FMul => "fmul",
            BinOp::FDiv => "fdiv",
            BinOp::FRem => "frem",
        }
    }

    pub fn from_mnemonic(s: &str) -> Option<BinOp> {
        Some(match s {
            "add" => BinOp::Add,
            "sub" => BinOp::Sub,
            "mul" => BinOp::Mul,
            "sdiv" => BinOp::SDiv,
            "udiv" => BinOp::UDiv,
            "srem" => BinOp::SRem,
            "urem" => BinOp::URem,
            "and" => BinOp::And,
            "or" => BinOp::Or,
            "xor" => BinOp::Xor,
            "shl" => BinOp::Shl,
            "lshr" => BinOp::LShr,
            "ashr" => BinOp::AShr,
            "fadd" => BinOp::FAdd,
            "fsub" => BinOp::FSub,
            "fmul" => BinOp::FMul,
            "fdiv" => BinOp::FDiv,
            "frem" => BinOp::FRem,
            _ => return None,
        })
    }
}

/// Integer comparison predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ICmpPred {
    Eq,
    Ne,
    Slt,
    Sle,
    Sgt,
    Sge,
    Ult,
    Ule,
    Ugt,
    Uge,
}

impl ICmpPred {
    pub fn mnemonic(self) -> &'static str {
        match self {
            ICmpPred::Eq => "eq",
            ICmpPred::Ne => "ne",
            ICmpPred::Slt => "slt",
            ICmpPred::Sle => "sle",
            ICmpPred::Sgt => "sgt",
            ICmpPred::Sge => "sge",
            ICmpPred::Ult => "ult",
            ICmpPred::Ule => "ule",
            ICmpPred::Ugt => "ugt",
            ICmpPred::Uge => "uge",
        }
    }

    pub fn from_mnemonic(s: &str) -> Option<ICmpPred> {
        Some(match s {
            "eq" => ICmpPred::Eq,
            "ne" => ICmpPred::Ne,
            "slt" => ICmpPred::Slt,
            "sle" => ICmpPred::Sle,
            "sgt" => ICmpPred::Sgt,
            "sge" => ICmpPred::Sge,
            "ult" => ICmpPred::Ult,
            "ule" => ICmpPred::Ule,
            "ugt" => ICmpPred::Ugt,
            "uge" => ICmpPred::Uge,
            _ => return None,
        })
    }
}

/// Floating-point comparison predicates (ordered subset plus `ord`/`uno`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FCmpPred {
    Oeq,
    One,
    Olt,
    Ole,
    Ogt,
    Oge,
    Ord,
    Uno,
    Ueq,
    Une,
}

impl FCmpPred {
    pub fn mnemonic(self) -> &'static str {
        match self {
            FCmpPred::Oeq => "oeq",
            FCmpPred::One => "one",
            FCmpPred::Olt => "olt",
            FCmpPred::Ole => "ole",
            FCmpPred::Ogt => "ogt",
            FCmpPred::Oge => "oge",
            FCmpPred::Ord => "ord",
            FCmpPred::Uno => "uno",
            FCmpPred::Ueq => "ueq",
            FCmpPred::Une => "une",
        }
    }

    pub fn from_mnemonic(s: &str) -> Option<FCmpPred> {
        Some(match s {
            "oeq" => FCmpPred::Oeq,
            "one" => FCmpPred::One,
            "olt" => FCmpPred::Olt,
            "ole" => FCmpPred::Ole,
            "ogt" => FCmpPred::Ogt,
            "oge" => FCmpPred::Oge,
            "ord" => FCmpPred::Ord,
            "uno" => FCmpPred::Uno,
            "ueq" => FCmpPred::Ueq,
            "une" => FCmpPred::Une,
            _ => return None,
        })
    }
}

/// Cast opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CastOp {
    Trunc,
    ZExt,
    SExt,
    FpToSi,
    SiToFp,
    FpExt,
    FpTrunc,
    Bitcast,
    PtrToInt,
    IntToPtr,
}

impl CastOp {
    pub fn mnemonic(self) -> &'static str {
        match self {
            CastOp::Trunc => "trunc",
            CastOp::ZExt => "zext",
            CastOp::SExt => "sext",
            CastOp::FpToSi => "fptosi",
            CastOp::SiToFp => "sitofp",
            CastOp::FpExt => "fpext",
            CastOp::FpTrunc => "fptrunc",
            CastOp::Bitcast => "bitcast",
            CastOp::PtrToInt => "ptrtoint",
            CastOp::IntToPtr => "inttoptr",
        }
    }

    pub fn from_mnemonic(s: &str) -> Option<CastOp> {
        Some(match s {
            "trunc" => CastOp::Trunc,
            "zext" => CastOp::ZExt,
            "sext" => CastOp::SExt,
            "fptosi" => CastOp::FpToSi,
            "sitofp" => CastOp::SiToFp,
            "fpext" => CastOp::FpExt,
            "fptrunc" => CastOp::FpTrunc,
            "bitcast" => CastOp::Bitcast,
            "ptrtoint" => CastOp::PtrToInt,
            "inttoptr" => CastOp::IntToPtr,
            _ => return None,
        })
    }
}

/// The instruction payload.
#[derive(Debug, Clone, PartialEq)]
pub enum InstKind {
    /// `add`/`fmul`/... — elementwise on vectors.
    Bin {
        op: BinOp,
        lhs: Operand,
        rhs: Operand,
    },
    /// Integer comparison; vector operands yield an `<n x i1>` result.
    ICmp {
        pred: ICmpPred,
        lhs: Operand,
        rhs: Operand,
    },
    /// Float comparison.
    FCmp {
        pred: FCmpPred,
        lhs: Operand,
        rhs: Operand,
    },
    /// `select cond, t, f`; a vector `i1` condition blends per lane.
    Select {
        cond: Operand,
        on_true: Operand,
        on_false: Operand,
    },
    /// Conversion; the destination type is the instruction's result type.
    Cast { op: CastOp, val: Operand },
    /// Stack allocation of `count` elements of `elem`; yields a pointer.
    Alloca { elem: Type, count: Operand },
    /// Memory load; the loaded type is the instruction's result type.
    Load { ptr: Operand },
    /// Memory store (no result; the paper treats the *value operand* as the
    /// fault site since there is no Lvalue).
    Store { val: Operand, ptr: Operand },
    /// Simplified `getelementptr`: `base + index * sizeof(elem)`.
    /// This is the *address-calculation* instruction the site classifier
    /// keys on (paper §II-C).
    Gep {
        elem: Type,
        base: Operand,
        index: Operand,
    },
    /// Extract one scalar from a vector register (paper §II-A).
    ExtractElement { vec: Operand, idx: Operand },
    /// Insert one scalar into a vector register (paper §II-A).
    InsertElement {
        vec: Operand,
        elt: Operand,
        idx: Operand,
    },
    /// Lane shuffle of two vectors; `-1` mask entries produce undef lanes.
    ShuffleVector {
        a: Operand,
        b: Operand,
        mask: Vec<i32>,
    },
    /// SSA phi node.
    Phi { incomings: Vec<(BlockId, Operand)> },
    /// Call to a defined function, an `llvm.*` intrinsic, or a host function
    /// (e.g. VULFI's runtime injection API).
    Call { callee: String, args: Vec<Operand> },
}

/// An instruction: payload plus result type (`Void` when it produces no
/// value) and an optional result value.
#[derive(Debug, Clone, PartialEq)]
pub struct Inst {
    pub kind: InstKind,
    pub ty: Type,
    /// Result SSA value; `None` for `store` and void calls.
    pub result: Option<ValueId>,
}

impl Inst {
    /// Vector instruction per the paper's definition (§II-A): at least one
    /// vector-typed operand *or* a vector result.
    pub fn is_vector(&self) -> bool {
        if self.ty.is_vector() {
            return true;
        }
        self.operand_types_unknown_as_scalar()
    }

    fn operand_types_unknown_as_scalar(&self) -> bool {
        // Only constants carry inline type info; value operand types are
        // resolved by `Function::inst_is_vector`, which should be preferred.
        self.operands()
            .iter()
            .any(|op| matches!(op, Operand::Const(c) if c.ty.is_vector()))
    }

    /// All operands, in a stable order.
    pub fn operands(&self) -> Vec<&Operand> {
        match &self.kind {
            InstKind::Bin { lhs, rhs, .. }
            | InstKind::ICmp { lhs, rhs, .. }
            | InstKind::FCmp { lhs, rhs, .. } => vec![lhs, rhs],
            InstKind::Select {
                cond,
                on_true,
                on_false,
            } => vec![cond, on_true, on_false],
            InstKind::Cast { val, .. } => vec![val],
            InstKind::Alloca { count, .. } => vec![count],
            InstKind::Load { ptr } => vec![ptr],
            InstKind::Store { val, ptr } => vec![val, ptr],
            InstKind::Gep { base, index, .. } => vec![base, index],
            InstKind::ExtractElement { vec, idx } => vec![vec, idx],
            InstKind::InsertElement { vec, elt, idx } => vec![vec, elt, idx],
            InstKind::ShuffleVector { a, b, .. } => vec![a, b],
            InstKind::Phi { incomings } => incomings.iter().map(|(_, op)| op).collect(),
            InstKind::Call { args, .. } => args.iter().collect(),
        }
    }

    /// Visit every operand mutably (used by use-rewriting passes).
    pub fn for_each_operand_mut(&mut self, mut f: impl FnMut(&mut Operand)) {
        match &mut self.kind {
            InstKind::Bin { lhs, rhs, .. }
            | InstKind::ICmp { lhs, rhs, .. }
            | InstKind::FCmp { lhs, rhs, .. } => {
                f(lhs);
                f(rhs);
            }
            InstKind::Select {
                cond,
                on_true,
                on_false,
            } => {
                f(cond);
                f(on_true);
                f(on_false);
            }
            InstKind::Cast { val, .. } => f(val),
            InstKind::Alloca { count, .. } => f(count),
            InstKind::Load { ptr } => f(ptr),
            InstKind::Store { val, ptr } => {
                f(val);
                f(ptr);
            }
            InstKind::Gep { base, index, .. } => {
                f(base);
                f(index);
            }
            InstKind::ExtractElement { vec, idx } => {
                f(vec);
                f(idx);
            }
            InstKind::InsertElement { vec, elt, idx } => {
                f(vec);
                f(elt);
                f(idx);
            }
            InstKind::ShuffleVector { a, b, .. } => {
                f(a);
                f(b);
            }
            InstKind::Phi { incomings } => {
                for (_, op) in incomings {
                    f(op);
                }
            }
            InstKind::Call { args, .. } => {
                for a in args {
                    f(a);
                }
            }
        }
    }

    pub fn is_phi(&self) -> bool {
        matches!(self.kind, InstKind::Phi { .. })
    }

    pub fn is_gep(&self) -> bool {
        matches!(self.kind, InstKind::Gep { .. })
    }

    pub fn is_store(&self) -> bool {
        matches!(self.kind, InstKind::Store { .. })
    }

    pub fn is_call(&self) -> bool {
        matches!(self.kind, InstKind::Call { .. })
    }

    /// Operand at position `ix` in [`Inst::operands`] order.
    pub fn operand_at(&self, ix: usize) -> Option<&Operand> {
        self.operands().into_iter().nth(ix)
    }

    /// Replace the operand at position `ix` (same order as
    /// [`Inst::operands`]). Returns false if out of range.
    pub fn set_operand_at(&mut self, ix: usize, new: Operand) -> bool {
        let mut k = 0;
        let mut done = false;
        self.for_each_operand_mut(|op| {
            if k == ix {
                *op = new.clone();
                done = true;
            }
            k += 1;
        });
        done
    }

    /// Mnemonic of this instruction's opcode (for profiles and reports).
    pub fn opcode(&self) -> &'static str {
        match &self.kind {
            InstKind::Bin { op, .. } => op.mnemonic(),
            InstKind::ICmp { .. } => "icmp",
            InstKind::FCmp { .. } => "fcmp",
            InstKind::Select { .. } => "select",
            InstKind::Cast { op, .. } => op.mnemonic(),
            InstKind::Alloca { .. } => "alloca",
            InstKind::Load { .. } => "load",
            InstKind::Store { .. } => "store",
            InstKind::Gep { .. } => "getelementptr",
            InstKind::ExtractElement { .. } => "extractelement",
            InstKind::InsertElement { .. } => "insertelement",
            InstKind::ShuffleVector { .. } => "shufflevector",
            InstKind::Phi { .. } => "phi",
            InstKind::Call { .. } => "call",
        }
    }

    /// Callee name, if this is a call.
    pub fn callee(&self) -> Option<&str> {
        match &self.kind {
            InstKind::Call { callee, .. } => Some(callee.as_str()),
            _ => None,
        }
    }
}

/// Block terminators.
#[derive(Debug, Clone, PartialEq)]
pub enum Terminator {
    Br(BlockId),
    CondBr {
        cond: Operand,
        on_true: BlockId,
        on_false: BlockId,
    },
    Ret(Option<Operand>),
    Unreachable,
}

impl Terminator {
    /// Successor blocks.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Br(b) => vec![*b],
            Terminator::CondBr {
                on_true, on_false, ..
            } => vec![*on_true, *on_false],
            Terminator::Ret(_) | Terminator::Unreachable => vec![],
        }
    }

    pub fn operands(&self) -> Vec<&Operand> {
        match self {
            Terminator::CondBr { cond, .. } => vec![cond],
            Terminator::Ret(Some(op)) => vec![op],
            _ => vec![],
        }
    }

    pub fn for_each_operand_mut(&mut self, mut f: impl FnMut(&mut Operand)) {
        match self {
            Terminator::CondBr { cond, .. } => f(cond),
            Terminator::Ret(Some(op)) => f(op),
            _ => {}
        }
    }

    /// True for terminators the site classifier counts as "control-flow
    /// instructions" (paper §II-C): only branches whose direction depends on
    /// a data value.
    pub fn is_conditional(&self) -> bool {
        matches!(self, Terminator::CondBr { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constant::Constant;

    #[test]
    fn binop_mnemonic_roundtrip() {
        for op in [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::SDiv,
            BinOp::UDiv,
            BinOp::SRem,
            BinOp::URem,
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
            BinOp::Shl,
            BinOp::LShr,
            BinOp::AShr,
            BinOp::FAdd,
            BinOp::FSub,
            BinOp::FMul,
            BinOp::FDiv,
            BinOp::FRem,
        ] {
            assert_eq!(BinOp::from_mnemonic(op.mnemonic()), Some(op));
        }
        assert_eq!(BinOp::from_mnemonic("bogus"), None);
    }

    #[test]
    fn icmp_fcmp_cast_roundtrip() {
        for p in [
            ICmpPred::Eq,
            ICmpPred::Ne,
            ICmpPred::Slt,
            ICmpPred::Sle,
            ICmpPred::Sgt,
            ICmpPred::Sge,
            ICmpPred::Ult,
            ICmpPred::Ule,
            ICmpPred::Ugt,
            ICmpPred::Uge,
        ] {
            assert_eq!(ICmpPred::from_mnemonic(p.mnemonic()), Some(p));
        }
        for p in [
            FCmpPred::Oeq,
            FCmpPred::One,
            FCmpPred::Olt,
            FCmpPred::Ole,
            FCmpPred::Ogt,
            FCmpPred::Oge,
            FCmpPred::Ord,
            FCmpPred::Uno,
            FCmpPred::Ueq,
            FCmpPred::Une,
        ] {
            assert_eq!(FCmpPred::from_mnemonic(p.mnemonic()), Some(p));
        }
        for c in [
            CastOp::Trunc,
            CastOp::ZExt,
            CastOp::SExt,
            CastOp::FpToSi,
            CastOp::SiToFp,
            CastOp::FpExt,
            CastOp::FpTrunc,
            CastOp::Bitcast,
            CastOp::PtrToInt,
            CastOp::IntToPtr,
        ] {
            assert_eq!(CastOp::from_mnemonic(c.mnemonic()), Some(c));
        }
    }

    #[test]
    fn operand_accessors() {
        let v = Operand::Value(ValueId(3));
        assert_eq!(v.value(), Some(ValueId(3)));
        assert!(v.constant().is_none());
        let c = Operand::Const(Constant::i32(5));
        assert!(c.value().is_none());
        assert_eq!(c.constant().unwrap().as_i64(), Some(5));
    }

    #[test]
    fn store_has_two_operands_in_order() {
        let st = Inst {
            kind: InstKind::Store {
                val: Constant::i32(1).into(),
                ptr: Operand::Value(ValueId(0)),
            },
            ty: Type::Void,
            result: None,
        };
        let ops = st.operands();
        assert_eq!(ops.len(), 2);
        assert!(ops[0].constant().is_some());
        assert_eq!(ops[1].value(), Some(ValueId(0)));
        assert!(st.is_store());
    }

    #[test]
    fn terminator_successors() {
        let t = Terminator::CondBr {
            cond: Operand::Const(Constant::bool(true)),
            on_true: BlockId(1),
            on_false: BlockId(2),
        };
        assert_eq!(t.successors(), vec![BlockId(1), BlockId(2)]);
        assert!(t.is_conditional());
        assert!(!Terminator::Br(BlockId(0)).is_conditional());
        assert!(Terminator::Ret(None).successors().is_empty());
    }

    #[test]
    fn for_each_operand_mut_visits_all() {
        let mut inst = Inst {
            kind: InstKind::Select {
                cond: Operand::Value(ValueId(0)),
                on_true: Operand::Value(ValueId(1)),
                on_false: Operand::Value(ValueId(2)),
            },
            ty: Type::I32,
            result: Some(ValueId(3)),
        };
        let mut seen = 0;
        inst.for_each_operand_mut(|_| seen += 1);
        assert_eq!(seen, 3);
    }
}
