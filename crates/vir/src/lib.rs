//! # VIR — a vector-aware, LLVM-like SSA intermediate representation
//!
//! VIR is the IR substrate of this repository's reproduction of *"Towards
//! Resiliency Evaluation of Vector Programs"* (VULFI). It models the slice
//! of LLVM 3.2 the paper exercises:
//!
//! - typed SSA with scalar and **first-class vector types**,
//! - the vector register instructions the paper defines in §II-A
//!   (`extractelement`, `insertelement`, `shufflevector`),
//! - address calculation via a simplified `getelementptr`,
//! - **masked x86-style intrinsics** (`llvm.x86.avx.maskload.ps.256`,
//!   `llvm.x86.avx.maskstore.ps.256`, and SSE4 analogues) with a registry
//!   that records which argument carries the execution mask (§II-D),
//! - a textual printer and parser that round-trip,
//! - a verifier (types, CFG structure, SSA dominance),
//! - analyses: CFG, dominators, use-def, and the **forward-slice fault-site
//!   classifier** of §II-C (pure-data / control / address).
//!
//! Modules that *consume* VIR: [`vexec`](https://docs.rs/vexec) interprets
//! it, `spmdc` generates it from SPMD-C sources, and `vulfi` instruments it
//! with fault-injection callbacks.
//!
//! ## Example
//!
//! ```
//! use vir::builder::FuncBuilder;
//! use vir::{BinOp, Constant, Module, Type};
//!
//! let mut b = FuncBuilder::new("axpy1", vec![
//!     ("a".into(), Type::F32),
//!     ("x".into(), Type::F32),
//!     ("y".into(), Type::F32),
//! ], Type::F32);
//! let entry = b.add_block("entry");
//! b.position_at(entry);
//! let ax = b.bin(BinOp::FMul, b.param(0), b.param(1), "ax");
//! let r = b.bin(BinOp::FAdd, ax, b.param(2), "r");
//! b.ret(Some(r));
//!
//! let mut m = Module::new("example");
//! m.add_function(b.finish());
//! vir::verify::verify_module(&m).unwrap();
//! println!("{}", vir::printer::print_module(&m));
//! ```

pub mod analysis;
pub mod builder;
pub mod constant;
pub mod function;
pub mod inst;
pub mod intrinsics;
pub mod parser;
pub mod printer;
pub mod transform;
pub mod types;
pub mod verify;

pub use analysis::{SiteCategory, SiteFlags};
pub use constant::{ConstData, Constant};
pub use function::{Block, FuncDecl, Function, Module, ValueDef, ValueInfo};
pub use inst::{
    BinOp, BlockId, CastOp, FCmpPred, ICmpPred, Inst, InstId, InstKind, Operand, Terminator,
    ValueId,
};
pub use types::{ScalarTy, Type};
