//! Module verifier: structural and type rules plus SSA dominance.

use std::collections::HashSet;

use crate::analysis::{Cfg, DomTree};
use crate::function::{Function, Module, ValueDef};
use crate::inst::{BlockId, CastOp, InstId, InstKind, Operand, Terminator, ValueId};
use crate::intrinsics;
use crate::types::Type;

/// A verification failure, with enough context to locate the offender.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifyError {
    pub function: String,
    pub block: Option<String>,
    pub msg: String,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.block {
            Some(b) => write!(f, "in @{}, block %{}: {}", self.function, b, self.msg),
            None => write!(f, "in @{}: {}", self.function, self.msg),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verify a whole module; returns the first error found.
pub fn verify_module(m: &Module) -> Result<(), VerifyError> {
    let mut seen = HashSet::new();
    for f in &m.functions {
        if !seen.insert(f.name.as_str()) {
            return Err(VerifyError {
                function: f.name.clone(),
                block: None,
                msg: "duplicate function definition".into(),
            });
        }
        verify_function(m, f)?;
    }
    Ok(())
}

/// Verify a single function within its module context.
pub fn verify_function(m: &Module, f: &Function) -> Result<(), VerifyError> {
    let fail = |block: Option<BlockId>, msg: String| -> VerifyError {
        VerifyError {
            function: f.name.clone(),
            block: block.map(|b| f.block(b).name.clone()),
            msg,
        }
    };

    if f.blocks.is_empty() {
        return Err(fail(None, "function has no blocks".into()));
    }

    // Every instruction placed exactly once; result defs consistent.
    let mut placed: Vec<Option<BlockId>> = vec![None; f.insts.len()];
    for (b, iid) in f.placed_insts() {
        if iid.index() >= f.insts.len() {
            return Err(fail(Some(b), format!("dangling instruction id {iid:?}")));
        }
        if let Some(prev) = placed[iid.index()] {
            return Err(fail(
                Some(b),
                format!(
                    "instruction placed twice (blocks %{} and %{})",
                    f.block(prev).name,
                    f.block(b).name
                ),
            ));
        }
        placed[iid.index()] = Some(b);
    }

    // Values are defined by what they claim.
    for (vi, info) in f.values.iter().enumerate() {
        match info.def {
            ValueDef::Param(p) => {
                if p as usize >= f.params.len() {
                    return Err(fail(None, format!("value v{vi} claims bad param {p}")));
                }
            }
            ValueDef::Inst(iid) => {
                if iid.index() >= f.insts.len() {
                    return Err(fail(None, format!("value v{vi} claims bad inst")));
                }
                if f.inst(iid).result != Some(ValueId(vi as u32)) {
                    return Err(fail(
                        None,
                        format!("value v{vi} not the result of its defining inst"),
                    ));
                }
            }
        }
    }

    let cfg = Cfg::build(f);
    let dom = DomTree::build(&cfg, f.entry());

    // Per-block checks.
    for (bi, block) in f.blocks.iter().enumerate() {
        let bid = BlockId(bi as u32);
        for s in block.term.successors() {
            if s.index() >= f.blocks.len() {
                return Err(fail(Some(bid), "branch to nonexistent block".into()));
            }
        }
        match &block.term {
            Terminator::CondBr { cond, .. } => {
                let t = f.operand_type(cond);
                if t != Type::I1 {
                    return Err(fail(Some(bid), format!("condbr condition has type {t}")));
                }
            }
            Terminator::Ret(Some(op)) => {
                let t = f.operand_type(op);
                if t != f.ret {
                    return Err(fail(
                        Some(bid),
                        format!("ret type {t} does not match function type {}", f.ret),
                    ));
                }
            }
            Terminator::Ret(None) if !f.ret.is_void() => {
                return Err(fail(Some(bid), "ret void in non-void function".into()));
            }
            _ => {}
        }

        // Phis must be a prefix of the block and match predecessors.
        let mut past_phis = false;
        for &iid in &block.insts {
            let inst = f.inst(iid);
            if inst.is_phi() {
                if past_phis {
                    return Err(fail(Some(bid), "phi after non-phi instruction".into()));
                }
                if bid == f.entry() {
                    return Err(fail(Some(bid), "phi in entry block".into()));
                }
                if let InstKind::Phi { incomings } = &inst.kind {
                    if dom.is_reachable(bid) {
                        let preds: HashSet<_> = cfg.preds(bid).iter().copied().collect();
                        let inc: HashSet<_> = incomings.iter().map(|(b, _)| *b).collect();
                        if preds != inc {
                            return Err(fail(
                                Some(bid),
                                format!(
                                    "phi incoming blocks {:?} do not match predecessors {:?}",
                                    inc.iter().map(|b| &f.block(*b).name).collect::<Vec<_>>(),
                                    preds.iter().map(|b| &f.block(*b).name).collect::<Vec<_>>()
                                ),
                            ));
                        }
                    }
                    for (_, op) in incomings {
                        let t = f.operand_type(op);
                        if t != inst.ty {
                            return Err(fail(Some(bid), "phi incoming type mismatch".into()));
                        }
                    }
                }
            } else {
                past_phis = true;
            }
            check_inst_types(m, f, iid).map_err(|msg| fail(Some(bid), msg))?;
        }
    }

    // SSA dominance: each use must be dominated by its definition.
    check_dominance(f, &cfg, &dom).map_err(|(b, msg)| fail(b, msg))?;

    Ok(())
}

fn check_inst_types(m: &Module, f: &Function, iid: InstId) -> Result<(), String> {
    let inst = f.inst(iid);
    let t = |op: &Operand| f.operand_type(op);
    match &inst.kind {
        InstKind::Bin { op, lhs, rhs } => {
            let (a, b) = (t(lhs), t(rhs));
            if a != b {
                return Err(format!("binop operand types differ: {a} vs {b}"));
            }
            if a != inst.ty {
                return Err("binop result type differs from operands".into());
            }
            if op.is_float() && !a.is_float() {
                return Err(format!("float op {} on non-float type {a}", op.mnemonic()));
            }
            if op.is_int() && !a.is_int() {
                return Err(format!("int op {} on non-int type {a}", op.mnemonic()));
            }
        }
        InstKind::ICmp { lhs, rhs, .. } => {
            let (a, b) = (t(lhs), t(rhs));
            if a != b {
                return Err("icmp operand types differ".into());
            }
            if !(a.is_int() || a.is_ptr()) {
                return Err(format!("icmp on non-integer type {a}"));
            }
            if inst.ty != a.mask_type() {
                return Err("icmp result must be the operand's mask type".into());
            }
        }
        InstKind::FCmp { lhs, rhs, .. } => {
            let (a, b) = (t(lhs), t(rhs));
            if a != b {
                return Err("fcmp operand types differ".into());
            }
            if !a.is_float() {
                return Err(format!("fcmp on non-float type {a}"));
            }
            if inst.ty != a.mask_type() {
                return Err("fcmp result must be the operand's mask type".into());
            }
        }
        InstKind::Select {
            cond,
            on_true,
            on_false,
        } => {
            let (ct, tt, ft) = (t(cond), t(on_true), t(on_false));
            if tt != ft || tt != inst.ty {
                return Err("select arm types must match the result".into());
            }
            match ct {
                Type::Scalar(crate::types::ScalarTy::I1) => {}
                Type::Vector(crate::types::ScalarTy::I1, n) => {
                    if tt.lanes() != n {
                        return Err("vector select lane mismatch".into());
                    }
                }
                _ => return Err(format!("select condition has type {ct}")),
            }
        }
        InstKind::Cast { op, val } => {
            let from = t(val);
            let to = inst.ty;
            if from.lanes() != to.lanes() {
                return Err("cast cannot change lane count".into());
            }
            let (fe, te) = match (from.elem(), to.elem()) {
                (Some(a), Some(b)) => (a, b),
                _ => return Err("cast on void".into()),
            };
            let ok = match op {
                CastOp::Trunc => fe.is_int() && te.is_int() && fe.bits() > te.bits(),
                CastOp::ZExt | CastOp::SExt => fe.is_int() && te.is_int() && fe.bits() < te.bits(),
                CastOp::FpToSi => fe.is_float() && te.is_int(),
                CastOp::SiToFp => fe.is_int() && te.is_float(),
                CastOp::FpExt => fe.is_float() && te.is_float() && fe.bits() < te.bits(),
                CastOp::FpTrunc => fe.is_float() && te.is_float() && fe.bits() > te.bits(),
                CastOp::Bitcast => fe.bits() == te.bits(),
                CastOp::PtrToInt => fe == crate::types::ScalarTy::Ptr && te.is_int(),
                CastOp::IntToPtr => fe.is_int() && te == crate::types::ScalarTy::Ptr,
            };
            if !ok {
                return Err(format!("invalid {} from {from} to {to}", op.mnemonic()));
            }
        }
        InstKind::Alloca { count, .. } => {
            if !t(count).is_int() || t(count).is_vector() {
                return Err("alloca count must be a scalar integer".into());
            }
            if inst.ty != Type::PTR {
                return Err("alloca must produce ptr".into());
            }
        }
        InstKind::Load { ptr } => {
            if t(ptr) != Type::PTR {
                return Err(format!("load pointer has type {}", t(ptr)));
            }
            if inst.ty.is_void() {
                return Err("load of void".into());
            }
        }
        InstKind::Store { val, ptr } => {
            if t(ptr) != Type::PTR {
                return Err(format!("store pointer has type {}", t(ptr)));
            }
            if t(val).is_void() {
                return Err("store of void".into());
            }
        }
        InstKind::Gep { base, index, elem } => {
            if t(base) != Type::PTR {
                return Err(format!("gep base has type {}", t(base)));
            }
            if !t(index).is_int() || t(index).is_vector() {
                return Err("gep index must be a scalar integer".into());
            }
            if elem.size_bytes() == 0 {
                return Err("gep element type has zero size".into());
            }
            if inst.ty != Type::PTR {
                return Err("gep must produce ptr".into());
            }
        }
        InstKind::ExtractElement { vec, idx } => {
            let vt = t(vec);
            if !vt.is_vector() {
                return Err("extractelement on non-vector".into());
            }
            if !t(idx).is_int() || t(idx).is_vector() {
                return Err("extractelement index must be a scalar integer".into());
            }
            if inst.ty != Type::Scalar(vt.elem().unwrap()) {
                return Err("extractelement result type mismatch".into());
            }
        }
        InstKind::InsertElement { vec, elt, idx } => {
            let vt = t(vec);
            if !vt.is_vector() {
                return Err("insertelement on non-vector".into());
            }
            if t(elt) != Type::Scalar(vt.elem().unwrap()) {
                return Err("insertelement element type mismatch".into());
            }
            if !t(idx).is_int() || t(idx).is_vector() {
                return Err("insertelement index must be a scalar integer".into());
            }
            if inst.ty != vt {
                return Err("insertelement result type mismatch".into());
            }
        }
        InstKind::ShuffleVector { a, b, mask } => {
            let (at, bt) = (t(a), t(b));
            if !at.is_vector() || at != bt {
                return Err("shufflevector operands must be vectors of one type".into());
            }
            let in_lanes = at.lanes() as i32;
            for &mi in mask {
                if mi >= 2 * in_lanes || mi < -1 {
                    return Err(format!("shuffle index {mi} out of range"));
                }
            }
            let expect = Type::vec(at.elem().unwrap(), mask.len() as u32);
            if inst.ty != expect {
                return Err("shufflevector result type mismatch".into());
            }
        }
        InstKind::Phi { incomings } => {
            if incomings.is_empty() {
                return Err("phi with no incomings".into());
            }
        }
        InstKind::Call { callee, args } => {
            // Intrinsics: check against the registry.
            if let Some(intr) = intrinsics::parse(callee) {
                if intr.result_type() != inst.ty {
                    return Err(format!(
                        "intrinsic @{callee} returns {}, call typed {}",
                        intr.result_type(),
                        inst.ty
                    ));
                }
                return Ok(());
            }
            if callee.starts_with("llvm.") {
                return Err(format!("unknown intrinsic @{callee}"));
            }
            // Defined functions: exact signature.
            if let Some(def) = m.function(callee) {
                if def.ret != inst.ty {
                    return Err(format!("call result type mismatch for @{callee}"));
                }
                if def.params.len() != args.len() {
                    return Err(format!("call to @{callee} with wrong arity"));
                }
                for ((_, pt), a) in def.params.iter().zip(args) {
                    if *pt != t(a) {
                        return Err(format!("call to @{callee} with wrong argument type"));
                    }
                }
                return Ok(());
            }
            // Declarations: prefix match, vararg-lenient.
            if let Some(d) = m.decl(callee) {
                if d.ret != inst.ty {
                    return Err(format!("call result type mismatch for @{callee}"));
                }
                if args.len() < d.params.len() || (!d.vararg && args.len() > d.params.len()) {
                    return Err(format!("call to @{callee} with wrong arity"));
                }
                for (pt, a) in d.params.iter().zip(args) {
                    if *pt != t(a) {
                        return Err(format!("call to @{callee} with wrong argument type"));
                    }
                }
                return Ok(());
            }
            return Err(format!("call to undeclared function @{callee}"));
        }
    }
    Ok(())
}

/// Dominance: a use of value `v` in instruction `u` is legal iff the
/// definition of `v` dominates `u` (for phi incomings: dominates the end of
/// the incoming block). Only checked for reachable blocks.
fn check_dominance(
    f: &Function,
    cfg: &Cfg,
    dom: &DomTree,
) -> Result<(), (Option<BlockId>, String)> {
    let _ = cfg;
    // Location of every instruction: (block, index within block).
    let mut loc = vec![None; f.insts.len()];
    for (bi, b) in f.blocks.iter().enumerate() {
        for (k, &iid) in b.insts.iter().enumerate() {
            loc[iid.index()] = Some((BlockId(bi as u32), k));
        }
    }
    let def_site = |v: ValueId| -> Option<(BlockId, usize)> {
        match f.value(v).def {
            ValueDef::Param(_) => None, // params dominate everything
            ValueDef::Inst(iid) => loc[iid.index()],
        }
    };
    let dominates_use =
        |v: ValueId, ub: BlockId, ui: usize, use_is_phi_from: Option<BlockId>| -> bool {
            let Some((db, di)) = def_site(v) else {
                return true;
            };
            match use_is_phi_from {
                Some(inc) => {
                    // Def must dominate the *end* of the incoming block.
                    db == inc || dom.dominates(db, inc)
                }
                None => {
                    if db == ub {
                        di < ui
                    } else {
                        dom.dominates(db, ub)
                    }
                }
            }
        };

    for (bi, b) in f.blocks.iter().enumerate() {
        let bid = BlockId(bi as u32);
        if !dom.is_reachable(bid) {
            continue;
        }
        for (k, &iid) in b.insts.iter().enumerate() {
            let inst = f.inst(iid);
            if let InstKind::Phi { incomings } = &inst.kind {
                for (inc, op) in incomings {
                    if let Some(v) = op.value() {
                        if dom.is_reachable(*inc) && !dominates_use(v, bid, k, Some(*inc)) {
                            return Err((
                                Some(bid),
                                format!(
                                    "phi use of %{} not dominated by its definition",
                                    f.value_display_name(v)
                                ),
                            ));
                        }
                    }
                }
            } else {
                for op in inst.operands() {
                    if let Some(v) = op.value() {
                        if !dominates_use(v, bid, k, None) {
                            return Err((
                                Some(bid),
                                format!(
                                    "use of %{} not dominated by its definition",
                                    f.value_display_name(v)
                                ),
                            ));
                        }
                    }
                }
            }
        }
        for op in b.term.operands() {
            if let Some(v) = op.value() {
                if !dominates_use(v, bid, b.insts.len(), None) {
                    return Err((
                        Some(bid),
                        format!(
                            "terminator use of %{} not dominated by its definition",
                            f.value_display_name(v)
                        ),
                    ));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::constant::Constant;
    use crate::inst::BinOp;
    use crate::parser::parse_module;

    fn module_of(f: Function) -> Module {
        let mut m = Module::new("t");
        m.add_function(f);
        m
    }

    #[test]
    fn accepts_valid_loop() {
        let src = r#"
define i32 @sum(i32 %n) {
entry:
  br label %header
header:
  %i = phi i32 [ 0, %entry ], [ %i2, %body ]
  %acc = phi i32 [ 0, %entry ], [ %acc2, %body ]
  %cond = icmp slt i32 %i, %n
  br i1 %cond, label %body, label %exit
body:
  %acc2 = add i32 %acc, %i
  %i2 = add i32 %i, 1
  br label %header
exit:
  ret i32 %acc
}
"#;
        let m = parse_module(src).unwrap();
        verify_module(&m).unwrap();
    }

    #[test]
    fn rejects_type_mismatched_binop() {
        let mut b = FuncBuilder::new("f", vec![("x".into(), Type::I32)], Type::I32);
        let e = b.add_block("entry");
        b.position_at(e);
        let bad = b.bin(BinOp::Add, b.param(0), Constant::i64(1).into(), "bad");
        b.ret(Some(bad));
        let m = module_of(b.finish());
        let err = verify_module(&m).unwrap_err();
        assert!(err.msg.contains("binop operand types differ"), "{err}");
    }

    #[test]
    fn rejects_float_op_on_ints() {
        let mut b = FuncBuilder::new("f", vec![("x".into(), Type::I32)], Type::I32);
        let e = b.add_block("entry");
        b.position_at(e);
        let bad = b.bin(BinOp::FAdd, b.param(0), Constant::i32(1).into(), "bad");
        b.ret(Some(bad));
        let err = verify_module(&module_of(b.finish())).unwrap_err();
        assert!(err.msg.contains("float op"), "{err}");
    }

    #[test]
    fn rejects_use_before_def() {
        // %y used in entry but defined in a later block that doesn't dominate.
        let src = r#"
define i32 @f(i32 %x) {
entry:
  %z = add i32 %y, 1
  br label %later
later:
  %y = add i32 %x, 1
  ret i32 %z
}
"#;
        let m = parse_module(src).unwrap();
        let err = verify_module(&m).unwrap_err();
        assert!(err.msg.contains("not dominated"), "{err}");
    }

    #[test]
    fn rejects_phi_with_wrong_preds() {
        let src = r#"
define i32 @f(i32 %x) {
entry:
  br label %a
a:
  %p = phi i32 [ 0, %entry ], [ 1, %a ]
  ret i32 %p
}
"#;
        let m = parse_module(src).unwrap();
        let err = verify_module(&m).unwrap_err();
        assert!(err.msg.contains("incoming blocks"), "{err}");
    }

    #[test]
    fn rejects_call_to_undeclared() {
        let mut b = FuncBuilder::new("f", vec![], Type::Void);
        let e = b.add_block("entry");
        b.position_at(e);
        b.call("missing", vec![], Type::Void, "");
        b.ret(None);
        let err = verify_module(&module_of(b.finish())).unwrap_err();
        assert!(err.msg.contains("undeclared"), "{err}");
    }

    #[test]
    fn accepts_known_intrinsic_and_rejects_unknown() {
        let vty = Type::vec(crate::types::ScalarTy::F32, 8);
        let mut b = FuncBuilder::new(
            "f",
            vec![("p".into(), Type::PTR), ("m".into(), vty)],
            Type::Void,
        );
        let e = b.add_block("entry");
        b.position_at(e);
        b.call(
            "llvm.x86.avx.maskload.ps.256",
            vec![b.param(0), b.param(1)],
            vty,
            "v",
        );
        b.ret(None);
        verify_module(&module_of(b.finish())).unwrap();

        let mut b = FuncBuilder::new("g", vec![], Type::Void);
        let e = b.add_block("entry");
        b.position_at(e);
        b.call("llvm.nonsense.xyz", vec![], Type::Void, "");
        b.ret(None);
        let err = verify_module(&module_of(b.finish())).unwrap_err();
        assert!(err.msg.contains("unknown intrinsic"), "{err}");
    }

    #[test]
    fn rejects_vararg_violations_and_accepts_valid() {
        let mut m = Module::new("t");
        m.declare(crate::function::FuncDecl {
            name: "vulfi.inject.f32".into(),
            ret: Type::F32,
            params: vec![Type::F32],
            vararg: true,
        });
        let mut b = FuncBuilder::new("f", vec![("x".into(), Type::F32)], Type::F32);
        let e = b.add_block("entry");
        b.position_at(e);
        let r = b.call(
            "vulfi.inject.f32",
            vec![b.param(0), Constant::i64(3).into()],
            Type::F32,
            "r",
        );
        b.ret(Some(r));
        m.add_function(b.finish());
        verify_module(&m).unwrap();
    }

    #[test]
    fn rejects_bad_condbr_type() {
        let mut b = FuncBuilder::new("f", vec![("x".into(), Type::I32)], Type::Void);
        let e = b.add_block("entry");
        let t = b.add_block("t");
        b.position_at(e);
        b.cond_br(b.param(0), t, t);
        b.position_at(t);
        b.ret(None);
        let err = verify_module(&module_of(b.finish())).unwrap_err();
        assert!(err.msg.contains("condbr condition"), "{err}");
    }

    #[test]
    fn rejects_entry_phi() {
        let mut b = FuncBuilder::new("f", vec![], Type::Void);
        let e = b.add_block("entry");
        b.position_at(e);
        let p = b.phi(Type::I32, "p");
        b.add_incoming(&p, e, Constant::i32(0).into());
        b.ret(None);
        let err = verify_module(&module_of(b.finish())).unwrap_err();
        assert!(err.msg.contains("phi in entry"), "{err}");
    }

    #[test]
    fn icmp_result_type_checked() {
        let src = r#"
define i1 @f(i32 %x) {
entry:
  %c = icmp eq i32 %x, 0
  ret i1 %c
}
"#;
        verify_module(&parse_module(src).unwrap()).unwrap();
    }

    #[test]
    fn vector_select_lane_mismatch_rejected() {
        let v8 = Type::vec(crate::types::ScalarTy::F32, 8);
        let m4 = Type::vec(crate::types::ScalarTy::I1, 4);
        let mut b = FuncBuilder::new(
            "f",
            vec![("m".into(), m4), ("a".into(), v8), ("b".into(), v8)],
            v8,
        );
        let e = b.add_block("entry");
        b.position_at(e);
        let s = b.select(b.param(0), b.param(1), b.param(2), "s");
        b.ret(Some(s));
        let err = verify_module(&module_of(b.finish())).unwrap_err();
        assert!(err.msg.contains("lane mismatch"), "{err}");
    }

    #[test]
    fn use_in_same_block_order_checked() {
        let cond_src = r#"
define i32 @f(i32 %x) {
entry:
  %a = add i32 %b, 1
  %b = add i32 %x, 1
  ret i32 %a
}
"#;
        let m = parse_module(cond_src).unwrap();
        let err = verify_module(&m).unwrap_err();
        assert!(err.msg.contains("not dominated"), "{err}");
    }

    #[test]
    fn valid_icmp_on_vectors() {
        let src = r#"
define <4 x i1> @f(<4 x i32> %a, <4 x i32> %b) {
entry:
  %c = icmp slt <4 x i32> %a, %b
  ret <4 x i1> %c
}
"#;
        verify_module(&parse_module(src).unwrap()).unwrap();
    }

    #[test]
    fn gep_checks() {
        let mut b = FuncBuilder::new("f", vec![("x".into(), Type::I32)], Type::PTR);
        let e = b.add_block("entry");
        b.position_at(e);
        // base is not a pointer
        let g = b.gep(Type::F32, b.param(0), Constant::i32(0).into(), "g");
        b.ret(Some(g));
        let err = verify_module(&module_of(b.finish())).unwrap_err();
        assert!(err.msg.contains("gep base"), "{err}");
    }

    #[test]
    fn trunc_must_shrink() {
        let mut b = FuncBuilder::new("f", vec![("x".into(), Type::I32)], Type::I64);
        let e = b.add_block("entry");
        b.position_at(e);
        let c = b.cast(crate::inst::CastOp::Trunc, b.param(0), Type::I64, "c");
        b.ret(Some(c));
        let err = verify_module(&module_of(b.finish())).unwrap_err();
        assert!(err.msg.contains("invalid trunc"), "{err}");
    }

    #[test]
    fn good_function_with_everything_passes() {
        let src = r#"
declare float @vulfi.inject.f32(float, float, ...)

define float @k(ptr %a, i32 %n) {
entry:
  %cmp = icmp sgt i32 %n, 0
  br i1 %cmp, label %loop, label %exit
loop:
  %i = phi i32 [ 0, %entry ], [ %i2, %loop ]
  %acc = phi float [ 0.0, %entry ], [ %acc2, %loop ]
  %p = getelementptr float, ptr %a, i32 %i
  %v = load float, ptr %p
  %vi = call float @vulfi.inject.f32(float %v, float 1.0, i64 0)
  %acc2 = fadd float %acc, %vi
  %i2 = add i32 %i, 1
  %c = icmp slt i32 %i2, %n
  br i1 %c, label %loop, label %exit
exit:
  %r = phi float [ 0.0, %entry ], [ %acc2, %loop ]
  ret float %r
}
"#;
        let m = parse_module(src).unwrap();
        verify_module(&m).unwrap();
    }
}
