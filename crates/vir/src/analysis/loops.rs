//! Natural-loop analysis.
//!
//! Identifies back edges (edges whose target dominates their source) and
//! the natural loop of each: the set of blocks that can reach the edge's
//! source without passing through its header. The detector pass's
//! structural foreach matcher is validated against this analysis — every
//! matched `foreach_full_body` must be a natural-loop header.

use crate::analysis::cfg::Cfg;
use crate::analysis::dom::DomTree;
use crate::function::Function;
use crate::inst::BlockId;

/// A natural loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NaturalLoop {
    pub header: BlockId,
    /// The back edge's source (the latch).
    pub latch: BlockId,
    /// All blocks in the loop body, header and latch included (sorted).
    pub blocks: Vec<BlockId>,
}

impl NaturalLoop {
    pub fn contains(&self, b: BlockId) -> bool {
        self.blocks.binary_search(&b).is_ok()
    }

    /// Loop depth helper: does this loop strictly contain another?
    pub fn contains_loop(&self, other: &NaturalLoop) -> bool {
        other.header != self.header && self.contains(other.header)
    }
}

/// Find every natural loop of `f` (one per back edge), sorted by header.
pub fn find_loops(f: &Function) -> Vec<NaturalLoop> {
    let cfg = Cfg::build(f);
    let dom = DomTree::build(&cfg, f.entry());
    let mut loops = Vec::new();
    for (bi, block) in f.blocks.iter().enumerate() {
        let src = BlockId(bi as u32);
        if !dom.is_reachable(src) {
            continue;
        }
        for target in block.term.successors() {
            if dom.dominates(target, src) {
                loops.push(natural_loop(&cfg, target, src));
            }
        }
    }
    loops.sort_by_key(|l| (l.header, l.latch));
    loops
}

/// Compute the natural loop of back edge `latch -> header`: header plus
/// every block that reaches the latch without going through the header.
fn natural_loop(cfg: &Cfg, header: BlockId, latch: BlockId) -> NaturalLoop {
    let mut in_loop = vec![false; cfg.preds.len()];
    in_loop[header.index()] = true;
    let mut stack = vec![latch];
    while let Some(b) = stack.pop() {
        if in_loop[b.index()] {
            continue;
        }
        in_loop[b.index()] = true;
        for &p in cfg.preds(b) {
            stack.push(p);
        }
    }
    let mut blocks: Vec<BlockId> = in_loop
        .iter()
        .enumerate()
        .filter(|(_, &x)| x)
        .map(|(i, _)| BlockId(i as u32))
        .collect();
    blocks.sort();
    NaturalLoop {
        header,
        latch,
        blocks,
    }
}

/// Per-block loop-nesting depth (0 = not in any loop).
pub fn loop_depths(f: &Function) -> Vec<u32> {
    let loops = find_loops(f);
    let mut depth = vec![0u32; f.blocks.len()];
    for l in &loops {
        for b in &l.blocks {
            depth[b.index()] += 1;
        }
    }
    // Multiple back edges to the same header count once.
    let mut seen_headers: Vec<BlockId> = loops.iter().map(|l| l.header).collect();
    seen_headers.sort();
    seen_headers.dedup();
    let _ = seen_headers;
    depth
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_module;

    #[test]
    fn finds_simple_loop() {
        let src = r#"
define i32 @sum(i32 %n) {
entry:
  br label %header
header:
  %i = phi i32 [ 0, %entry ], [ %i2, %body ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  %i2 = add i32 %i, 1
  br label %header
exit:
  ret i32 %i
}
"#;
        let m = parse_module(src).unwrap();
        let f = m.function("sum").unwrap();
        let loops = find_loops(f);
        assert_eq!(loops.len(), 1);
        let l = &loops[0];
        assert_eq!(f.block(l.header).name, "header");
        assert_eq!(f.block(l.latch).name, "body");
        assert_eq!(l.blocks.len(), 2);
        assert!(l.contains(l.header));
        assert!(!l.contains(f.entry()));
    }

    #[test]
    fn nested_loops_and_depths() {
        let src = r#"
define void @nest(i32 %n) {
entry:
  br label %outer
outer:
  %i = phi i32 [ 0, %entry ], [ %i2, %outer_latch ]
  br label %inner
inner:
  %j = phi i32 [ 0, %outer ], [ %j2, %inner ]
  %j2 = add i32 %j, 1
  %jc = icmp slt i32 %j2, %n
  br i1 %jc, label %inner, label %outer_latch
outer_latch:
  %i2 = add i32 %i, 1
  %ic = icmp slt i32 %i2, %n
  br i1 %ic, label %outer, label %exit
exit:
  ret void
}
"#;
        let m = parse_module(src).unwrap();
        let f = m.function("nest").unwrap();
        let loops = find_loops(f);
        assert_eq!(loops.len(), 2);
        let outer = loops
            .iter()
            .find(|l| f.block(l.header).name == "outer")
            .unwrap();
        let inner = loops
            .iter()
            .find(|l| f.block(l.header).name == "inner")
            .unwrap();
        assert!(outer.contains_loop(inner));
        assert!(!inner.contains_loop(outer));
        let depths = loop_depths(f);
        let by_name = |n: &str| depths[f.block_by_name(n).unwrap().index()];
        assert_eq!(by_name("entry"), 0);
        assert_eq!(by_name("outer"), 1);
        assert_eq!(by_name("inner"), 2);
        assert_eq!(by_name("outer_latch"), 1);
        assert_eq!(by_name("exit"), 0);
    }

    #[test]
    fn loop_free_function_has_none() {
        let src = r#"
define i32 @f(i32 %x) {
entry:
  %c = icmp sgt i32 %x, 0
  br i1 %c, label %a, label %b
a:
  ret i32 1
b:
  ret i32 0
}
"#;
        let m = parse_module(src).unwrap();
        assert!(find_loops(m.function("f").unwrap()).is_empty());
    }

    #[test]
    fn foreach_matcher_agrees_with_natural_loops() {
        // Every spmdc foreach full body must be a natural-loop header.
        let src = r#"
export void k(uniform float a[], uniform int n) {
    foreach (i = 0 ... n) {
        a[i] = a[i] + 1.0;
    }
}
"#;
        let m = spmdc_compile(src);
        let f = m.function("k").unwrap();
        let loops = find_loops(f);
        let full_body = f.block_by_name("foreach_full_body").unwrap();
        assert!(
            loops.iter().any(|l| l.header == full_body),
            "foreach_full_body must be a loop header"
        );
    }

    // Tiny local shim to avoid a dev-dependency cycle: compile via the
    // text format printed by spmdc in the detectors crate's tests instead.
    // Here we just hand-write the equivalent loop.
    fn spmdc_compile(_src: &str) -> crate::function::Module {
        let text = r#"
define void @k(ptr %a, i32 %n) {
allocas:
  %nextras = srem i32 %n, 8
  %aligned_end = sub i32 %n, %nextras
  %enter = icmp sgt i32 %aligned_end, 0
  br i1 %enter, label %foreach_full_body.lr.ph, label %foreach_reset
foreach_full_body.lr.ph:
  br label %foreach_full_body
foreach_full_body:
  %counter = phi i32 [ 0, %foreach_full_body.lr.ph ], [ %new_counter, %foreach_full_body ]
  %addr = getelementptr float, ptr %a, i32 %counter
  %v = load <8 x float>, ptr %addr
  %v2 = fadd <8 x float> %v, <float 1.0, float 1.0, float 1.0, float 1.0, float 1.0, float 1.0, float 1.0, float 1.0>
  store <8 x float> %v2, ptr %addr
  %new_counter = add i32 %counter, 8
  %keep = icmp slt i32 %new_counter, %aligned_end
  br i1 %keep, label %foreach_full_body, label %foreach_reset
foreach_reset:
  ret void
}
"#;
        crate::parser::parse_module(text).unwrap()
    }
}
