//! Per-lane demanded-bits dataflow.
//!
//! A backward may-analysis over SSA values: for every value it computes,
//! per vector lane, the set of bits that can influence an *observable
//! effect* — a store, a return value, an address computation, a branch
//! direction, or a call leaving the function. A bit outside the demanded
//! set can be flipped without changing program behaviour, which is
//! exactly the proof obligation the campaign pruner needs to discharge an
//! injection as benign without executing it.
//!
//! The transfer functions mirror `vexec`'s interpreter semantics bit for
//! bit; where the interpreter can trap, the analysis is deliberately
//! over-demanding:
//!
//! - `sdiv`/`udiv`/`srem`/`urem` trap on a zero divisor, so their
//!   operands are fully demanded even when the quotient is dead — a flip
//!   could *create* the trap.
//! - Pointers, addresses, branch conditions, `alloca` counts and every
//!   argument of an unrecognized call are fully demanded.
//! - Masked-memop *mask* arguments demand only the sign bit of each lane
//!   (the interpreter's `mask_active` test), but demand it regardless of
//!   whether the loaded value is used: enabling a disabled lane can fault
//!   on the skipped address.
//! - Shifts never trap (out-of-range amounts are defined), so a dead
//!   shift demands nothing.
//!
//! The fixed point is reached by iterating the blocks in reverse until no
//! demand set grows; all transfer functions are monotone and the lattice
//! (bit sets under union) has finite height, so termination is immediate.
//! Values in unreachable blocks keep an empty demand set: they can never
//! execute, hence never be observed.

use crate::analysis::cfg::Cfg;
use crate::constant::Constant;
use crate::function::Function;
use crate::inst::{BinOp, CastOp, Inst, InstKind, Operand, Terminator, ValueId};
use crate::intrinsics::{self, Intrinsic};

/// Result of the analysis: one demanded-bits mask per lane per value.
pub struct DemandedBits {
    lanes: Vec<Vec<u64>>,
}

/// Mask of the low `bits` bits.
fn width_mask(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// Bits `0..=highest demanded bit` — the cone carries/borrows propagate
/// through for `add`/`sub`/`mul` and left shifts.
fn low_cone(d: u64, mask: u64) -> u64 {
    if d == 0 {
        return 0;
    }
    let hb = 63 - d.leading_zeros();
    let cone = if hb >= 63 {
        u64::MAX
    } else {
        (1u64 << (hb + 1)) - 1
    };
    cone & mask
}

/// Bits `lowest demanded bit..width` — the cone right shifts pull from.
fn high_cone(d: u64, mask: u64) -> u64 {
    if d == 0 {
        return 0;
    }
    mask & !((1u64 << d.trailing_zeros()) - 1)
}

/// Per-lane bit patterns of a constant operand, if it is one.
fn const_lanes(op: &Operand) -> Option<Vec<u64>> {
    op.constant().map(Constant::lane_bits)
}

impl DemandedBits {
    /// Run the analysis to fixpoint over `f`.
    pub fn compute(f: &Function) -> DemandedBits {
        let mut d = DemandedBits {
            lanes: f
                .values
                .iter()
                .map(|vi| vec![0u64; vi.ty.lanes().max(1) as usize])
                .collect(),
        };
        if f.blocks.is_empty() {
            return d;
        }
        let cfg = Cfg::build(f);
        let reachable = cfg.reachable(f.entry());
        loop {
            let mut changed = false;
            for (bi, block) in f.blocks.iter().enumerate().rev() {
                if !reachable[bi] {
                    continue;
                }
                match &block.term {
                    Terminator::CondBr { cond, .. } => {
                        // The interpreter branches on bit 0 (`is_true`).
                        changed |= d.demand_each_lane(f, cond, |_| 1);
                    }
                    Terminator::Ret(Some(op)) => changed |= d.demand_full(f, op),
                    _ => {}
                }
                for &ii in block.insts.iter().rev() {
                    changed |= d.apply(f, f.inst(ii));
                }
            }
            if !changed {
                break;
            }
        }
        d
    }

    /// Demanded bits of every lane of `v` (length 1 for scalars).
    pub fn of(&self, v: ValueId) -> &[u64] {
        &self.lanes[v.index()]
    }

    /// Demanded bits of one lane (0 for out-of-range lanes).
    pub fn lane(&self, v: ValueId, lane: u32) -> u64 {
        self.lanes[v.index()]
            .get(lane as usize)
            .copied()
            .unwrap_or(0)
    }

    /// Can flipping `bit` of `lane` of `v` reach an observable effect?
    pub fn live_bit(&self, v: ValueId, lane: u32, bit: u32) -> bool {
        bit < 64 && self.lane(v, lane) & (1u64 << bit) != 0
    }

    /// True when no bit of the lane is demanded.
    pub fn dead_lane(&self, v: ValueId, lane: u32) -> bool {
        self.lane(v, lane) == 0
    }

    /// Highest demanded bit of the lane, if any bit is demanded at all.
    /// Bits above it are dead by truncation.
    pub fn highest_live_bit(&self, v: ValueId, lane: u32) -> Option<u32> {
        match self.lane(v, lane) {
            0 => None,
            d => Some(63 - d.leading_zeros()),
        }
    }

    fn or_in(&mut self, v: ValueId, lane: usize, bits: u64) -> bool {
        match self.lanes[v.index()].get_mut(lane) {
            Some(slot) => {
                let grown = *slot | bits;
                let changed = grown != *slot;
                *slot = grown;
                changed
            }
            None => false,
        }
    }

    /// OR `per_lane[i]` into lane `i` of a value operand; constants absorb
    /// any demand.
    fn demand(&mut self, op: &Operand, per_lane: &[u64]) -> bool {
        let Some(v) = op.value() else { return false };
        let mut changed = false;
        for (lane, &bits) in per_lane.iter().enumerate() {
            if bits != 0 {
                changed |= self.or_in(v, lane, bits);
            }
        }
        changed
    }

    /// Demand the same computed mask on every lane of the operand.
    fn demand_each_lane(&mut self, f: &Function, op: &Operand, bits: impl Fn(u32) -> u64) -> bool {
        let ty = f.operand_type(op);
        let Some(elem) = ty.elem() else { return false };
        let per: Vec<u64> = (0..ty.lanes().max(1)).map(|_| bits(elem.bits())).collect();
        self.demand(op, &per)
    }

    /// Every bit of every lane.
    fn demand_full(&mut self, f: &Function, op: &Operand) -> bool {
        self.demand_each_lane(f, op, width_mask)
    }

    /// Transfer one instruction's result demand onto its operands, plus
    /// its result-independent root demands. Returns whether anything grew.
    fn apply(&mut self, f: &Function, inst: &Inst) -> bool {
        let res: Vec<u64> = match inst.result {
            Some(r) => self.lanes[r.index()].clone(),
            None => Vec::new(),
        };
        let any_res = res.iter().any(|&b| b != 0);
        let elem_bits = inst.ty.elem().map(|e| e.bits()).unwrap_or(0);
        let mask = width_mask(elem_bits.max(1));
        match &inst.kind {
            InstKind::Bin { op, lhs, rhs } => {
                if op.can_trap() {
                    // A flipped divisor can introduce a division trap even
                    // when the quotient is never read.
                    return self.demand_full(f, lhs) | self.demand_full(f, rhs);
                }
                if op.is_float() {
                    // No bit-level reasoning through float arithmetic; a
                    // dead result still demands nothing (floats don't trap).
                    let per: Vec<u64> =
                        res.iter().map(|&d| if d != 0 { mask } else { 0 }).collect();
                    return self.demand(lhs, &per) | self.demand(rhs, &per);
                }
                let lc = const_lanes(lhs);
                let rc = const_lanes(rhs);
                let side = |d: &[u64], other: &Option<Vec<u64>>, op: BinOp| -> Vec<u64> {
                    d.iter()
                        .enumerate()
                        .map(|(l, &dl)| {
                            let known = other.as_ref().and_then(|c| c.get(l).copied());
                            match op {
                                BinOp::And => match known {
                                    Some(c) => dl & c,
                                    None => dl,
                                },
                                BinOp::Or => match known {
                                    Some(c) => dl & !c,
                                    None => dl,
                                },
                                BinOp::Xor => dl,
                                BinOp::Add | BinOp::Sub | BinOp::Mul => low_cone(dl, mask),
                                _ => dl,
                            }
                        })
                        .collect()
                };
                match op {
                    BinOp::And | BinOp::Or | BinOp::Xor | BinOp::Add | BinOp::Sub | BinOp::Mul => {
                        let ld = side(&res, &rc, *op);
                        let rd = side(&res, &lc, *op);
                        self.demand(lhs, &ld) | self.demand(rhs, &rd)
                    }
                    BinOp::Shl | BinOp::LShr | BinOp::AShr => {
                        let w = elem_bits;
                        let ld: Vec<u64> = res
                            .iter()
                            .enumerate()
                            .map(|(l, &dl)| {
                                if dl == 0 {
                                    return 0;
                                }
                                match rc.as_ref().and_then(|c| c.get(l).copied()) {
                                    Some(k) if k < w as u64 => {
                                        let k = k as u32;
                                        match op {
                                            BinOp::Shl => dl >> k,
                                            BinOp::LShr => (dl << k) & mask,
                                            _ => {
                                                // ashr: bits shifted past the
                                                // top replicate the sign bit.
                                                let mut m = (dl << k) & mask;
                                                if k > 0 && dl >> (w - k) != 0 {
                                                    m |= 1u64 << (w - 1);
                                                }
                                                m
                                            }
                                        }
                                    }
                                    // Over-wide constant shifts have defined
                                    // results independent of the lhs (0 or
                                    // pure sign-fill).
                                    Some(_) => match op {
                                        BinOp::AShr => 1u64 << (w - 1),
                                        _ => 0,
                                    },
                                    None => match op {
                                        BinOp::Shl => low_cone(dl, mask),
                                        _ => high_cone(dl, mask),
                                    },
                                }
                            })
                            .collect();
                        let rd: Vec<u64> =
                            res.iter().map(|&d| if d != 0 { mask } else { 0 }).collect();
                        self.demand(lhs, &ld) | self.demand(rhs, &rd)
                    }
                    _ => {
                        let per: Vec<u64> =
                            res.iter().map(|&d| if d != 0 { mask } else { 0 }).collect();
                        self.demand(lhs, &per) | self.demand(rhs, &per)
                    }
                }
            }
            InstKind::ICmp { lhs, rhs, .. } | InstKind::FCmp { lhs, rhs, .. } => {
                // A comparison reads every bit of both operands in each
                // lane whose (1-bit) result is demanded.
                let op_bits = f.operand_type(lhs).elem().map(|e| e.bits()).unwrap_or(64);
                let per: Vec<u64> = res
                    .iter()
                    .map(|&d| if d != 0 { width_mask(op_bits) } else { 0 })
                    .collect();
                self.demand(lhs, &per) | self.demand(rhs, &per)
            }
            InstKind::Select {
                cond,
                on_true,
                on_false,
            } => {
                let mut changed = self.demand(on_true, &res) | self.demand(on_false, &res);
                if f.operand_type(cond).is_vector() {
                    // Per-lane blend tests bit 0 of the condition lane.
                    let per: Vec<u64> = res.iter().map(|&d| if d != 0 { 1 } else { 0 }).collect();
                    changed |= self.demand(cond, &per);
                } else if any_res {
                    changed |= self.demand(cond, &[1]);
                }
                changed
            }
            InstKind::Cast { op, val } => {
                let src_ty = f.operand_type(val);
                let src_bits = src_ty.elem().map(|e| e.bits()).unwrap_or(64);
                let src_mask = width_mask(src_bits);
                match op {
                    CastOp::Trunc => self.demand(val, &res),
                    CastOp::ZExt => {
                        let per: Vec<u64> = res.iter().map(|&d| d & src_mask).collect();
                        self.demand(val, &per)
                    }
                    CastOp::SExt => {
                        let per: Vec<u64> = res
                            .iter()
                            .map(|&d| {
                                let mut m = d & src_mask;
                                if d & !src_mask != 0 {
                                    m |= 1u64 << (src_bits - 1);
                                }
                                m
                            })
                            .collect();
                        self.demand(val, &per)
                    }
                    CastOp::Bitcast | CastOp::PtrToInt | CastOp::IntToPtr => {
                        if src_ty.lanes() == inst.ty.lanes() && src_bits == elem_bits {
                            // Lane-geometry-preserving reinterpretation
                            // moves bits verbatim.
                            self.demand(val, &res)
                        } else if any_res {
                            self.demand_full(f, val)
                        } else {
                            false
                        }
                    }
                    _ => {
                        // Float<->int conversions: value-level, demand all
                        // source bits of each demanded lane.
                        let per: Vec<u64> = res
                            .iter()
                            .map(|&d| if d != 0 { src_mask } else { 0 })
                            .collect();
                        self.demand(val, &per)
                    }
                }
            }
            // A flipped element count can make the allocation trap or
            // change the frame layout: always fully demanded.
            InstKind::Alloca { count, .. } => self.demand_full(f, count),
            InstKind::Load { ptr } => self.demand_full(f, ptr),
            InstKind::Store { val, ptr } => self.demand_full(f, val) | self.demand_full(f, ptr),
            InstKind::Gep { base, index, .. } => {
                self.demand_full(f, base) | self.demand_full(f, index)
            }
            InstKind::ExtractElement { vec, idx } => {
                let d = res.first().copied().unwrap_or(0);
                if d == 0 {
                    return false;
                }
                let n = f.operand_type(vec).lanes().max(1) as u64;
                match idx.constant().and_then(Constant::scalar_bits) {
                    Some(c) => {
                        let mut per = vec![0u64; n as usize];
                        per[(c % n) as usize] = d;
                        self.demand(vec, &per)
                    }
                    None => {
                        let per = vec![d; n as usize];
                        self.demand(vec, &per) | self.demand_full(f, idx)
                    }
                }
            }
            InstKind::InsertElement { vec, elt, idx } => {
                if !any_res {
                    return false;
                }
                let n = res.len() as u64;
                match idx.constant().and_then(Constant::scalar_bits) {
                    Some(c) => {
                        let c = (c % n.max(1)) as usize;
                        let mut vec_d = res.clone();
                        vec_d[c] = 0; // overwritten lane
                        self.demand(vec, &vec_d) | self.demand(elt, &[res[c]])
                    }
                    None => {
                        let elt_d = res.iter().fold(0u64, |a, &b| a | b);
                        self.demand(vec, &res)
                            | self.demand(elt, &[elt_d])
                            | self.demand_full(f, idx)
                    }
                }
            }
            InstKind::ShuffleVector { a, b, mask: m } => {
                let a_lanes = f.operand_type(a).lanes().max(1) as usize;
                let b_lanes = f.operand_type(b).lanes().max(1) as usize;
                let mut ad = vec![0u64; a_lanes];
                let mut bd = vec![0u64; b_lanes];
                for (i, &sel) in m.iter().enumerate() {
                    let d = res.get(i).copied().unwrap_or(0);
                    if d == 0 || sel < 0 {
                        continue; // undef lanes demand nothing
                    }
                    let sel = sel as usize;
                    if sel < a_lanes {
                        ad[sel] |= d;
                    } else if sel - a_lanes < b_lanes {
                        bd[sel - a_lanes] |= d;
                    }
                }
                self.demand(a, &ad) | self.demand(b, &bd)
            }
            InstKind::Phi { incomings } => {
                let mut changed = false;
                for (_, op) in incomings {
                    changed |= self.demand(op, &res);
                }
                changed
            }
            InstKind::Call { callee, args } => self.apply_call(f, callee, args, &res, any_res),
        }
    }

    fn apply_call(
        &mut self,
        f: &Function,
        callee: &str,
        args: &[Operand],
        res: &[u64],
        any_res: bool,
    ) -> bool {
        match intrinsics::parse(callee) {
            Some(intr @ (Intrinsic::MaskLoad { .. } | Intrinsic::MaskStore { .. })) => {
                let mut changed = false;
                // Pointer: fully demanded (address).
                if let Some(ptr) = args.first() {
                    changed |= self.demand_full(f, ptr);
                }
                // Mask: the interpreter tests the sign bit of each lane,
                // and a flip can enable a faulting access — demanded
                // regardless of whether the loaded value is used.
                if let Some(m) = intr.mask_arg().and_then(|i| args.get(i)) {
                    changed |= self.demand_each_lane(f, m, |w| 1u64 << (w - 1));
                }
                // Stored value: reaches memory on active lanes.
                if let Some(v) = intr.store_value_arg().and_then(|i| args.get(i)) {
                    changed |= self.demand_full(f, v);
                }
                changed
            }
            Some(Intrinsic::Math { .. }) => {
                // Elementwise, non-trapping: demand all bits of each lane
                // whose result lane is demanded.
                let mut changed = false;
                for a in args {
                    let w = f.operand_type(a).elem().map(|e| e.bits()).unwrap_or(64);
                    let per: Vec<u64> = res
                        .iter()
                        .map(|&d| if d != 0 { width_mask(w) } else { 0 })
                        .collect();
                    changed |= self.demand(a, &per);
                }
                changed
            }
            Some(Intrinsic::Movmsk { lanes }) => {
                // Result bit i is the sign bit of lane i.
                let d = res.first().copied().unwrap_or(0);
                let Some(a) = args.first() else { return false };
                let w = f.operand_type(a).elem().map(|e| e.bits()).unwrap_or(32);
                let per: Vec<u64> = (0..lanes)
                    .map(|i| {
                        if d & (1u64 << i) != 0 {
                            1u64 << (w - 1)
                        } else {
                            0
                        }
                    })
                    .collect();
                self.demand(a, &per)
            }
            Some(Intrinsic::MaskAny { .. }) | Some(Intrinsic::MaskAll { .. }) => {
                // Reduction over bit 0 of each (i1) lane.
                let d = res.first().copied().unwrap_or(0);
                match args.first() {
                    Some(a) if d & 1 != 0 => self.demand_each_lane(f, a, |_| 1),
                    _ => false,
                }
            }
            None => {
                // Unknown callee: runtime hosts, detectors, defined
                // functions, and unrecognized llvm.* (which trap). Every
                // argument escapes the analysis: fully demanded.
                let _ = any_res;
                let mut changed = false;
                for a in args {
                    changed |= self.demand_full(f, a);
                }
                changed
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::constant::Constant;
    use crate::inst::ICmpPred;
    use crate::types::ScalarTy;
    use crate::types::Type;

    fn vid(op: &Operand) -> ValueId {
        op.value().unwrap()
    }

    #[test]
    fn trunc_kills_high_bits() {
        let mut b = FuncBuilder::new(
            "t",
            vec![("x".into(), Type::I64), ("p".into(), Type::PTR)],
            Type::Void,
        );
        let entry = b.add_block("entry");
        b.position_at(entry);
        let t = b.cast(CastOp::Trunc, b.param(0), Type::I8, "t");
        b.store(t, b.param(1));
        b.ret(None);
        let f = b.finish();
        let d = DemandedBits::compute(&f);
        assert_eq!(d.lane(f.param_value(0), 0), 0xff);
        assert_eq!(d.highest_live_bit(f.param_value(0), 0), Some(7));
        assert!(d.live_bit(f.param_value(0), 0, 3));
        assert!(!d.live_bit(f.param_value(0), 0, 8));
    }

    #[test]
    fn and_with_constant_masks_demand() {
        let mut b = FuncBuilder::new("a", vec![("x".into(), Type::I32)], Type::I32);
        let entry = b.add_block("entry");
        b.position_at(entry);
        let m = b.bin(BinOp::And, b.param(0), Constant::i32(0xFF00).into(), "m");
        b.ret(Some(m));
        let f = b.finish();
        let d = DemandedBits::compute(&f);
        assert_eq!(d.lane(f.param_value(0), 0), 0xFF00);
    }

    #[test]
    fn maskload_mask_demands_only_sign_bits() {
        let mut b = FuncBuilder::new(
            "m",
            vec![
                ("p".into(), Type::PTR),
                ("mask".into(), Type::vec(ScalarTy::I32, 8)),
            ],
            Type::vec(ScalarTy::F32, 8),
        );
        let entry = b.add_block("entry");
        b.position_at(entry);
        let mf = b.cast(
            CastOp::Bitcast,
            b.param(1),
            Type::vec(ScalarTy::F32, 8),
            "mf",
        );
        let v = b.call(
            "llvm.x86.avx.maskload.ps.256",
            vec![b.param(0), mf],
            Type::vec(ScalarTy::F32, 8),
            "v",
        );
        b.ret(Some(v));
        let f = b.finish();
        let d = DemandedBits::compute(&f);
        // Only the sign bit of each mask lane can change behaviour; the
        // bitcast is geometry-preserving so the demand flows through it.
        for lane in 0..8 {
            assert_eq!(d.lane(f.param_value(1), lane), 1u64 << 31, "lane {lane}");
        }
    }

    #[test]
    fn dead_value_demands_nothing_but_div_still_traps() {
        let mut b = FuncBuilder::new(
            "d",
            vec![("x".into(), Type::I32), ("y".into(), Type::I32)],
            Type::Void,
        );
        let entry = b.add_block("entry");
        b.position_at(entry);
        let dead = b.bin(BinOp::Add, b.param(0), Constant::i32(1).into(), "dead");
        let _q = b.bin(BinOp::SDiv, b.param(1), b.param(0), "q");
        b.ret(None);
        let f = b.finish();
        let d = DemandedBits::compute(&f);
        assert_eq!(d.lane(vid(&dead), 0), 0, "unused add result is dead");
        // x feeds the (dead) add and the divisor: fully demanded anyway.
        assert_eq!(d.lane(f.param_value(0), 0), 0xffff_ffff);
        assert_eq!(d.lane(f.param_value(1), 0), 0xffff_ffff);
    }

    #[test]
    fn broadcast_shuffle_demands_only_lane_zero() {
        let mut b = FuncBuilder::new(
            "s",
            vec![
                ("v".into(), Type::vec(ScalarTy::F32, 8)),
                ("p".into(), Type::PTR),
            ],
            Type::Void,
        );
        let entry = b.add_block("entry");
        b.position_at(entry);
        let splat = b.shuffle(
            b.param(0),
            Constant::undef(Type::vec(ScalarTy::F32, 8)).into(),
            vec![0; 8],
            "splat",
        );
        b.store(splat, b.param(1));
        b.ret(None);
        let f = b.finish();
        let d = DemandedBits::compute(&f);
        assert_eq!(d.lane(f.param_value(0), 0), 0xffff_ffff);
        for lane in 1..8 {
            assert!(d.dead_lane(f.param_value(0), lane), "lane {lane} is dead");
        }
    }

    #[test]
    fn branch_condition_demands_bit_zero_and_compares_demand_all() {
        let mut b = FuncBuilder::new("c", vec![("n".into(), Type::I32)], Type::I32);
        let entry = b.add_block("entry");
        let yes = b.add_block("yes");
        let no = b.add_block("no");
        b.position_at(entry);
        let c = b.icmp(ICmpPred::Slt, b.param(0), Constant::i32(10).into(), "c");
        b.cond_br(c.clone(), yes, no);
        b.position_at(yes);
        b.ret(Some(Constant::i32(1).into()));
        b.position_at(no);
        b.ret(Some(Constant::i32(0).into()));
        let f = b.finish();
        let d = DemandedBits::compute(&f);
        assert_eq!(d.lane(vid(&c), 0), 1);
        assert_eq!(d.lane(f.param_value(0), 0), 0xffff_ffff);
    }

    #[test]
    fn movmsk_low_result_bit_demands_one_lane() {
        let mut b = FuncBuilder::new(
            "mm",
            vec![("v".into(), Type::vec(ScalarTy::F32, 8))],
            Type::I32,
        );
        let entry = b.add_block("entry");
        b.position_at(entry);
        let m = b.call(
            "llvm.x86.avx.movmsk.ps.256",
            vec![b.param(0)],
            Type::I32,
            "m",
        );
        let low = b.bin(BinOp::And, m, Constant::i32(1).into(), "low");
        b.ret(Some(low));
        let f = b.finish();
        let d = DemandedBits::compute(&f);
        assert_eq!(d.lane(f.param_value(0), 0), 1u64 << 31);
        for lane in 1..8 {
            assert!(d.dead_lane(f.param_value(0), lane), "lane {lane}");
        }
    }

    #[test]
    fn unreachable_block_values_stay_undemanded() {
        let mut b = FuncBuilder::new(
            "u",
            vec![("x".into(), Type::I32), ("p".into(), Type::PTR)],
            Type::Void,
        );
        let entry = b.add_block("entry");
        let orphan = b.add_block("orphan");
        b.position_at(entry);
        b.ret(None);
        b.position_at(orphan);
        let g = b.bin(BinOp::Add, b.param(0), Constant::i32(1).into(), "g");
        b.store(g.clone(), b.param(1));
        b.br(orphan);
        let f = b.finish();
        let d = DemandedBits::compute(&f);
        // The store can never execute: nothing in the orphan block (which
        // is also a self-loop) contributes demand.
        assert_eq!(d.lane(f.param_value(0), 0), 0);
        assert_eq!(d.lane(vid(&g), 0), 0);
    }

    #[test]
    fn sext_demands_sign_bit_for_high_result_bits() {
        let mut b = FuncBuilder::new("sx", vec![("x".into(), Type::I8)], Type::I32);
        let entry = b.add_block("entry");
        b.position_at(entry);
        let w = b.cast(CastOp::SExt, b.param(0), Type::I32, "w");
        let hi = b.bin(BinOp::And, w, Constant::i32(0x0100_0000).into(), "hi");
        b.ret(Some(hi));
        let f = b.finish();
        let d = DemandedBits::compute(&f);
        // Only bit 24 of the sext is demanded, which maps to the source's
        // sign bit (bit 7) alone.
        assert_eq!(d.lane(f.param_value(0), 0), 0x80);
    }

    #[test]
    fn shifts_by_constants_relocate_demand() {
        let mut b = FuncBuilder::new("sh", vec![("x".into(), Type::I32)], Type::I32);
        let entry = b.add_block("entry");
        b.position_at(entry);
        let s = b.bin(BinOp::LShr, b.param(0), Constant::i32(4).into(), "s");
        let low = b.bin(BinOp::And, s, Constant::i32(0xF).into(), "low");
        b.ret(Some(low));
        let f = b.finish();
        let d = DemandedBits::compute(&f);
        // Result bits 0..4 pull from source bits 4..8.
        assert_eq!(d.lane(f.param_value(0), 0), 0xF0);
    }
}
