//! Dominator analysis (Cooper–Harvey–Kennedy iterative algorithm).

use crate::analysis::cfg::Cfg;
use crate::inst::BlockId;

/// Immediate-dominator tree for the reachable part of a function.
#[derive(Debug, Clone)]
pub struct DomTree {
    /// `idom[b]` is the immediate dominator; the entry maps to itself.
    /// Unreachable blocks map to `None`.
    idom: Vec<Option<BlockId>>,
    entry: BlockId,
}

impl DomTree {
    pub fn build(cfg: &Cfg, entry: BlockId) -> DomTree {
        let rpo = cfg.reverse_postorder(entry);
        let n = cfg.succs.len();
        let mut rpo_index = vec![usize::MAX; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_index[b.index()] = i;
        }
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[entry.index()] = Some(entry);

        let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
            while a != b {
                while rpo_index[a.index()] > rpo_index[b.index()] {
                    a = idom[a.index()].expect("processed block has idom");
                }
                while rpo_index[b.index()] > rpo_index[a.index()] {
                    b = idom[b.index()].expect("processed block has idom");
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in cfg.preds(b) {
                    if idom[p.index()].is_none() {
                        continue; // unprocessed or unreachable
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
                if new_idom != idom[b.index()] && new_idom.is_some() {
                    idom[b.index()] = new_idom;
                    changed = true;
                }
            }
        }
        DomTree { idom, entry }
    }

    /// Does `a` dominate `b`? (Reflexive; false if either is unreachable.)
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.idom[b.index()].is_none() || self.idom[a.index()].is_none() {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur == self.entry {
                return false;
            }
            cur = match self.idom[cur.index()] {
                Some(d) => d,
                None => return false,
            };
        }
    }

    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        if b == self.entry {
            None
        } else {
            self.idom[b.index()]
        }
    }

    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.idom[b.index()].is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::constant::Constant;
    use crate::function::Function;
    use crate::inst::ICmpPred;
    use crate::types::Type;

    /// entry -> header -> (body -> header | exit)
    fn loop_fn() -> Function {
        let mut b = FuncBuilder::new("l", vec![("n".into(), Type::I32)], Type::Void);
        let entry = b.add_block("entry");
        let header = b.add_block("header");
        let body = b.add_block("body");
        let exit = b.add_block("exit");
        b.position_at(entry);
        b.br(header);
        b.position_at(header);
        let i = b.phi(Type::I32, "i");
        let c = b.icmp(ICmpPred::Slt, i.clone(), b.param(0), "c");
        b.cond_br(c, body, exit);
        b.position_at(body);
        let i2 = b.bin(
            crate::inst::BinOp::Add,
            i.clone(),
            Constant::i32(1).into(),
            "i2",
        );
        b.br(header);
        b.add_incoming(&i, entry, Constant::i32(0).into());
        b.add_incoming(&i, body, i2);
        b.position_at(exit);
        b.ret(None);
        b.finish()
    }

    #[test]
    fn loop_dominators() {
        let f = loop_fn();
        let cfg = Cfg::build(&f);
        let dom = DomTree::build(&cfg, f.entry());
        let (entry, header, body, exit) = (BlockId(0), BlockId(1), BlockId(2), BlockId(3));
        assert_eq!(dom.idom(header), Some(entry));
        assert_eq!(dom.idom(body), Some(header));
        assert_eq!(dom.idom(exit), Some(header));
        assert!(dom.dominates(entry, exit));
        assert!(dom.dominates(header, body));
        assert!(!dom.dominates(body, exit));
        assert!(dom.dominates(exit, exit));
    }

    #[test]
    fn unreachable_blocks_have_no_idom() {
        let mut f = loop_fn();
        let dead = f.add_block("dead");
        let cfg = Cfg::build(&f);
        let dom = DomTree::build(&cfg, f.entry());
        assert!(!dom.is_reachable(dead));
        assert!(!dom.dominates(BlockId(0), dead));
    }

    #[test]
    fn single_block_function() {
        let mut b = FuncBuilder::new("one", vec![], Type::I32);
        let entry = b.add_block("entry");
        b.position_at(entry);
        b.ret(Some(Constant::i32(0).into()));
        let f = b.finish();
        let cfg = Cfg::build(&f);
        let dom = DomTree::build(&cfg, f.entry());
        assert!(dom.is_reachable(entry));
        assert_eq!(dom.idom(entry), None, "entry has no strict idom");
        assert!(dom.dominates(entry, entry), "dominance is reflexive");
    }

    #[test]
    fn self_loop_header_dominates_itself_only_via_entry() {
        // entry -> spin; spin -> (spin | exit): the header's only idom is
        // the entry even though it is its own predecessor.
        let mut b = FuncBuilder::new("s", vec![("n".into(), Type::I32)], Type::Void);
        let entry = b.add_block("entry");
        let spin = b.add_block("spin");
        let exit = b.add_block("exit");
        b.position_at(entry);
        b.br(spin);
        b.position_at(spin);
        let i = b.phi(Type::I32, "i");
        let i2 = b.bin(
            crate::inst::BinOp::Add,
            i.clone(),
            Constant::i32(1).into(),
            "i2",
        );
        let c = b.icmp(ICmpPred::Slt, i2.clone(), b.param(0), "c");
        b.add_incoming(&i, entry, Constant::i32(0).into());
        b.add_incoming(&i, spin, i2);
        b.cond_br(c, spin, exit);
        b.position_at(exit);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::build(&f);
        let dom = DomTree::build(&cfg, f.entry());
        assert_eq!(dom.idom(spin), Some(entry));
        assert_eq!(dom.idom(exit), Some(spin));
        assert!(dom.dominates(spin, spin));
        assert!(dom.dominates(entry, exit));
        assert!(!dom.dominates(exit, spin));
    }

    #[test]
    fn unreachable_self_loop_does_not_confuse_reachable_tree() {
        // An orphan block that branches to itself: the CHK iteration must
        // leave it out of the tree without disturbing reachable idoms.
        let mut f = loop_fn();
        let orphan = f.add_block("orphan");
        f.blocks[orphan.index()].term = crate::inst::Terminator::Br(orphan);
        let cfg = Cfg::build(&f);
        let dom = DomTree::build(&cfg, f.entry());
        assert!(!dom.is_reachable(orphan));
        assert!(!dom.dominates(orphan, orphan));
        assert_eq!(dom.idom(BlockId(1)), Some(BlockId(0)));
    }
}
