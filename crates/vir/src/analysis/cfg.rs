//! Control-flow graph: predecessor/successor maps and reachability.

use crate::function::Function;
use crate::inst::BlockId;

/// Predecessor/successor lists for every block of a function.
#[derive(Debug, Clone)]
pub struct Cfg {
    pub preds: Vec<Vec<BlockId>>,
    pub succs: Vec<Vec<BlockId>>,
}

impl Cfg {
    pub fn build(f: &Function) -> Cfg {
        let n = f.blocks.len();
        let mut preds = vec![Vec::new(); n];
        let mut succs = vec![Vec::new(); n];
        for (bi, b) in f.blocks.iter().enumerate() {
            let from = BlockId(bi as u32);
            for s in b.term.successors() {
                succs[bi].push(s);
                if !preds[s.index()].contains(&from) {
                    preds[s.index()].push(from);
                }
            }
        }
        Cfg { preds, succs }
    }

    pub fn preds(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.index()]
    }

    pub fn succs(&self, b: BlockId) -> &[BlockId] {
        &self.succs[b.index()]
    }

    /// Blocks reachable from the entry, in reverse-postorder.
    pub fn reverse_postorder(&self, entry: BlockId) -> Vec<BlockId> {
        let n = self.succs.len();
        let mut visited = vec![false; n];
        let mut post = Vec::with_capacity(n);
        // Iterative DFS with an explicit stack of (block, next-succ-index).
        let mut stack: Vec<(BlockId, usize)> = vec![(entry, 0)];
        visited[entry.index()] = true;
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            if *i < self.succs[b.index()].len() {
                let s = self.succs[b.index()][*i];
                *i += 1;
                if !visited[s.index()] {
                    visited[s.index()] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(b);
                stack.pop();
            }
        }
        post.reverse();
        post
    }

    /// Set of blocks reachable from entry.
    pub fn reachable(&self, entry: BlockId) -> Vec<bool> {
        let order = self.reverse_postorder(entry);
        let mut r = vec![false; self.succs.len()];
        for b in order {
            r[b.index()] = true;
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::constant::Constant;
    use crate::inst::ICmpPred;
    use crate::types::Type;

    fn diamond() -> Function {
        let mut b = FuncBuilder::new("d", vec![("c".into(), Type::I32)], Type::I32);
        let entry = b.add_block("entry");
        let t = b.add_block("t");
        let e = b.add_block("e");
        let merge = b.add_block("merge");
        b.position_at(entry);
        let c = b.icmp(ICmpPred::Sgt, b.param(0), Constant::i32(0).into(), "c");
        b.cond_br(c, t, e);
        b.position_at(t);
        b.br(merge);
        b.position_at(e);
        b.br(merge);
        b.position_at(merge);
        b.ret(Some(Constant::i32(0).into()));
        b.finish()
    }

    #[test]
    fn preds_and_succs() {
        let f = diamond();
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.succs(BlockId(0)), &[BlockId(1), BlockId(2)]);
        assert_eq!(cfg.preds(BlockId(3)), &[BlockId(1), BlockId(2)]);
        assert!(cfg.preds(BlockId(0)).is_empty());
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_all() {
        let f = diamond();
        let cfg = Cfg::build(&f);
        let rpo = cfg.reverse_postorder(BlockId(0));
        assert_eq!(rpo[0], BlockId(0));
        assert_eq!(rpo.len(), 4);
        // merge must come after both branches.
        let pos = |b: BlockId| rpo.iter().position(|&x| x == b).unwrap();
        assert!(pos(BlockId(3)) > pos(BlockId(1)));
        assert!(pos(BlockId(3)) > pos(BlockId(2)));
    }

    #[test]
    fn unreachable_blocks_not_visited() {
        let mut f = diamond();
        f.add_block("dead"); // no edges in
        let cfg = Cfg::build(&f);
        let r = cfg.reachable(BlockId(0));
        assert_eq!(r, vec![true, true, true, true, false]);
    }
}
