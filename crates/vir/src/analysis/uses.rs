//! Use-def information: for every SSA value, who uses it.

use crate::function::Function;
use crate::inst::{InstId, ValueId};

/// How a terminator uses a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TermUse {
    /// Condition of a conditional branch — the "control-flow" evidence the
    /// site classifier looks for (paper §II-C).
    BranchCond,
    /// Returned value.
    RetVal,
}

/// Reverse use map for one function.
#[derive(Debug, Clone)]
pub struct UseGraph {
    /// For each value: the instructions that read it.
    users: Vec<Vec<InstId>>,
    /// For each value: terminator uses.
    term_uses: Vec<Vec<TermUse>>,
}

impl UseGraph {
    pub fn build(f: &Function) -> UseGraph {
        let n = f.values.len();
        let mut users = vec![Vec::new(); n];
        let mut term_uses = vec![Vec::new(); n];
        for (_, iid) in f.placed_insts() {
            for op in f.inst(iid).operands() {
                if let Some(v) = op.value() {
                    if !users[v.index()].contains(&iid) {
                        users[v.index()].push(iid);
                    }
                }
            }
        }
        for b in &f.blocks {
            match &b.term {
                crate::inst::Terminator::CondBr { cond, .. } => {
                    if let Some(v) = cond.value() {
                        term_uses[v.index()].push(TermUse::BranchCond);
                    }
                }
                crate::inst::Terminator::Ret(Some(op)) => {
                    if let Some(v) = op.value() {
                        term_uses[v.index()].push(TermUse::RetVal);
                    }
                }
                _ => {}
            }
        }
        UseGraph { users, term_uses }
    }

    /// Instructions reading `v`.
    pub fn users(&self, v: ValueId) -> &[InstId] {
        &self.users[v.index()]
    }

    /// Terminator uses of `v`.
    pub fn term_uses(&self, v: ValueId) -> &[TermUse] {
        &self.term_uses[v.index()]
    }

    /// Is `v` the condition of some conditional branch?
    pub fn feeds_branch(&self, v: ValueId) -> bool {
        self.term_uses[v.index()].contains(&TermUse::BranchCond)
    }

    /// Is `v` unused (dead)?
    pub fn is_dead(&self, v: ValueId) -> bool {
        self.users[v.index()].is_empty() && self.term_uses[v.index()].is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::constant::Constant;
    use crate::inst::{BinOp, ICmpPred};
    use crate::types::Type;

    #[test]
    fn tracks_inst_and_terminator_uses() {
        let mut b = FuncBuilder::new("f", vec![("x".into(), Type::I32)], Type::I32);
        let entry = b.add_block("entry");
        let t = b.add_block("t");
        let e = b.add_block("e");
        b.position_at(entry);
        let x = b.param(0);
        let y = b.bin(BinOp::Add, x.clone(), Constant::i32(1).into(), "y");
        let c = b.icmp(ICmpPred::Sgt, y.clone(), Constant::i32(10).into(), "c");
        b.cond_br(c.clone(), t, e);
        b.position_at(t);
        b.ret(Some(y.clone()));
        b.position_at(e);
        b.ret(Some(Constant::i32(0).into()));
        let f = b.finish();
        let ug = UseGraph::build(&f);

        let xv = x.value().unwrap();
        let yv = y.value().unwrap();
        let cv = c.value().unwrap();
        assert_eq!(ug.users(xv).len(), 1); // the add
        assert_eq!(ug.users(yv).len(), 1); // the icmp
        assert_eq!(ug.term_uses(yv), &[TermUse::RetVal]);
        assert!(ug.feeds_branch(cv));
        assert!(!ug.feeds_branch(yv));
        assert!(!ug.is_dead(yv));
    }

    #[test]
    fn dead_values_detected() {
        let mut b = FuncBuilder::new("f", vec![("x".into(), Type::I32)], Type::Void);
        let entry = b.add_block("entry");
        b.position_at(entry);
        let dead = b.bin(BinOp::Mul, b.param(0), Constant::i32(3).into(), "dead");
        b.ret(None);
        let f = b.finish();
        let ug = UseGraph::build(&f);
        assert!(ug.is_dead(dead.value().unwrap()));
    }

    #[test]
    fn counts_uses_in_unreachable_blocks() {
        // Placed instructions are scanned regardless of reachability: a
        // use inside an orphan block still makes the value "not dead" at
        // the use-graph level (liveness under reachability is the
        // demanded-bits pass's job, not this map's).
        let mut b = FuncBuilder::new("f", vec![("x".into(), Type::I32)], Type::Void);
        let entry = b.add_block("entry");
        let orphan = b.add_block("orphan");
        b.position_at(entry);
        let v = b.bin(BinOp::Add, b.param(0), Constant::i32(1).into(), "v");
        b.ret(None);
        b.position_at(orphan);
        let w = b.bin(BinOp::Mul, v.clone(), Constant::i32(2).into(), "w");
        b.ret(Some(w.clone()));
        let f = b.finish();
        let ug = UseGraph::build(&f);
        assert_eq!(ug.users(v.value().unwrap()).len(), 1);
        assert_eq!(ug.term_uses(w.value().unwrap()), &[TermUse::RetVal]);
    }

    #[test]
    fn self_loop_phi_is_its_own_user() {
        // spin: %i = phi [entry: 0], [spin: %i2]; %i2 = add %i, 1 — the
        // phi and the add use each other across the back edge.
        let mut b = FuncBuilder::new("s", vec![("n".into(), Type::I32)], Type::Void);
        let entry = b.add_block("entry");
        let spin = b.add_block("spin");
        let exit = b.add_block("exit");
        b.position_at(entry);
        b.br(spin);
        b.position_at(spin);
        let i = b.phi(Type::I32, "i");
        let i2 = b.bin(BinOp::Add, i.clone(), Constant::i32(1).into(), "i2");
        let c = b.icmp(ICmpPred::Slt, i2.clone(), b.param(0), "c");
        b.add_incoming(&i, entry, Constant::i32(0).into());
        b.add_incoming(&i, spin, i2.clone());
        b.cond_br(c, spin, exit);
        b.position_at(exit);
        b.ret(None);
        let f = b.finish();
        let ug = UseGraph::build(&f);
        let iv = i.value().unwrap();
        let i2v = i2.value().unwrap();
        assert_eq!(ug.users(iv).len(), 1, "the add reads the phi");
        assert!(ug.users(i2v).len() >= 2, "the phi and the icmp read i2");
        assert!(!ug.is_dead(iv));
    }

    #[test]
    fn single_block_function_uses() {
        let mut b = FuncBuilder::new("one", vec![("x".into(), Type::I32)], Type::I32);
        let entry = b.add_block("entry");
        b.position_at(entry);
        let y = b.bin(BinOp::Add, b.param(0), Constant::i32(1).into(), "y");
        b.ret(Some(y.clone()));
        let f = b.finish();
        let ug = UseGraph::build(&f);
        assert_eq!(ug.term_uses(y.value().unwrap()), &[TermUse::RetVal]);
        assert!(!ug.is_dead(f.param_value(0)));
    }
}
