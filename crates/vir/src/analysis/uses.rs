//! Use-def information: for every SSA value, who uses it.

use crate::function::Function;
use crate::inst::{InstId, ValueId};

/// How a terminator uses a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TermUse {
    /// Condition of a conditional branch — the "control-flow" evidence the
    /// site classifier looks for (paper §II-C).
    BranchCond,
    /// Returned value.
    RetVal,
}

/// Reverse use map for one function.
#[derive(Debug, Clone)]
pub struct UseGraph {
    /// For each value: the instructions that read it.
    users: Vec<Vec<InstId>>,
    /// For each value: terminator uses.
    term_uses: Vec<Vec<TermUse>>,
}

impl UseGraph {
    pub fn build(f: &Function) -> UseGraph {
        let n = f.values.len();
        let mut users = vec![Vec::new(); n];
        let mut term_uses = vec![Vec::new(); n];
        for (_, iid) in f.placed_insts() {
            for op in f.inst(iid).operands() {
                if let Some(v) = op.value() {
                    if !users[v.index()].contains(&iid) {
                        users[v.index()].push(iid);
                    }
                }
            }
        }
        for b in &f.blocks {
            match &b.term {
                crate::inst::Terminator::CondBr { cond, .. } => {
                    if let Some(v) = cond.value() {
                        term_uses[v.index()].push(TermUse::BranchCond);
                    }
                }
                crate::inst::Terminator::Ret(Some(op)) => {
                    if let Some(v) = op.value() {
                        term_uses[v.index()].push(TermUse::RetVal);
                    }
                }
                _ => {}
            }
        }
        UseGraph { users, term_uses }
    }

    /// Instructions reading `v`.
    pub fn users(&self, v: ValueId) -> &[InstId] {
        &self.users[v.index()]
    }

    /// Terminator uses of `v`.
    pub fn term_uses(&self, v: ValueId) -> &[TermUse] {
        &self.term_uses[v.index()]
    }

    /// Is `v` the condition of some conditional branch?
    pub fn feeds_branch(&self, v: ValueId) -> bool {
        self.term_uses[v.index()].contains(&TermUse::BranchCond)
    }

    /// Is `v` unused (dead)?
    pub fn is_dead(&self, v: ValueId) -> bool {
        self.users[v.index()].is_empty() && self.term_uses[v.index()].is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::constant::Constant;
    use crate::inst::{BinOp, ICmpPred};
    use crate::types::Type;

    #[test]
    fn tracks_inst_and_terminator_uses() {
        let mut b = FuncBuilder::new("f", vec![("x".into(), Type::I32)], Type::I32);
        let entry = b.add_block("entry");
        let t = b.add_block("t");
        let e = b.add_block("e");
        b.position_at(entry);
        let x = b.param(0);
        let y = b.bin(BinOp::Add, x.clone(), Constant::i32(1).into(), "y");
        let c = b.icmp(ICmpPred::Sgt, y.clone(), Constant::i32(10).into(), "c");
        b.cond_br(c.clone(), t, e);
        b.position_at(t);
        b.ret(Some(y.clone()));
        b.position_at(e);
        b.ret(Some(Constant::i32(0).into()));
        let f = b.finish();
        let ug = UseGraph::build(&f);

        let xv = x.value().unwrap();
        let yv = y.value().unwrap();
        let cv = c.value().unwrap();
        assert_eq!(ug.users(xv).len(), 1); // the add
        assert_eq!(ug.users(yv).len(), 1); // the icmp
        assert_eq!(ug.term_uses(yv), &[TermUse::RetVal]);
        assert!(ug.feeds_branch(cv));
        assert!(!ug.feeds_branch(yv));
        assert!(!ug.is_dead(yv));
    }

    #[test]
    fn dead_values_detected() {
        let mut b = FuncBuilder::new("f", vec![("x".into(), Type::I32)], Type::Void);
        let entry = b.add_block("entry");
        b.position_at(entry);
        let dead = b.bin(BinOp::Mul, b.param(0), Constant::i32(3).into(), "dead");
        b.ret(None);
        let f = b.finish();
        let ug = UseGraph::build(&f);
        assert!(ug.is_dead(dead.value().unwrap()));
    }
}
