//! Program analyses over VIR functions: CFG, dominators, use-def chains,
//! the forward-slice fault-site classifier, and the static-resiliency
//! tier (demanded bits, mask reachability, lints).

pub mod cfg;
pub mod demand;
pub mod dom;
pub mod lint;
pub mod loops;
pub mod maskreach;
pub mod slice;
pub mod uses;

pub use cfg::Cfg;
pub use demand::DemandedBits;
pub use dom::DomTree;
pub use lint::{lint_by_id, lint_function, lint_module, LintFinding, LintInfo, LINTS};
pub use loops::{find_loops, loop_depths, NaturalLoop};
pub use maskreach::MaskReach;
pub use slice::{SiteCategory, SiteFlags, SliceAnalysis};
pub use uses::{TermUse, UseGraph};
