//! Program analyses over VIR functions: CFG, dominators, use-def chains,
//! and the forward-slice fault-site classifier.

pub mod cfg;
pub mod dom;
pub mod loops;
pub mod slice;
pub mod uses;

pub use cfg::Cfg;
pub use dom::DomTree;
pub use loops::{find_loops, loop_depths, NaturalLoop};
pub use slice::{SiteCategory, SiteFlags, SliceAnalysis};
pub use uses::{TermUse, UseGraph};
