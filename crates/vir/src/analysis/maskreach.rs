//! Mask reachability: which lanes of a masked op are provably inactive.
//!
//! The interpreter gates each lane of a masked load/store on the *sign
//! bit* of the corresponding mask lane (`mask_active`). This analysis
//! evaluates that predicate symbolically: for a given mask operand and
//! lane it answers `Some(true)` (active on every path), `Some(false)`
//! (inactive on every path — the lane is dead, no fault injected into it
//! can ever be observed), or `None` (depends on runtime data).
//!
//! The evaluator follows the value chains SPMD code generation produces
//! for masks — constants, `sext`/`zext`, geometry-preserving bitcasts,
//! bitwise and/or/xor, shuffles, inserts/extracts, and phis (joining over
//! reachable predecessors only, with a cycle guard). Everything else is
//! `None`: soundness over precision, since `Some(false)` feeds benign
//! proofs and the always-false-mask lint.

use crate::analysis::cfg::Cfg;
use crate::function::Function;
use crate::function::ValueDef;
use crate::inst::{BinOp, CastOp, InstId, InstKind, Operand};
use crate::intrinsics::{self, Intrinsic};

pub use crate::inst::ValueId;

/// Per-function mask-lane constancy oracle.
pub struct MaskReach<'f> {
    f: &'f Function,
    reachable: Vec<bool>,
}

impl<'f> MaskReach<'f> {
    pub fn new(f: &'f Function) -> MaskReach<'f> {
        let reachable = if f.blocks.is_empty() {
            Vec::new()
        } else {
            Cfg::build(f).reachable(f.entry())
        };
        MaskReach { f, reachable }
    }

    /// Is the given block reachable from the entry?
    pub fn block_reachable(&self, b: crate::inst::BlockId) -> bool {
        self.reachable.get(b.index()).copied().unwrap_or(false)
    }

    /// Would `mask_active` (the sign-bit test) on `lane` of `op` return a
    /// known constant on every path?
    pub fn lane_activity(&self, op: &Operand, lane: u32) -> Option<bool> {
        self.activity(op, lane, &mut Vec::new())
    }

    /// Per-lane activity of the mask argument of a masked memop call, or
    /// `None` if `inst` is not one.
    pub fn masked_op_lanes(&self, inst: InstId) -> Option<Vec<Option<bool>>> {
        let InstKind::Call { callee, args } = &self.f.inst(inst).kind else {
            return None;
        };
        let intr = intrinsics::parse(callee)?;
        let (lanes, mask_arg) = match intr {
            Intrinsic::MaskLoad { lanes, .. } | Intrinsic::MaskStore { lanes, .. } => {
                (lanes, intr.mask_arg()?)
            }
            _ => return None,
        };
        let mask = args.get(mask_arg)?;
        Some((0..lanes).map(|l| self.lane_activity(mask, l)).collect())
    }

    /// Lanes of a masked memop that are dead on all paths: provably
    /// inactive masks, or every lane when the op can never execute.
    pub fn dead_lanes(&self, inst: InstId) -> Vec<u32> {
        if let Some(b) = self.f.block_of(inst) {
            if !self.block_reachable(b) {
                if let Some(lanes) = self.masked_op_lanes(inst) {
                    return (0..lanes.len() as u32).collect();
                }
            }
        }
        match self.masked_op_lanes(inst) {
            Some(lanes) => lanes
                .iter()
                .enumerate()
                .filter(|(_, a)| **a == Some(false))
                .map(|(i, _)| i as u32)
                .collect(),
            None => Vec::new(),
        }
    }

    fn activity(&self, op: &Operand, lane: u32, visiting: &mut Vec<ValueId>) -> Option<bool> {
        match op {
            Operand::Const(c) => {
                let elem = c.ty.elem()?;
                let bits = c.lane_bits();
                let b = bits.get(lane as usize).copied().unwrap_or(0);
                Some((b >> (elem.bits() - 1)) & 1 == 1)
            }
            Operand::Value(v) => {
                if visiting.contains(v) {
                    return None; // phi cycle: runtime-dependent
                }
                let inst = match self.f.value(*v).def {
                    ValueDef::Param(_) => return None,
                    ValueDef::Inst(i) => self.f.inst(i),
                };
                visiting.push(*v);
                let r = self.inst_activity(inst, lane, visiting);
                visiting.pop();
                r
            }
        }
    }

    fn inst_activity(
        &self,
        inst: &crate::inst::Inst,
        lane: u32,
        visiting: &mut Vec<ValueId>,
    ) -> Option<bool> {
        match &inst.kind {
            InstKind::Cast { op, val } => {
                let src_ty = self.f.operand_type(val);
                let src_bits = src_ty.elem().map(|e| e.bits()).unwrap_or(0);
                let dst_bits = inst.ty.elem().map(|e| e.bits()).unwrap_or(0);
                match op {
                    // Sign extension replicates the source sign bit.
                    CastOp::SExt => self.activity(val, lane, visiting),
                    // Zero extension forces the new sign bit to 0: a
                    // zext'd mask is never active.
                    CastOp::ZExt if dst_bits > src_bits => Some(false),
                    CastOp::ZExt => self.activity(val, lane, visiting),
                    CastOp::Bitcast
                        if src_ty.lanes() == inst.ty.lanes() && src_bits == dst_bits =>
                    {
                        self.activity(val, lane, visiting)
                    }
                    _ => None,
                }
            }
            InstKind::Bin { op, lhs, rhs } => {
                let a = self.activity(lhs, lane, visiting);
                let b = self.activity(rhs, lane, visiting);
                match op {
                    BinOp::And => match (a, b) {
                        (Some(false), _) | (_, Some(false)) => Some(false),
                        (Some(true), Some(true)) => Some(true),
                        _ => None,
                    },
                    BinOp::Or => match (a, b) {
                        (Some(true), _) | (_, Some(true)) => Some(true),
                        (Some(false), Some(false)) => Some(false),
                        _ => None,
                    },
                    BinOp::Xor => Some(a? ^ b?),
                    _ => None,
                }
            }
            InstKind::Select {
                on_true, on_false, ..
            } => {
                // Without evaluating the condition: known only when both
                // arms agree.
                let t = self.activity(on_true, lane, visiting)?;
                let e = self.activity(on_false, lane, visiting)?;
                if t == e {
                    Some(t)
                } else {
                    None
                }
            }
            InstKind::ShuffleVector { a, b, mask } => {
                let sel = *mask.get(lane as usize)?;
                if sel < 0 {
                    // Undef lanes evaluate to zero bits: inactive.
                    return Some(false);
                }
                let a_lanes = self.f.operand_type(a).lanes();
                let sel = sel as u32;
                if sel < a_lanes {
                    self.activity(a, sel, visiting)
                } else {
                    self.activity(b, sel - a_lanes, visiting)
                }
            }
            InstKind::InsertElement { vec, elt, idx } => {
                let n = inst.ty.lanes().max(1) as u64;
                let c = idx.constant().and_then(|c| c.scalar_bits())?;
                if (c % n) as u32 == lane {
                    self.activity(elt, 0, visiting)
                } else {
                    self.activity(vec, lane, visiting)
                }
            }
            InstKind::ExtractElement { vec, idx } => {
                let n = self.f.operand_type(vec).lanes().max(1) as u64;
                let c = idx.constant().and_then(|c| c.scalar_bits())?;
                self.activity(vec, (c % n) as u32, visiting)
            }
            InstKind::Phi { incomings } => {
                let mut agreed: Option<bool> = None;
                let mut any = false;
                for (pred, op) in incomings {
                    if !self.block_reachable(*pred) {
                        continue; // dead edge: cannot contribute a value
                    }
                    let a = self.activity(op, lane, visiting)?;
                    match agreed {
                        Some(prev) if prev != a => return None,
                        _ => agreed = Some(a),
                    }
                    any = true;
                }
                if any {
                    agreed
                } else {
                    None
                }
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::constant::Constant;
    use crate::inst::ICmpPred;
    use crate::types::{ScalarTy, Type};

    fn maskload(b: &mut FuncBuilder, ptr: Operand, mask: Operand) -> (Operand, InstId) {
        let v = b.call(
            "llvm.x86.avx.maskload.ps.256",
            vec![ptr, mask],
            Type::vec(ScalarTy::F32, 8),
            "v",
        );
        let id = match b.func().value(v.value().unwrap()).def {
            ValueDef::Inst(i) => i,
            _ => unreachable!(),
        };
        (v, id)
    }

    #[test]
    fn constant_mask_lanes_are_known() {
        let mut b = FuncBuilder::new("c", vec![("p".into(), Type::PTR)], Type::Void);
        let entry = b.add_block("entry");
        b.position_at(entry);
        // Lanes 0..4 active (sign bit set), 4..8 inactive.
        let lanes: Vec<i32> = (0..8).map(|i| if i < 4 { -1 } else { 0 }).collect();
        let mask: Operand = Constant::vec_i32(&lanes).into();
        let ptr = b.param(0);
        let (_, call) = maskload(&mut b, ptr, mask);
        b.ret(None);
        let f = b.finish();
        let mr = MaskReach::new(&f);
        let lanes = mr.masked_op_lanes(call).unwrap();
        assert_eq!(&lanes[..4], &[Some(true); 4]);
        assert_eq!(&lanes[4..], &[Some(false); 4]);
        assert_eq!(mr.dead_lanes(call), vec![4, 5, 6, 7]);
    }

    #[test]
    fn sext_of_icmp_is_runtime_dependent() {
        let mut b = FuncBuilder::new(
            "s",
            vec![
                ("p".into(), Type::PTR),
                ("n".into(), Type::vec(ScalarTy::I32, 8)),
            ],
            Type::Void,
        );
        let entry = b.add_block("entry");
        b.position_at(entry);
        let cmp = b.icmp(
            ICmpPred::Slt,
            Constant::lane_ids(8).into(),
            b.param(1),
            "cmp",
        );
        let m = b.cast(CastOp::SExt, cmp, Type::vec(ScalarTy::I32, 8), "m");
        let ptr = b.param(0);
        let (_, call) = maskload(&mut b, ptr, m);
        b.ret(None);
        let f = b.finish();
        let mr = MaskReach::new(&f);
        assert!(mr
            .masked_op_lanes(call)
            .unwrap()
            .iter()
            .all(Option::is_none));
        assert!(mr.dead_lanes(call).is_empty());
    }

    #[test]
    fn zext_mask_is_never_active() {
        let mut b = FuncBuilder::new(
            "z",
            vec![
                ("p".into(), Type::PTR),
                ("c".into(), Type::vec(ScalarTy::I1, 8)),
            ],
            Type::Void,
        );
        let entry = b.add_block("entry");
        b.position_at(entry);
        let m = b.cast(CastOp::ZExt, b.param(1), Type::vec(ScalarTy::I32, 8), "m");
        let ptr = b.param(0);
        let (_, call) = maskload(&mut b, ptr, m);
        b.ret(None);
        let f = b.finish();
        let mr = MaskReach::new(&f);
        assert_eq!(mr.dead_lanes(call), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn and_with_known_false_kills_lane() {
        let mut b = FuncBuilder::new(
            "a",
            vec![
                ("p".into(), Type::PTR),
                ("m".into(), Type::vec(ScalarTy::I32, 8)),
            ],
            Type::Void,
        );
        let entry = b.add_block("entry");
        b.position_at(entry);
        // Constant mask: high half inactive; AND with a runtime mask
        // keeps that proof.
        let lanes: Vec<i32> = (0..8).map(|i| if i < 4 { -1 } else { 0 }).collect();
        let anded = b.bin(
            BinOp::And,
            b.param(1),
            Constant::vec_i32(&lanes).into(),
            "k",
        );
        let ptr = b.param(0);
        let (_, call) = maskload(&mut b, ptr, anded);
        b.ret(None);
        let f = b.finish();
        let mr = MaskReach::new(&f);
        let lanes = mr.masked_op_lanes(call).unwrap();
        assert!(lanes[..4].iter().all(Option::is_none));
        assert_eq!(&lanes[4..], &[Some(false); 4]);
    }

    #[test]
    fn shuffle_undef_lanes_are_inactive() {
        let mut b = FuncBuilder::new(
            "u",
            vec![
                ("p".into(), Type::PTR),
                ("m".into(), Type::vec(ScalarTy::I32, 8)),
            ],
            Type::Void,
        );
        let entry = b.add_block("entry");
        b.position_at(entry);
        let mixed = b.shuffle(
            b.param(1),
            Constant::undef(Type::vec(ScalarTy::I32, 8)).into(),
            vec![0, 1, 2, 3, -1, -1, -1, -1],
            "mixed",
        );
        let ptr = b.param(0);
        let (_, call) = maskload(&mut b, ptr, mixed);
        b.ret(None);
        let f = b.finish();
        let mr = MaskReach::new(&f);
        assert_eq!(mr.dead_lanes(call), vec![4, 5, 6, 7]);
    }

    #[test]
    fn phi_agreement_and_cycles() {
        let mut b = FuncBuilder::new("ph", vec![("p".into(), Type::PTR)], Type::Void);
        let entry = b.add_block("entry");
        let left = b.add_block("left");
        let right = b.add_block("right");
        let join = b.add_block("join");
        b.position_at(entry);
        b.cond_br(Constant::bool(true).into(), left, right);
        b.position_at(left);
        b.br(join);
        b.position_at(right);
        b.br(join);
        b.position_at(join);
        let m = b.phi(Type::vec(ScalarTy::I32, 8), "m");
        b.add_incoming(&m, left, Constant::splat_i32(8, -1).into());
        b.add_incoming(&m, right, Constant::splat_i32(8, -1).into());
        let ptr = b.param(0);
        let (_, call) = maskload(&mut b, ptr, m);
        b.ret(None);
        let f = b.finish();
        let mr = MaskReach::new(&f);
        let lanes = mr.masked_op_lanes(call).unwrap();
        assert!(lanes.iter().all(|a| *a == Some(true)));
    }

    #[test]
    fn masked_op_in_unreachable_block_is_fully_dead() {
        let mut b = FuncBuilder::new(
            "dead",
            vec![
                ("p".into(), Type::PTR),
                ("m".into(), Type::vec(ScalarTy::I32, 8)),
            ],
            Type::Void,
        );
        let entry = b.add_block("entry");
        let orphan = b.add_block("orphan");
        b.position_at(entry);
        b.ret(None);
        b.position_at(orphan);
        let ptr = b.param(0);
        let msk = b.param(1);
        let (_, call) = maskload(&mut b, ptr, msk);
        b.ret(None);
        let f = b.finish();
        let mr = MaskReach::new(&f);
        assert_eq!(mr.dead_lanes(call), (0..8).collect::<Vec<_>>());
    }
}
