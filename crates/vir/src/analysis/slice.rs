//! Forward-slice computation and fault-site categorization (paper §II-C).
//!
//! VULFI classifies every candidate fault site by analyzing the *forward
//! slice* of its Lvalue:
//!
//! 1. **Pure-data sites** — the slice contains no address calculation and no
//!    control-flow instruction.
//! 2. **Control sites** — the slice contains at least one control-flow
//!    instruction (a conditional branch whose direction depends on it).
//! 3. **Address sites** — the slice contains at least one `getelementptr`,
//!    or the value reaches the pointer operand of a load/store.
//!
//! Categories 2 and 3 overlap; category 1 is disjoint from both (paper
//! Fig. 2). The slice follows SSA def-use edges only — flow through memory
//! (store → load of the same address) is not tracked, matching the
//! intraprocedural, register-level analysis a practical LLVM pass performs.
//! The SPMD-C code generator inlines all calls, so intraprocedural slices
//! are complete for the benchmark suite.

use crate::analysis::uses::UseGraph;
use crate::function::Function;
use crate::inst::{InstKind, ValueId};

/// Evidence collected from a value's forward slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SiteFlags {
    /// Slice reaches a `getelementptr` or a load/store pointer operand.
    pub address: bool,
    /// Slice reaches a conditional-branch condition.
    pub control: bool,
}

impl SiteFlags {
    pub fn is_pure_data(self) -> bool {
        !self.address && !self.control
    }
}

/// The three (overlapping) fault-site categories of paper §II-C.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum SiteCategory {
    PureData,
    Control,
    Address,
}

impl SiteCategory {
    pub const ALL: [SiteCategory; 3] = [
        SiteCategory::PureData,
        SiteCategory::Control,
        SiteCategory::Address,
    ];

    pub fn name(self) -> &'static str {
        match self {
            SiteCategory::PureData => "pure-data",
            SiteCategory::Control => "control",
            SiteCategory::Address => "address",
        }
    }

    /// Does a site with these slice flags belong to this category?
    pub fn matches(self, flags: SiteFlags) -> bool {
        match self {
            SiteCategory::PureData => flags.is_pure_data(),
            SiteCategory::Control => flags.control,
            SiteCategory::Address => flags.address,
        }
    }
}

impl std::fmt::Display for SiteCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Forward-slice classifier with memoization across queries.
pub struct SliceAnalysis<'f> {
    f: &'f Function,
    uses: UseGraph,
    cache: Vec<Option<SiteFlags>>,
}

impl<'f> SliceAnalysis<'f> {
    pub fn new(f: &'f Function) -> SliceAnalysis<'f> {
        let uses = UseGraph::build(f);
        SliceAnalysis {
            f,
            cache: vec![None; f.values.len()],
            uses,
        }
    }

    /// Classify the forward slice of `v`.
    pub fn classify(&mut self, v: ValueId) -> SiteFlags {
        if let Some(flags) = self.cache[v.index()] {
            return flags;
        }
        let mut flags = SiteFlags::default();
        let mut visited = vec![false; self.f.values.len()];
        let mut stack = vec![v];
        visited[v.index()] = true;
        while let Some(cur) = stack.pop() {
            if flags.address && flags.control {
                break; // saturated
            }
            if self.uses.feeds_branch(cur) {
                flags.control = true;
            }
            for &user in self.uses.users(cur) {
                let inst = self.f.inst(user);
                match &inst.kind {
                    InstKind::Gep { .. } => flags.address = true,
                    InstKind::Load { ptr } if ptr.value() == Some(cur) => {
                        flags.address = true;
                    }
                    InstKind::Store { ptr, .. } if ptr.value() == Some(cur) => {
                        flags.address = true;
                    }
                    _ => {}
                }
                if let Some(res) = inst.result {
                    if !visited[res.index()] {
                        visited[res.index()] = true;
                        stack.push(res);
                    }
                }
            }
        }
        self.cache[v.index()] = Some(flags);
        flags
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::constant::Constant;
    use crate::inst::{BinOp, ICmpPred};
    use crate::types::Type;

    /// Reproduces the paper's Fig. 3 example:
    /// ```c
    /// void foo(int a[], int n, int x) {
    ///   int s = x;
    ///   for (int i = 0; i < n; i++) { a[i] = a[i] * s; s = s + i; }
    /// }
    /// ```
    /// `i` must classify as both control and address; `s` as pure-data.
    fn fig3() -> (crate::function::Function, ValueId, ValueId) {
        let mut b = FuncBuilder::new(
            "foo",
            vec![
                ("a".into(), Type::PTR),
                ("n".into(), Type::I32),
                ("x".into(), Type::I32),
            ],
            Type::Void,
        );
        let entry = b.add_block("entry");
        let header = b.add_block("header");
        let body = b.add_block("body");
        let exit = b.add_block("exit");
        b.position_at(entry);
        b.br(header);
        b.position_at(header);
        let i = b.phi(Type::I32, "i");
        let s = b.phi(Type::I32, "s");
        let cond = b.icmp(ICmpPred::Slt, i.clone(), b.param(1), "cond");
        b.cond_br(cond, body, exit);
        b.position_at(body);
        let p = b.gep(Type::I32, b.param(0), i.clone(), "p");
        let av = b.load(Type::I32, p.clone(), "av");
        let prod = b.bin(BinOp::Mul, av, s.clone(), "prod");
        b.store(prod, p);
        let s2 = b.bin(BinOp::Add, s.clone(), i.clone(), "s2");
        let i2 = b.bin(BinOp::Add, i.clone(), Constant::i32(1).into(), "i2");
        b.br(header);
        b.add_incoming(&i, entry, Constant::i32(0).into());
        b.add_incoming(&i, body, i2);
        b.add_incoming(&s, entry, b.param(2));
        b.add_incoming(&s, body, s2);
        b.position_at(exit);
        b.ret(None);
        let iv = i.value().unwrap();
        let sv = s.value().unwrap();
        (b.finish(), iv, sv)
    }

    #[test]
    fn fig3_i_is_control_and_address() {
        let (f, i, _) = fig3();
        let mut sa = SliceAnalysis::new(&f);
        let flags = sa.classify(i);
        assert!(flags.control, "i drives the loop exit condition");
        assert!(flags.address, "i indexes into a[]");
        assert!(!flags.is_pure_data());
        assert!(SiteCategory::Control.matches(flags));
        assert!(SiteCategory::Address.matches(flags));
        assert!(!SiteCategory::PureData.matches(flags));
    }

    #[test]
    fn fig3_s_is_pure_data() {
        let (f, _, s) = fig3();
        let mut sa = SliceAnalysis::new(&f);
        let flags = sa.classify(s);
        assert!(flags.is_pure_data(), "s never reaches control or addresses");
        assert!(SiteCategory::PureData.matches(flags));
    }

    #[test]
    fn pointer_operand_of_load_counts_as_address() {
        let mut b = FuncBuilder::new("g", vec![("p".into(), Type::PTR)], Type::I32);
        let entry = b.add_block("entry");
        b.position_at(entry);
        let v = b.load(Type::I32, b.param(0), "v");
        b.ret(Some(v));
        let f = b.finish();
        let mut sa = SliceAnalysis::new(&f);
        let flags = sa.classify(f.param_value(0));
        assert!(flags.address);
        assert!(!flags.control);
    }

    #[test]
    fn value_stored_as_data_is_not_address() {
        let mut b = FuncBuilder::new(
            "h",
            vec![("p".into(), Type::PTR), ("x".into(), Type::I32)],
            Type::Void,
        );
        let entry = b.add_block("entry");
        b.position_at(entry);
        let doubled = b.bin(BinOp::Add, b.param(1), b.param(1), "d");
        b.store(doubled.clone(), b.param(0));
        b.ret(None);
        let f = b.finish();
        let mut sa = SliceAnalysis::new(&f);
        let flags = sa.classify(doubled.value().unwrap());
        assert!(flags.is_pure_data(), "stored *value* is data, not address");
    }

    #[test]
    fn categories_overlap_like_fig2() {
        // Fig. 2: control and address overlap; pure-data is disjoint.
        let flags_both = SiteFlags {
            address: true,
            control: true,
        };
        assert!(SiteCategory::Control.matches(flags_both));
        assert!(SiteCategory::Address.matches(flags_both));
        assert!(!SiteCategory::PureData.matches(flags_both));
        let flags_none = SiteFlags::default();
        assert!(SiteCategory::PureData.matches(flags_none));
    }
}
