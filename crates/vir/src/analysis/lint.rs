//! Named static diagnostics over VIR (`vulfi lint`).
//!
//! Each lint has a stable ID (`VL001`..) so baselines, `--deny` lists
//! and CI gates can reference findings across versions. The catalog:
//!
//! | id    | name                      | fires on |
//! |-------|---------------------------|----------|
//! | VL001 | uninitialized-read        | a `load` from a non-escaping `alloca` that is never stored to |
//! | VL002 | dead-store                | a non-escaping `alloca` that is stored to but never read |
//! | VL003 | always-false-mask         | a masked memop whose mask is provably inactive on every lane |
//! | VL004 | uniform-op-in-vector-loop | vector arithmetic inside a loop whose operands are all lane-uniform |
//! | VL005 | unused-mask-producer      | a vector `i1` (mask) value with no users |
//!
//! All five are resiliency-relevant: uninitialized reads and dead stores
//! are classic silent-corruption amplifiers, an always-false mask means
//! a masked op contributes nothing but fault surface, uniform vector
//! work multiplies a scalar fault site across lanes for no throughput,
//! and an unused mask producer is pure injectable state.
//!
//! Definitions are deliberately conservative (prove, don't guess): the
//! committed baseline expects all nine suite benchmarks to be clean.

use crate::analysis::loops::find_loops;
use crate::analysis::maskreach::MaskReach;
use crate::analysis::uses::UseGraph;

use crate::function::{Function, Module, ValueDef};
use crate::inst::{InstId, InstKind, Operand, ValueId};
use crate::intrinsics::{self, Intrinsic};

/// Catalog entry: stable ID plus human name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LintInfo {
    pub id: &'static str,
    pub name: &'static str,
    pub summary: &'static str,
}

/// The full lint catalog, in ID order.
pub const LINTS: [LintInfo; 5] = [
    LintInfo {
        id: "VL001",
        name: "uninitialized-read",
        summary: "load from a stack slot no path ever stores to",
    },
    LintInfo {
        id: "VL002",
        name: "dead-store",
        summary: "stack slot written but never read",
    },
    LintInfo {
        id: "VL003",
        name: "always-false-mask",
        summary: "masked op whose mask is inactive on every lane",
    },
    LintInfo {
        id: "VL004",
        name: "uniform-op-in-vector-loop",
        summary: "vector op on lane-uniform operands inside a loop",
    },
    LintInfo {
        id: "VL005",
        name: "unused-mask-producer",
        summary: "mask value computed but never used",
    },
];

/// Look a lint up by ID or name.
pub fn lint_by_id(key: &str) -> Option<&'static LintInfo> {
    LINTS.iter().find(|l| l.id == key || l.name == key)
}

/// One diagnostic instance.
#[derive(Debug, Clone, PartialEq)]
pub struct LintFinding {
    pub id: &'static str,
    pub name: &'static str,
    pub function: String,
    /// Block containing the offending instruction (empty for
    /// function-level findings).
    pub block: String,
    /// Display name of the offending value, when it has one.
    pub value: String,
    pub message: String,
}

impl std::fmt::Display for LintFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} [{}] {}: {}",
            self.id, self.name, self.function, self.message
        )?;
        if !self.block.is_empty() {
            write!(f, " (in block '{}')", self.block)?;
        }
        Ok(())
    }
}

/// Run every lint over every function of the module.
pub fn lint_module(m: &Module) -> Vec<LintFinding> {
    let mut out = Vec::new();
    for f in &m.functions {
        out.extend(lint_function(f));
    }
    out
}

/// Run every lint over one function. Findings come out in catalog order,
/// each lint scanning the layout order — deterministic for baselines.
pub fn lint_function(f: &Function) -> Vec<LintFinding> {
    let uses = UseGraph::build(f);
    let stacks = StackSlots::collect(f, &uses);
    let mut out = Vec::new();
    uninitialized_reads(f, &stacks, &mut out);
    dead_stores(f, &stacks, &mut out);
    always_false_masks(f, &mut out);
    uniform_ops_in_vector_loops(f, &mut out);
    unused_mask_producers(f, &uses, &mut out);
    out
}

fn finding(
    f: &Function,
    info: &LintInfo,
    block: Option<crate::inst::BlockId>,
    value: Option<ValueId>,
    message: String,
) -> LintFinding {
    LintFinding {
        id: info.id,
        name: info.name,
        function: f.name.clone(),
        block: block.map(|b| f.block(b).name.clone()).unwrap_or_default(),
        value: value.map(|v| f.value_display_name(v)).unwrap_or_default(),
        message,
    }
}

/// Per-alloca use summary for the memory lints. A slot only participates
/// when its address provably never escapes the gep/load/store idiom —
/// once a pointer is passed to a call, stored as data, returned, or mixed
/// into arithmetic, nothing can be concluded about the memory.
struct StackSlots {
    /// (alloca value, escaped, loaded, stored, load insts)
    slots: Vec<SlotUse>,
}

struct SlotUse {
    alloca: ValueId,
    escaped: bool,
    loaded: bool,
    stored: bool,
    loads: Vec<InstId>,
}

impl StackSlots {
    fn collect(f: &Function, uses: &UseGraph) -> StackSlots {
        let mut slots = Vec::new();
        for (_, ii) in f.placed_insts() {
            let inst = f.inst(ii);
            if !matches!(inst.kind, InstKind::Alloca { .. }) {
                continue;
            }
            let Some(root) = inst.result else { continue };
            // Grow the set of pointers derived from this alloca through
            // gep chains, then classify every use of every derived value.
            let mut derived = vec![root];
            let mut i = 0;
            let mut slot = SlotUse {
                alloca: root,
                escaped: false,
                loaded: false,
                stored: false,
                loads: Vec::new(),
            };
            while i < derived.len() {
                let p = derived[i];
                i += 1;
                if !uses.term_uses(p).is_empty() {
                    slot.escaped = true; // returned or branched on
                }
                for &user in uses.users(p) {
                    let u = f.inst(user);
                    match &u.kind {
                        InstKind::Gep { base, .. } if base.value() == Some(p) => {
                            if let Some(r) = u.result {
                                if !derived.contains(&r) {
                                    derived.push(r);
                                }
                            }
                        }
                        InstKind::Load { ptr } if ptr.value() == Some(p) => {
                            slot.loaded = true;
                            slot.loads.push(user);
                        }
                        InstKind::Store { val, ptr } => {
                            if ptr.value() == Some(p) {
                                slot.stored = true;
                            }
                            if val.value() == Some(p) {
                                slot.escaped = true; // address stored as data
                            }
                        }
                        InstKind::Call { callee, args } => {
                            match intrinsics::parse(callee) {
                                Some(
                                    intr @ (Intrinsic::MaskLoad { .. }
                                    | Intrinsic::MaskStore { .. }),
                                ) => {
                                    // Arg 0 is the pointer; classify like
                                    // load/store. Any other position (the
                                    // mask or stored value) escapes.
                                    let is_ptr = args.first().is_some_and(|a| a.value() == Some(p));
                                    if is_ptr {
                                        match intr {
                                            Intrinsic::MaskLoad { .. } => slot.loaded = true,
                                            _ => slot.stored = true,
                                        }
                                    }
                                    if args.iter().skip(1).any(|a| a.value() == Some(p)) {
                                        slot.escaped = true;
                                    }
                                }
                                _ => slot.escaped = true, // pointer leaves the function
                            }
                        }
                        _ => slot.escaped = true, // arithmetic, phi, select, ...
                    }
                }
            }
            slots.push(slot);
        }
        StackSlots { slots }
    }
}

/// VL001: loads from a slot that nothing stores to read garbage.
fn uninitialized_reads(f: &Function, stacks: &StackSlots, out: &mut Vec<LintFinding>) {
    for slot in &stacks.slots {
        if slot.escaped || slot.stored || !slot.loaded {
            continue;
        }
        for &load in &slot.loads {
            let value = f.inst(load).result;
            out.push(finding(
                f,
                &LINTS[0],
                f.block_of(load),
                value,
                format!(
                    "load of '{}' reads stack memory that is never stored to",
                    f.value_display_name(slot.alloca)
                ),
            ));
        }
    }
}

/// VL002: a slot that is only ever written is dead weight (and dead
/// fault surface).
fn dead_stores(f: &Function, stacks: &StackSlots, out: &mut Vec<LintFinding>) {
    for slot in &stacks.slots {
        if slot.escaped || slot.loaded || !slot.stored {
            continue;
        }
        out.push(finding(
            f,
            &LINTS[1],
            None,
            Some(slot.alloca),
            format!(
                "stores to '{}' are never read back",
                f.value_display_name(slot.alloca)
            ),
        ));
    }
}

/// VL003: a masked memop whose mask is inactive on every lane on every
/// path executes as a no-op.
fn always_false_masks(f: &Function, out: &mut Vec<LintFinding>) {
    let mr = MaskReach::new(f);
    for (bi, ii) in f.placed_insts() {
        if !mr.block_reachable(bi) {
            continue;
        }
        let Some(lanes) = mr.masked_op_lanes(ii) else {
            continue;
        };
        if !lanes.is_empty() && lanes.iter().all(|a| *a == Some(false)) {
            let InstKind::Call { callee, .. } = &f.inst(ii).kind else {
                continue;
            };
            out.push(finding(
                f,
                &LINTS[2],
                Some(bi),
                f.inst(ii).result,
                format!(
                    "mask of '{callee}' is provably inactive on all {} lanes",
                    lanes.len()
                ),
            ));
        }
    }
}

/// Is every lane of this operand provably the same value?
fn is_uniform(f: &Function, op: &Operand, depth: u32) -> bool {
    if depth > 8 {
        return false;
    }
    match op {
        Operand::Const(c) => {
            if !c.ty.is_vector() {
                return true;
            }
            let lanes = c.lane_bits();
            lanes.windows(2).all(|w| w[0] == w[1])
        }
        Operand::Value(v) => {
            let ValueDef::Inst(ii) = f.value(*v).def else {
                return false;
            };
            match &f.inst(ii).kind {
                InstKind::ShuffleVector { mask, .. } => {
                    // A splat: every lane selects the same source lane.
                    !mask.is_empty() && mask.iter().all(|&m| m >= 0 && m == mask[0])
                }
                InstKind::Cast { val, .. } => is_uniform(f, val, depth + 1),
                InstKind::Bin { lhs, rhs, .. } => {
                    is_uniform(f, lhs, depth + 1) && is_uniform(f, rhs, depth + 1)
                }
                _ => false,
            }
        }
    }
}

/// VL004: vector arithmetic on all-uniform operands inside a loop does
/// scalar work Vl times over (and multiplies the fault surface by Vl).
fn uniform_ops_in_vector_loops(f: &Function, out: &mut Vec<LintFinding>) {
    let loops = find_loops(f);
    if loops.is_empty() {
        return;
    }
    let in_loop: Vec<bool> = (0..f.blocks.len())
        .map(|b| {
            loops
                .iter()
                .any(|l| l.contains(crate::inst::BlockId(b as u32)))
        })
        .collect();
    for (bi, ii) in f.placed_insts() {
        if !in_loop[bi.index()] {
            continue;
        }
        let inst = f.inst(ii);
        let computes = matches!(
            inst.kind,
            InstKind::Bin { .. } | InstKind::ICmp { .. } | InstKind::FCmp { .. }
        );
        if !computes || !inst.ty.is_vector() {
            continue;
        }
        if inst.operands().iter().all(|op| is_uniform(f, op, 0)) {
            out.push(finding(
                f,
                &LINTS[3],
                Some(bi),
                inst.result,
                format!(
                    "vector '{}' in a loop computes the same value in every lane",
                    inst.opcode()
                ),
            ));
        }
    }
}

/// VL005: a computed mask nobody consumes.
fn unused_mask_producers(f: &Function, uses: &UseGraph, out: &mut Vec<LintFinding>) {
    for (bi, ii) in f.placed_insts() {
        let inst = f.inst(ii);
        let Some(r) = inst.result else { continue };
        let is_mask = matches!(
            inst.ty,
            crate::types::Type::Vector(crate::types::ScalarTy::I1, _)
        );
        if is_mask && uses.is_dead(r) {
            out.push(finding(
                f,
                &LINTS[4],
                Some(bi),
                Some(r),
                format!(
                    "mask '{}' is computed but never used",
                    f.value_display_name(r)
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FuncBuilder;
    use crate::constant::Constant;
    use crate::inst::{BinOp, ICmpPred};
    use crate::types::{ScalarTy, Type};

    fn ids(findings: &[LintFinding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.id).collect()
    }

    #[test]
    fn catalog_ids_are_stable() {
        assert_eq!(
            LINTS.iter().map(|l| l.id).collect::<Vec<_>>(),
            ["VL001", "VL002", "VL003", "VL004", "VL005"]
        );
        assert_eq!(lint_by_id("VL003").unwrap().name, "always-false-mask");
        assert_eq!(lint_by_id("dead-store").unwrap().id, "VL002");
        assert!(lint_by_id("VL999").is_none());
    }

    #[test]
    fn uninitialized_read_fires_and_store_silences_it() {
        let mut b = FuncBuilder::new("r", vec![], Type::I32);
        let entry = b.add_block("entry");
        b.position_at(entry);
        let p = b.alloca(Type::I32, Constant::i64(1).into(), "p");
        let v = b.load(Type::I32, p, "v");
        b.ret(Some(v));
        let f = b.finish();
        assert_eq!(ids(&lint_function(&f)), ["VL001"]);

        let mut b = FuncBuilder::new("w", vec![("x".into(), Type::I32)], Type::I32);
        let entry = b.add_block("entry");
        b.position_at(entry);
        let p = b.alloca(Type::I32, Constant::i64(1).into(), "p");
        b.store(b.param(0), p.clone());
        let v = b.load(Type::I32, p, "v");
        b.ret(Some(v));
        let f = b.finish();
        assert!(lint_function(&f).is_empty());
    }

    #[test]
    fn dead_store_fires_only_without_loads() {
        let mut b = FuncBuilder::new("ds", vec![("x".into(), Type::I32)], Type::Void);
        let entry = b.add_block("entry");
        b.position_at(entry);
        let p = b.alloca(Type::I32, Constant::i64(1).into(), "p");
        b.store(b.param(0), p);
        b.ret(None);
        let f = b.finish();
        assert_eq!(ids(&lint_function(&f)), ["VL002"]);
    }

    #[test]
    fn escaping_alloca_is_exempt() {
        // Passing the pointer to an unknown callee hides both reads and
        // writes: neither VL001 nor VL002 may fire.
        let mut b = FuncBuilder::new("esc", vec![], Type::I32);
        let entry = b.add_block("entry");
        b.position_at(entry);
        let p = b.alloca(Type::I32, Constant::i64(1).into(), "p");
        b.call("extern.init", vec![p.clone()], Type::Void, "");
        let v = b.load(Type::I32, p, "v");
        b.ret(Some(v));
        let f = b.finish();
        assert!(lint_function(&f).is_empty());
    }

    #[test]
    fn always_false_mask_fires_on_zero_mask() {
        let mut b = FuncBuilder::new("afm", vec![("p".into(), Type::PTR)], Type::Void);
        let entry = b.add_block("entry");
        b.position_at(entry);
        let zero: Operand = Constant::zero(Type::vec(ScalarTy::F32, 8)).into();
        let v = b.call(
            "llvm.x86.avx.maskload.ps.256",
            vec![b.param(0), zero],
            Type::vec(ScalarTy::F32, 8),
            "v",
        );
        b.ret(None);
        let _ = v;
        let f = b.finish();
        assert_eq!(ids(&lint_function(&f)), ["VL003"]);
    }

    #[test]
    fn uniform_vector_op_in_loop_fires() {
        let mut b = FuncBuilder::new(
            "u",
            vec![("x".into(), Type::F32), ("p".into(), Type::PTR)],
            Type::Void,
        );
        let entry = b.add_block("entry");
        let body = b.add_block("body");
        let exit = b.add_block("exit");
        b.position_at(entry);
        let splat = b.broadcast(b.param(0), 8, "splat");
        b.br(body);
        b.position_at(body);
        let i = b.phi(Type::I32, "i");
        // Uniform vector multiply inside the loop: every lane computes
        // x*x.
        let sq = b.bin(BinOp::FMul, splat.clone(), splat.clone(), "sq");
        b.store(sq, b.param(1));
        let i2 = b.bin(BinOp::Add, i.clone(), Constant::i32(1).into(), "i2");
        let c = b.icmp(ICmpPred::Slt, i2.clone(), Constant::i32(8).into(), "c");
        b.add_incoming(&i, entry, Constant::i32(0).into());
        b.add_incoming(&i, body, i2);
        b.cond_br(c, body, exit);
        b.position_at(exit);
        b.ret(None);
        let f = b.finish();
        assert_eq!(ids(&lint_function(&f)), ["VL004"]);
    }

    #[test]
    fn varying_vector_op_in_loop_is_clean() {
        let mut b = FuncBuilder::new(
            "v",
            vec![
                ("v".into(), Type::vec(ScalarTy::F32, 8)),
                ("p".into(), Type::PTR),
            ],
            Type::Void,
        );
        let entry = b.add_block("entry");
        let body = b.add_block("body");
        let exit = b.add_block("exit");
        b.position_at(entry);
        b.br(body);
        b.position_at(body);
        let i = b.phi(Type::I32, "i");
        let sq = b.bin(BinOp::FMul, b.param(0), b.param(0), "sq");
        b.store(sq, b.param(1));
        let i2 = b.bin(BinOp::Add, i.clone(), Constant::i32(1).into(), "i2");
        let c = b.icmp(ICmpPred::Slt, i2.clone(), Constant::i32(8).into(), "c");
        b.add_incoming(&i, entry, Constant::i32(0).into());
        b.add_incoming(&i, body, i2);
        b.cond_br(c, body, exit);
        b.position_at(exit);
        b.ret(None);
        let f = b.finish();
        assert!(lint_function(&f).is_empty());
    }

    #[test]
    fn unused_mask_producer_fires() {
        let mut b = FuncBuilder::new(
            "um",
            vec![("a".into(), Type::vec(ScalarTy::I32, 8))],
            Type::Void,
        );
        let entry = b.add_block("entry");
        b.position_at(entry);
        let _m = b.icmp(
            ICmpPred::Slt,
            b.param(0),
            Constant::splat_i32(8, 0).into(),
            "m",
        );
        b.ret(None);
        let f = b.finish();
        assert_eq!(ids(&lint_function(&f)), ["VL005"]);
    }

    #[test]
    fn display_includes_id_and_function() {
        let mut b = FuncBuilder::new("ds", vec![("x".into(), Type::I32)], Type::Void);
        let entry = b.add_block("entry");
        b.position_at(entry);
        let p = b.alloca(Type::I32, Constant::i64(1).into(), "p");
        b.store(b.param(0), p);
        b.ret(None);
        let f = b.finish();
        let out = lint_function(&f);
        let s = out[0].to_string();
        assert!(s.starts_with("VL002 [dead-store] ds:"), "{s}");
    }
}
