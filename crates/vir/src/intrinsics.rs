//! The intrinsic registry.
//!
//! VULFI "maintains an inbuilt list of x86 intrinsics, which classifies
//! whether any given intrinsic performs a masked vector operation" (paper
//! §II-D). This module is that list: it maps intrinsic names to structured
//! descriptors, including which argument carries the execution mask.
//!
//! Name families:
//! - AVX masked f32 ops, exactly as in paper Fig. 5:
//!   `llvm.x86.avx.maskload.ps.256`, `llvm.x86.avx.maskstore.ps.256`
//!   (8 × f32, mask = `<8 x float>` with the sign bit selecting the lane).
//! - AVX2 masked i32 ops: `llvm.x86.avx2.maskload.d.256`,
//!   `llvm.x86.avx2.maskstore.d.256` (8 × i32, sign-bit mask).
//! - SSE4 pseudo-intrinsics `llvm.x86.sse41.maskload.ps` / `.maskstore.ps`
//!   / `.maskload.d` / `.maskstore.d` (4 lanes). Real SSE4 has no masked
//!   load/store; ISPC emulates them with blends. We register dedicated
//!   pseudo-intrinsics so the SSE code path stays structurally identical to
//!   the AVX one, which is what the paper's AVX-vs-SSE comparison needs.
//! - Generic math (`llvm.sqrt.f32`, `llvm.sqrt.v8f32`, `llvm.exp.*`, ...),
//!   elementwise over vectors.
//! - Mask reductions: `llvm.x86.avx.movmsk.ps.256`, `llvm.x86.sse.movmsk.ps`
//!   (sign-bit bitmask of a float vector), and the SPMD helper
//!   `llvm.vulfi.mask.any.vNi1` used to drive varying loops.

use crate::types::{ScalarTy, Type};

/// Elementwise math operations shared by scalar and vector intrinsics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MathOp {
    Sqrt,
    Exp,
    Log,
    Sin,
    Cos,
    Fabs,
    Floor,
    Ceil,
    /// Two-argument `pow`.
    Pow,
    /// Two-argument IEEE minNum.
    MinNum,
    /// Two-argument IEEE maxNum.
    MaxNum,
}

impl MathOp {
    pub fn name(self) -> &'static str {
        match self {
            MathOp::Sqrt => "sqrt",
            MathOp::Exp => "exp",
            MathOp::Log => "log",
            MathOp::Sin => "sin",
            MathOp::Cos => "cos",
            MathOp::Fabs => "fabs",
            MathOp::Floor => "floor",
            MathOp::Ceil => "ceil",
            MathOp::Pow => "pow",
            MathOp::MinNum => "minnum",
            MathOp::MaxNum => "maxnum",
        }
    }

    pub fn arity(self) -> usize {
        match self {
            MathOp::Pow | MathOp::MinNum | MathOp::MaxNum => 2,
            _ => 1,
        }
    }

    fn from_name(s: &str) -> Option<MathOp> {
        Some(match s {
            "sqrt" => MathOp::Sqrt,
            "exp" => MathOp::Exp,
            "log" => MathOp::Log,
            "sin" => MathOp::Sin,
            "cos" => MathOp::Cos,
            "fabs" => MathOp::Fabs,
            "floor" => MathOp::Floor,
            "ceil" => MathOp::Ceil,
            "pow" => MathOp::Pow,
            "minnum" => MathOp::MinNum,
            "maxnum" => MathOp::MaxNum,
            _ => return None,
        })
    }
}

/// A recognized intrinsic with its structural parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Intrinsic {
    /// Masked vector load: `(ptr, mask) -> <lanes x elem>`. Lanes whose mask
    /// is inactive produce 0.0/0 and *do not touch memory*.
    MaskLoad { lanes: u32, elem: ScalarTy },
    /// Masked vector store: `(ptr, mask, value) -> void`. Inactive lanes do
    /// not touch memory.
    MaskStore { lanes: u32, elem: ScalarTy },
    /// Elementwise math, scalar or vector according to `ty`.
    Math { op: MathOp, ty: Type },
    /// Sign-bit bitmask of a float vector: `(<lanes x f32>) -> i32`.
    Movmsk { lanes: u32 },
    /// OR-reduction of an i1 vector: `(<lanes x i1>) -> i1`. ISPC's
    /// `any(mask)` used for varying loop back-edges.
    MaskAny { lanes: u32 },
    /// AND-reduction of an i1 vector: `(<lanes x i1>) -> i1`.
    MaskAll { lanes: u32 },
}

impl Intrinsic {
    /// Result type of the intrinsic.
    pub fn result_type(&self) -> Type {
        match *self {
            Intrinsic::MaskLoad { lanes, elem } => Type::vec(elem, lanes),
            Intrinsic::MaskStore { .. } => Type::Void,
            Intrinsic::Math { ty, .. } => ty,
            Intrinsic::Movmsk { .. } => Type::I32,
            Intrinsic::MaskAny { .. } | Intrinsic::MaskAll { .. } => Type::I1,
        }
    }

    /// For masked memory operations: the index of the mask argument.
    /// Mirrors the AVX intrinsic signatures used in paper Fig. 5.
    pub fn mask_arg(&self) -> Option<usize> {
        match self {
            Intrinsic::MaskLoad { .. } => Some(1),
            Intrinsic::MaskStore { .. } => Some(1),
            _ => None,
        }
    }

    /// For `MaskStore`: the index of the stored-value argument.
    pub fn store_value_arg(&self) -> Option<usize> {
        match self {
            Intrinsic::MaskStore { .. } => Some(2),
            _ => None,
        }
    }

    pub fn is_masked_memop(&self) -> bool {
        matches!(
            self,
            Intrinsic::MaskLoad { .. } | Intrinsic::MaskStore { .. }
        )
    }
}

/// The canonical name for a masked load on the given target shape.
pub fn maskload_name(lanes: u32, elem: ScalarTy) -> String {
    match (lanes, elem) {
        (8, ScalarTy::F32) => "llvm.x86.avx.maskload.ps.256".to_string(),
        (8, ScalarTy::I32) => "llvm.x86.avx2.maskload.d.256".to_string(),
        (4, ScalarTy::F32) => "llvm.x86.sse41.maskload.ps".to_string(),
        (4, ScalarTy::I32) => "llvm.x86.sse41.maskload.d".to_string(),
        _ => format!("llvm.vulfi.maskload.v{}{}", lanes, elem.suffix()),
    }
}

/// The canonical name for a masked store on the given target shape.
pub fn maskstore_name(lanes: u32, elem: ScalarTy) -> String {
    match (lanes, elem) {
        (8, ScalarTy::F32) => "llvm.x86.avx.maskstore.ps.256".to_string(),
        (8, ScalarTy::I32) => "llvm.x86.avx2.maskstore.d.256".to_string(),
        (4, ScalarTy::F32) => "llvm.x86.sse41.maskstore.ps".to_string(),
        (4, ScalarTy::I32) => "llvm.x86.sse41.maskstore.d".to_string(),
        _ => format!("llvm.vulfi.maskstore.v{}{}", lanes, elem.suffix()),
    }
}

/// Name of an elementwise math intrinsic for the given type
/// (`llvm.sqrt.f32`, `llvm.exp.v8f32`, ...).
pub fn math_name(op: MathOp, ty: Type) -> String {
    format!("llvm.{}.{}", op.name(), ty.intrinsic_suffix())
}

/// Name of the mask-any reduction for a lane count.
pub fn mask_any_name(lanes: u32) -> String {
    format!("llvm.vulfi.mask.any.v{lanes}i1")
}

/// Name of the movmsk intrinsic for a float-vector lane count.
pub fn movmsk_name(lanes: u32) -> String {
    match lanes {
        8 => "llvm.x86.avx.movmsk.ps.256".to_string(),
        4 => "llvm.x86.sse.movmsk.ps".to_string(),
        _ => format!("llvm.vulfi.movmsk.v{lanes}f32"),
    }
}

/// Parse a type suffix like `f32`, `i32`, `v8f32`, `v4i1`.
fn parse_ty_suffix(s: &str) -> Option<Type> {
    fn scalar(s: &str) -> Option<ScalarTy> {
        Some(match s {
            "i1" => ScalarTy::I1,
            "i8" => ScalarTy::I8,
            "i16" => ScalarTy::I16,
            "i32" => ScalarTy::I32,
            "i64" => ScalarTy::I64,
            "f32" => ScalarTy::F32,
            "f64" => ScalarTy::F64,
            "p0" => ScalarTy::Ptr,
            _ => return None,
        })
    }
    if let Some(rest) = s.strip_prefix('v') {
        let split = rest.find(|c: char| !c.is_ascii_digit())?;
        let lanes: u32 = rest[..split].parse().ok()?;
        if lanes == 0 {
            return None;
        }
        return Some(Type::vec(scalar(&rest[split..])?, lanes));
    }
    scalar(s).map(Type::Scalar)
}

/// Recognize an intrinsic by name. Returns `None` for non-`llvm.` names and
/// unknown intrinsics (the interpreter traps on calls to the latter).
pub fn parse(name: &str) -> Option<Intrinsic> {
    let body = name.strip_prefix("llvm.")?;

    // Exact x86 names first (the paper's Fig. 5 spellings).
    match body {
        "x86.avx.maskload.ps.256" => {
            return Some(Intrinsic::MaskLoad {
                lanes: 8,
                elem: ScalarTy::F32,
            })
        }
        "x86.avx.maskstore.ps.256" => {
            return Some(Intrinsic::MaskStore {
                lanes: 8,
                elem: ScalarTy::F32,
            })
        }
        "x86.avx2.maskload.d.256" => {
            return Some(Intrinsic::MaskLoad {
                lanes: 8,
                elem: ScalarTy::I32,
            })
        }
        "x86.avx2.maskstore.d.256" => {
            return Some(Intrinsic::MaskStore {
                lanes: 8,
                elem: ScalarTy::I32,
            })
        }
        "x86.sse41.maskload.ps" => {
            return Some(Intrinsic::MaskLoad {
                lanes: 4,
                elem: ScalarTy::F32,
            })
        }
        "x86.sse41.maskstore.ps" => {
            return Some(Intrinsic::MaskStore {
                lanes: 4,
                elem: ScalarTy::F32,
            })
        }
        "x86.sse41.maskload.d" => {
            return Some(Intrinsic::MaskLoad {
                lanes: 4,
                elem: ScalarTy::I32,
            })
        }
        "x86.sse41.maskstore.d" => {
            return Some(Intrinsic::MaskStore {
                lanes: 4,
                elem: ScalarTy::I32,
            })
        }
        "x86.avx.movmsk.ps.256" => return Some(Intrinsic::Movmsk { lanes: 8 }),
        "x86.sse.movmsk.ps" => return Some(Intrinsic::Movmsk { lanes: 4 }),
        _ => {}
    }

    // Generic vulfi.* fallbacks: maskload/maskstore/mask.any/movmsk.
    if let Some(rest) = body.strip_prefix("vulfi.") {
        if let Some(sfx) = rest.strip_prefix("maskload.") {
            if let Some(Type::Vector(elem, lanes)) = parse_ty_suffix(sfx) {
                return Some(Intrinsic::MaskLoad { lanes, elem });
            }
            return None;
        }
        if let Some(sfx) = rest.strip_prefix("maskstore.") {
            if let Some(Type::Vector(elem, lanes)) = parse_ty_suffix(sfx) {
                return Some(Intrinsic::MaskStore { lanes, elem });
            }
            return None;
        }
        if let Some(sfx) = rest.strip_prefix("mask.any.") {
            if let Some(Type::Vector(ScalarTy::I1, lanes)) = parse_ty_suffix(sfx) {
                return Some(Intrinsic::MaskAny { lanes });
            }
            return None;
        }
        if let Some(sfx) = rest.strip_prefix("mask.all.") {
            if let Some(Type::Vector(ScalarTy::I1, lanes)) = parse_ty_suffix(sfx) {
                return Some(Intrinsic::MaskAll { lanes });
            }
            return None;
        }
        if let Some(sfx) = rest.strip_prefix("movmsk.") {
            if let Some(Type::Vector(ScalarTy::F32, lanes)) = parse_ty_suffix(sfx) {
                return Some(Intrinsic::Movmsk { lanes });
            }
            return None;
        }
        return None;
    }

    // Math intrinsics: llvm.<op>.<tysuffix>.
    let (op_name, ty_sfx) = body.rsplit_once('.')?;
    let op = MathOp::from_name(op_name)?;
    let ty = parse_ty_suffix(ty_sfx)?;
    if !ty.is_float() {
        return None;
    }
    Some(Intrinsic::Math { op, ty })
}

/// True when `name` denotes a *masked* vector operation — the property the
/// instrumentation pass consults to decide whether a lane is a valid fault
/// site (paper §II-D).
pub fn is_masked_op(name: &str) -> bool {
    parse(name).is_some_and(|i| i.is_masked_memop())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fig5_names_parse() {
        assert_eq!(
            parse("llvm.x86.avx.maskload.ps.256"),
            Some(Intrinsic::MaskLoad {
                lanes: 8,
                elem: ScalarTy::F32
            })
        );
        assert_eq!(
            parse("llvm.x86.avx.maskstore.ps.256"),
            Some(Intrinsic::MaskStore {
                lanes: 8,
                elem: ScalarTy::F32
            })
        );
    }

    #[test]
    fn sse_pseudo_names_parse() {
        assert_eq!(
            parse("llvm.x86.sse41.maskload.ps"),
            Some(Intrinsic::MaskLoad {
                lanes: 4,
                elem: ScalarTy::F32
            })
        );
        assert_eq!(
            parse("llvm.x86.sse41.maskstore.d"),
            Some(Intrinsic::MaskStore {
                lanes: 4,
                elem: ScalarTy::I32
            })
        );
    }

    #[test]
    fn canonical_names_roundtrip() {
        for (lanes, elem) in [
            (8, ScalarTy::F32),
            (8, ScalarTy::I32),
            (4, ScalarTy::F32),
            (4, ScalarTy::I32),
            (16, ScalarTy::F32),
        ] {
            let ld = maskload_name(lanes, elem);
            assert_eq!(
                parse(&ld),
                Some(Intrinsic::MaskLoad { lanes, elem }),
                "{ld}"
            );
            let st = maskstore_name(lanes, elem);
            assert_eq!(
                parse(&st),
                Some(Intrinsic::MaskStore { lanes, elem }),
                "{st}"
            );
        }
    }

    #[test]
    fn math_intrinsics_parse() {
        assert_eq!(
            parse("llvm.sqrt.f32"),
            Some(Intrinsic::Math {
                op: MathOp::Sqrt,
                ty: Type::F32
            })
        );
        assert_eq!(
            parse("llvm.exp.v8f32"),
            Some(Intrinsic::Math {
                op: MathOp::Exp,
                ty: Type::vec(ScalarTy::F32, 8)
            })
        );
        assert_eq!(
            parse(&math_name(MathOp::Pow, Type::vec(ScalarTy::F32, 4))),
            Some(Intrinsic::Math {
                op: MathOp::Pow,
                ty: Type::vec(ScalarTy::F32, 4)
            })
        );
        // Integer math is not a thing.
        assert_eq!(parse("llvm.sqrt.i32"), None);
    }

    #[test]
    fn reductions_parse() {
        assert_eq!(
            parse(&mask_any_name(8)),
            Some(Intrinsic::MaskAny { lanes: 8 })
        );
        assert_eq!(parse(&movmsk_name(8)), Some(Intrinsic::Movmsk { lanes: 8 }));
        assert_eq!(parse(&movmsk_name(4)), Some(Intrinsic::Movmsk { lanes: 4 }));
    }

    #[test]
    fn unknown_names_rejected() {
        assert_eq!(parse("not.an.intrinsic"), None);
        assert_eq!(parse("llvm.bogus.f32"), None);
        assert_eq!(parse("llvm.vulfi.maskload.f32"), None); // not a vector
        assert_eq!(parse("llvm.vulfi.mask.any.v8f32"), None); // not i1
    }

    #[test]
    fn masked_op_classification() {
        assert!(is_masked_op("llvm.x86.avx.maskload.ps.256"));
        assert!(is_masked_op("llvm.x86.avx.maskstore.ps.256"));
        assert!(!is_masked_op("llvm.sqrt.v8f32"));
        assert!(!is_masked_op("vulfi.inject.f32"));
    }

    #[test]
    fn mask_arg_positions_match_avx_signatures() {
        let ld = parse("llvm.x86.avx.maskload.ps.256").unwrap();
        assert_eq!(ld.mask_arg(), Some(1));
        let st = parse("llvm.x86.avx.maskstore.ps.256").unwrap();
        assert_eq!(st.mask_arg(), Some(1));
        assert_eq!(st.store_value_arg(), Some(2));
        assert_eq!(st.result_type(), Type::Void);
        assert_eq!(ld.result_type(), Type::vec(ScalarTy::F32, 8));
    }
}
