//! IR-to-IR transformations.
//!
//! [`dce`] is the dead-code-elimination pass the SPMD-C compiler runs after
//! code generation, standing in for the `-O3` cleanups the paper's ISPC
//! pipeline performs: the fault-site population must not be diluted by
//! registers no real compiler would materialize.

pub mod dce {
    use crate::analysis::UseGraph;
    use crate::function::Function;
    use crate::inst::{InstId, InstKind};
    use crate::intrinsics::{self, Intrinsic};

    /// Is this instruction free of observable side effects (and therefore
    /// removable when its result is unused)? Loads are removable — VIR has
    /// no volatile accesses.
    pub fn is_pure(kind: &InstKind) -> bool {
        match kind {
            InstKind::Store { .. } => false,
            InstKind::Call { callee, .. } => match intrinsics::parse(callee) {
                Some(Intrinsic::MaskStore { .. }) => false,
                Some(_) => true, // math, maskload, movmsk, mask reductions
                None => false,   // host calls (injection API, detectors, ...)
            },
            _ => true,
        }
    }

    /// Remove unused pure instructions until fixpoint. Returns the number
    /// of instructions removed.
    pub fn run(f: &mut Function) -> usize {
        let mut removed_total = 0;
        loop {
            let uses = UseGraph::build(f);
            let mut dead: Vec<InstId> = Vec::new();
            for (_, iid) in f.placed_insts() {
                let inst = f.inst(iid);
                let unused = match inst.result {
                    Some(r) => uses.is_dead(r),
                    None => false, // void instructions are kept unless pure+resultless (none exist)
                };
                if unused && is_pure(&inst.kind) {
                    dead.push(iid);
                }
            }
            if dead.is_empty() {
                break;
            }
            removed_total += dead.len();
            for b in &mut f.blocks {
                b.insts.retain(|i| !dead.contains(i));
            }
        }
        removed_total
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use crate::builder::FuncBuilder;
        use crate::constant::Constant;
        use crate::inst::BinOp;
        use crate::types::{ScalarTy, Type};

        #[test]
        fn removes_dead_chains() {
            let mut b = FuncBuilder::new("f", vec![("x".into(), Type::I32)], Type::I32);
            let e = b.add_block("entry");
            b.position_at(e);
            let live = b.bin(BinOp::Add, b.param(0), Constant::i32(1).into(), "live");
            // Dead chain: d2 depends on d1, both unused.
            let d1 = b.bin(BinOp::Mul, b.param(0), Constant::i32(3).into(), "d1");
            let _d2 = b.bin(BinOp::Mul, d1, Constant::i32(5).into(), "d2");
            b.ret(Some(live));
            let mut f = b.finish();
            assert_eq!(f.num_placed_insts(), 3);
            let removed = run(&mut f);
            assert_eq!(removed, 2, "the whole dead chain goes");
            assert_eq!(f.num_placed_insts(), 1);
        }

        #[test]
        fn keeps_stores_and_host_calls() {
            let mut b = FuncBuilder::new("g", vec![("p".into(), Type::PTR)], Type::Void);
            let e = b.add_block("entry");
            b.position_at(e);
            b.store(Constant::i32(7).into(), b.param(0));
            b.call("host.effect", vec![], Type::Void, "");
            b.ret(None);
            let mut f = b.finish();
            assert_eq!(run(&mut f), 0);
            assert_eq!(f.num_placed_insts(), 2);
        }

        #[test]
        fn removes_unused_loads_and_broadcasts() {
            let mut b = FuncBuilder::new("h", vec![("p".into(), Type::PTR)], Type::Void);
            let e = b.add_block("entry");
            b.position_at(e);
            let v = b.load(Type::F32, b.param(0), "v");
            let _bc = b.broadcast(v, 8, "dead_bc");
            b.ret(None);
            let mut f = b.finish();
            let removed = run(&mut f);
            assert_eq!(removed, 3, "load + insert + shuffle all dead");
            assert_eq!(f.num_placed_insts(), 0);
        }

        #[test]
        fn keeps_maskstore_drops_unused_maskload() {
            use crate::intrinsics::{maskload_name, maskstore_name};
            let vty = Type::vec(ScalarTy::F32, 8);
            let mut b = FuncBuilder::new(
                "k",
                vec![("p".into(), Type::PTR), ("m".into(), vty)],
                Type::Void,
            );
            let e = b.add_block("entry");
            b.position_at(e);
            let _unused = b.call(
                maskload_name(8, ScalarTy::F32),
                vec![b.param(0), b.param(1)],
                vty,
                "unused",
            );
            b.call(
                maskstore_name(8, ScalarTy::F32),
                vec![b.param(0), b.param(1), Constant::splat_f32(8, 0.0).into()],
                Type::Void,
                "",
            );
            b.ret(None);
            let mut f = b.finish();
            assert_eq!(run(&mut f), 1);
            assert_eq!(f.num_placed_insts(), 1);
        }

        #[test]
        fn values_used_by_terminators_are_live() {
            let mut b = FuncBuilder::new("t", vec![("x".into(), Type::I32)], Type::I32);
            let e = b.add_block("entry");
            b.position_at(e);
            let r = b.bin(BinOp::Add, b.param(0), Constant::i32(2).into(), "r");
            b.ret(Some(r));
            let mut f = b.finish();
            assert_eq!(run(&mut f), 0);
        }
    }
}
