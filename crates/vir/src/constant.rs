//! Constant values.
//!
//! All scalar payloads are stored as raw little-endian bit patterns in a
//! `u64`. A uniform bit-pattern representation keeps the fault injector's
//! single-bit-flip primitive trivially type-agnostic (paper §II-B).

use crate::types::{ScalarTy, Type};

/// A compile-time constant of any VIR type.
#[derive(Debug, Clone, PartialEq)]
pub struct Constant {
    pub ty: Type,
    pub data: ConstData,
}

/// Constant payloads. Scalars are raw bit patterns of the declared type.
#[derive(Debug, Clone, PartialEq)]
pub enum ConstData {
    /// A single scalar bit pattern (low `ty.bits()` bits are significant).
    Scalar(u64),
    /// One bit pattern per lane.
    Vector(Vec<u64>),
    /// LLVM `zeroinitializer` / integer `0` / float `0.0` / `null`.
    Zero,
    /// LLVM `undef`; VIR evaluates it deterministically to all-zero bits.
    Undef,
}

impl Constant {
    pub fn new(ty: Type, data: ConstData) -> Constant {
        Constant { ty, data }
    }

    /// `i1` constant.
    pub fn bool(v: bool) -> Constant {
        Constant::new(Type::I1, ConstData::Scalar(v as u64))
    }

    pub fn i8(v: i8) -> Constant {
        Constant::new(Type::I8, ConstData::Scalar(v as u8 as u64))
    }

    pub fn i16(v: i16) -> Constant {
        Constant::new(Type::I16, ConstData::Scalar(v as u16 as u64))
    }

    pub fn i32(v: i32) -> Constant {
        Constant::new(Type::I32, ConstData::Scalar(v as u32 as u64))
    }

    pub fn i64(v: i64) -> Constant {
        Constant::new(Type::I64, ConstData::Scalar(v as u64))
    }

    pub fn f32(v: f32) -> Constant {
        Constant::new(Type::F32, ConstData::Scalar(v.to_bits() as u64))
    }

    pub fn f64(v: f64) -> Constant {
        Constant::new(Type::F64, ConstData::Scalar(v.to_bits()))
    }

    /// A raw pointer constant (used mainly in tests; programs receive
    /// pointers as parameters).
    pub fn ptr(addr: u64) -> Constant {
        Constant::new(Type::PTR, ConstData::Scalar(addr))
    }

    /// `zeroinitializer` of an arbitrary type.
    pub fn zero(ty: Type) -> Constant {
        Constant::new(ty, ConstData::Zero)
    }

    /// `undef` of an arbitrary type.
    pub fn undef(ty: Type) -> Constant {
        Constant::new(ty, ConstData::Undef)
    }

    /// Splat a scalar bit pattern across all lanes of a vector type.
    pub fn splat(elem: ScalarTy, lanes: u32, bits: u64) -> Constant {
        Constant::new(
            Type::vec(elem, lanes),
            ConstData::Vector(vec![bits & elem.bit_mask(); lanes as usize]),
        )
    }

    /// Splat an `f32` value.
    pub fn splat_f32(lanes: u32, v: f32) -> Constant {
        Constant::splat(ScalarTy::F32, lanes, v.to_bits() as u64)
    }

    /// Splat an `i32` value.
    pub fn splat_i32(lanes: u32, v: i32) -> Constant {
        Constant::splat(ScalarTy::I32, lanes, v as u32 as u64)
    }

    /// Vector constant from explicit `i32` lane values (e.g. the lane-index
    /// vector `<0, 1, 2, ..., Vl-1>` that SPMD code generation emits).
    pub fn vec_i32(vals: &[i32]) -> Constant {
        Constant::new(
            Type::vec(ScalarTy::I32, vals.len() as u32),
            ConstData::Vector(vals.iter().map(|&v| v as u32 as u64).collect()),
        )
    }

    /// Vector constant from explicit `f32` lane values.
    pub fn vec_f32(vals: &[f32]) -> Constant {
        Constant::new(
            Type::vec(ScalarTy::F32, vals.len() as u32),
            ConstData::Vector(vals.iter().map(|&v| v.to_bits() as u64).collect()),
        )
    }

    /// The lane-index constant `<0, 1, ..., lanes-1>` of `i32` lanes.
    pub fn lane_ids(lanes: u32) -> Constant {
        Constant::vec_i32(&(0..lanes as i32).collect::<Vec<_>>())
    }

    /// Materialize the per-lane bit patterns (length 1 for scalars).
    /// `Undef` and `Zero` become all-zero bits.
    pub fn lane_bits(&self) -> Vec<u64> {
        let lanes = self.ty.lanes().max(1) as usize;
        match &self.data {
            ConstData::Scalar(b) => vec![*b],
            ConstData::Vector(v) => v.clone(),
            ConstData::Zero | ConstData::Undef => vec![0; lanes],
        }
    }

    /// Scalar payload, if this is a scalar constant.
    pub fn scalar_bits(&self) -> Option<u64> {
        match (&self.data, self.ty) {
            (ConstData::Scalar(b), _) => Some(*b),
            (ConstData::Zero | ConstData::Undef, Type::Scalar(_)) => Some(0),
            _ => None,
        }
    }

    /// Interpret a scalar constant as a signed integer, if it is one.
    pub fn as_i64(&self) -> Option<i64> {
        match self.ty {
            Type::Scalar(s) if s.is_int() => self.scalar_bits().map(|b| sext(b, s.bits())),
            _ => None,
        }
    }
}

/// Sign-extend the low `bits` bits of `v` to 64 bits.
pub fn sext(v: u64, bits: u32) -> i64 {
    if bits >= 64 {
        return v as i64;
    }
    let shift = 64 - bits;
    ((v << shift) as i64) >> shift
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_constants_store_bit_patterns() {
        assert_eq!(Constant::i32(-1).scalar_bits(), Some(0xffff_ffff));
        assert_eq!(Constant::f32(1.0).scalar_bits(), Some(0x3f80_0000));
        assert_eq!(Constant::f64(-2.0).scalar_bits(), Some((-2.0f64).to_bits()));
        assert_eq!(Constant::bool(true).scalar_bits(), Some(1));
    }

    #[test]
    fn splat_replicates_lanes() {
        let c = Constant::splat_f32(8, 3.5);
        assert_eq!(c.ty, Type::vec(ScalarTy::F32, 8));
        let lanes = c.lane_bits();
        assert_eq!(lanes.len(), 8);
        assert!(lanes.iter().all(|&b| b == 3.5f32.to_bits() as u64));
    }

    #[test]
    fn lane_ids_are_sequential() {
        let c = Constant::lane_ids(4);
        assert_eq!(c.lane_bits(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn zero_and_undef_materialize_as_zero_bits() {
        let z = Constant::zero(Type::vec(ScalarTy::I32, 4));
        assert_eq!(z.lane_bits(), vec![0; 4]);
        let u = Constant::undef(Type::F32);
        assert_eq!(u.lane_bits(), vec![0]);
        assert_eq!(u.scalar_bits(), Some(0));
    }

    #[test]
    fn sext_works() {
        assert_eq!(sext(0xff, 8), -1);
        assert_eq!(sext(0x7f, 8), 127);
        assert_eq!(sext(1, 1), -1);
        assert_eq!(sext(0xffff_ffff, 32), -1);
        assert_eq!(sext(5, 64), 5);
    }

    #[test]
    fn as_i64_only_for_ints() {
        assert_eq!(Constant::i32(-7).as_i64(), Some(-7));
        assert_eq!(Constant::i64(1 << 40).as_i64(), Some(1 << 40));
        assert_eq!(Constant::f32(1.0).as_i64(), None);
        assert_eq!(Constant::splat_i32(4, 1).as_i64(), None);
    }
}
