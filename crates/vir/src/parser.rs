//! Parser for the textual VIR format emitted by [`crate::printer`].
//!
//! The grammar is line-oriented: one instruction, label, `declare`, or
//! `define` header per line. Comments run from `;` to end of line.

use std::collections::HashMap;

use crate::constant::{ConstData, Constant};
use crate::function::{FuncDecl, Function, Module, ValueDef, ValueInfo};
use crate::inst::{
    BinOp, BlockId, CastOp, FCmpPred, ICmpPred, Inst, InstId, InstKind, Operand, Terminator,
    ValueId,
};
use crate::types::{ScalarTy, Type};

/// A parse failure with a line number (1-based) and message.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub line: usize,
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

type PResult<T> = Result<T, ParseError>;

/// Parse a full module from text.
pub fn parse_module(src: &str) -> PResult<Module> {
    let mut module = Module::new("");
    // Recover the module name from the LLVM-style `; ModuleID = '...'`
    // header comment, so print -> parse round-trips exactly.
    for line in src.lines() {
        let t = line.trim();
        if let Some(rest) = t.strip_prefix("; ModuleID = '") {
            if let Some(name) = rest.strip_suffix('\'') {
                module.name = name.to_string();
            }
            break;
        }
        if !t.is_empty() && !t.starts_with(';') {
            break;
        }
    }
    let lines: Vec<(usize, String)> = src
        .lines()
        .enumerate()
        .map(|(i, l)| {
            let no_comment = match l.find(';') {
                Some(p) => &l[..p],
                None => l,
            };
            (i + 1, no_comment.trim().to_string())
        })
        .filter(|(_, l)| !l.is_empty())
        .collect();

    let mut i = 0;
    while i < lines.len() {
        let (ln, line) = &lines[i];
        if let Some(rest) = line.strip_prefix("declare ") {
            module.decls.push(parse_decl(rest, *ln)?);
            i += 1;
        } else if line.starts_with("define ") {
            // Collect lines until the closing '}'.
            let mut body = Vec::new();
            let header = (*ln, line.clone());
            i += 1;
            let mut closed = false;
            while i < lines.len() {
                if lines[i].1 == "}" {
                    closed = true;
                    i += 1;
                    break;
                }
                body.push(lines[i].clone());
                i += 1;
            }
            if !closed {
                return Err(err(header.0, "unterminated function body"));
            }
            module.functions.push(parse_function(&header, &body)?);
        } else {
            return Err(err(*ln, format!("unexpected top-level line: {line}")));
        }
    }
    Ok(module)
}

fn err(line: usize, msg: impl Into<String>) -> ParseError {
    ParseError {
        line,
        msg: msg.into(),
    }
}

// --- Tokenizer (per line) -------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    /// Bare identifier / keyword (`add`, `i32`, `label`, `undef`, `x`, ...).
    Ident(String),
    /// `%name`
    Local(String),
    /// `@name`
    Global(String),
    /// Numeric literal, kept as text (`-1`, `1.5`, `0x3F800000`).
    Num(String),
    Punct(char),
    /// `...`
    Ellipsis,
}

struct Lexer {
    toks: Vec<Tok>,
    pos: usize,
    line: usize,
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_' || c == '.'
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '.'
}

fn lex(line: &str, lineno: usize) -> PResult<Lexer> {
    let mut toks = Vec::new();
    let chars: Vec<char> = line.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c == '%' || c == '@' {
            let mut j = i + 1;
            while j < chars.len() && is_ident_char(chars[j]) {
                j += 1;
            }
            if j == i + 1 {
                return Err(err(lineno, "empty value name"));
            }
            let name: String = chars[i + 1..j].iter().collect();
            toks.push(if c == '%' {
                Tok::Local(name)
            } else {
                Tok::Global(name)
            });
            i = j;
            continue;
        }
        if c == '.' && chars.get(i + 1) == Some(&'.') && chars.get(i + 2) == Some(&'.') {
            toks.push(Tok::Ellipsis);
            i += 3;
            continue;
        }
        if c.is_ascii_digit() || (c == '-' && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit()))
        {
            let mut j = i + 1;
            while j < chars.len() {
                let d = chars[j];
                let ok = d.is_ascii_hexdigit()
                    || d == 'x'
                    || d == 'X'
                    || d == '.'
                    || ((d == '+' || d == '-')
                        && matches!(chars.get(j - 1), Some('e') | Some('E')));
                if !ok {
                    break;
                }
                j += 1;
            }
            toks.push(Tok::Num(chars[i..j].iter().collect()));
            i = j;
            continue;
        }
        if is_ident_start(c) {
            let mut j = i + 1;
            while j < chars.len() && is_ident_char(chars[j]) {
                j += 1;
            }
            toks.push(Tok::Ident(chars[i..j].iter().collect()));
            i = j;
            continue;
        }
        if "<>(){}[],=:*".contains(c) {
            toks.push(Tok::Punct(c));
            i += 1;
            continue;
        }
        return Err(err(lineno, format!("unexpected character '{c}'")));
    }
    Ok(Lexer {
        toks,
        pos: 0,
        line: lineno,
    })
}

impl Lexer {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> PResult<Tok> {
        let t = self
            .toks
            .get(self.pos)
            .cloned()
            .ok_or_else(|| err(self.line, "unexpected end of line"))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect_punct(&mut self, c: char) -> PResult<()> {
        match self.next()? {
            Tok::Punct(p) if p == c => Ok(()),
            t => Err(err(self.line, format!("expected '{c}', got {t:?}"))),
        }
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if self.peek() == Some(&Tok::Punct(c)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self, s: &str) -> PResult<()> {
        match self.next()? {
            Tok::Ident(i) if i == s => Ok(()),
            t => Err(err(self.line, format!("expected '{s}', got {t:?}"))),
        }
    }

    fn ident(&mut self) -> PResult<String> {
        match self.next()? {
            Tok::Ident(i) => Ok(i),
            t => Err(err(self.line, format!("expected identifier, got {t:?}"))),
        }
    }

    fn local(&mut self) -> PResult<String> {
        match self.next()? {
            Tok::Local(n) => Ok(n),
            t => Err(err(self.line, format!("expected %name, got {t:?}"))),
        }
    }

    fn global(&mut self) -> PResult<String> {
        match self.next()? {
            Tok::Global(n) => Ok(n),
            t => Err(err(self.line, format!("expected @name, got {t:?}"))),
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }
}

// --- Types ----------------------------------------------------------------

fn scalar_from_name(s: &str) -> Option<ScalarTy> {
    Some(match s {
        "i1" => ScalarTy::I1,
        "i8" => ScalarTy::I8,
        "i16" => ScalarTy::I16,
        "i32" => ScalarTy::I32,
        "i64" => ScalarTy::I64,
        "float" => ScalarTy::F32,
        "double" => ScalarTy::F64,
        "ptr" => ScalarTy::Ptr,
        _ => return None,
    })
}

fn parse_type(lx: &mut Lexer) -> PResult<Type> {
    if lx.eat_punct('<') {
        let lanes = match lx.next()? {
            Tok::Num(n) => n
                .parse::<u32>()
                .map_err(|_| err(lx.line, "bad lane count"))?,
            t => return Err(err(lx.line, format!("expected lane count, got {t:?}"))),
        };
        lx.expect_ident("x")?;
        let elem_name = lx.ident()?;
        let elem = scalar_from_name(&elem_name)
            .ok_or_else(|| err(lx.line, format!("unknown element type {elem_name}")))?;
        lx.expect_punct('>')?;
        if lanes == 0 {
            return Err(err(lx.line, "vector types need at least one lane"));
        }
        return Ok(Type::vec(elem, lanes));
    }
    let name = lx.ident()?;
    if name == "void" {
        return Ok(Type::Void);
    }
    scalar_from_name(&name)
        .map(Type::Scalar)
        .ok_or_else(|| err(lx.line, format!("unknown type {name}")))
}

// --- Constants ------------------------------------------------------------

fn parse_scalar_bits(tok: &Tok, ty: ScalarTy, line: usize) -> PResult<u64> {
    match tok {
        Tok::Ident(s) if s == "true" && ty == ScalarTy::I1 => Ok(1),
        Tok::Ident(s) if s == "false" && ty == ScalarTy::I1 => Ok(0),
        Tok::Ident(s) if s == "null" && ty == ScalarTy::Ptr => Ok(0),
        Tok::Num(n) => {
            if let Some(hex) = n.strip_prefix("0x").or_else(|| n.strip_prefix("0X")) {
                return u64::from_str_radix(hex, 16)
                    .map(|b| b & ty.bit_mask())
                    .map_err(|_| err(line, format!("bad hex literal {n}")));
            }
            if ty.is_int() {
                let v: i128 = n
                    .parse()
                    .map_err(|_| err(line, format!("bad integer literal {n}")))?;
                Ok((v as u64) & ty.bit_mask())
            } else {
                let v: f64 = n
                    .parse()
                    .map_err(|_| err(line, format!("bad float literal {n}")))?;
                Ok(match ty {
                    ScalarTy::F32 => (v as f32).to_bits() as u64,
                    ScalarTy::F64 => v.to_bits(),
                    _ => unreachable!(),
                })
            }
        }
        t => Err(err(line, format!("expected scalar constant, got {t:?}"))),
    }
}

/// Parse a constant of a known type (after its type annotation).
fn parse_constant(lx: &mut Lexer, ty: Type) -> PResult<Constant> {
    if let Some(Tok::Ident(s)) = lx.peek() {
        match s.as_str() {
            "undef" => {
                lx.next()?;
                return Ok(Constant::undef(ty));
            }
            "zeroinitializer" => {
                lx.next()?;
                return Ok(Constant::zero(ty));
            }
            _ => {}
        }
    }
    match ty {
        Type::Scalar(s) => {
            let tok = lx.next()?;
            let bits = parse_scalar_bits(&tok, s, lx.line)?;
            Ok(Constant::new(ty, ConstData::Scalar(bits)))
        }
        Type::Vector(s, lanes) => {
            lx.expect_punct('<')?;
            let mut elems = Vec::with_capacity(lanes as usize);
            loop {
                // Each element is `<elemty> <value>`, LLVM-style.
                let ename = lx.ident()?;
                let ety = scalar_from_name(&ename)
                    .ok_or_else(|| err(lx.line, format!("unknown element type {ename}")))?;
                if ety != s {
                    return Err(err(lx.line, "vector element type mismatch"));
                }
                if let Some(Tok::Ident(u)) = lx.peek() {
                    if u == "undef" {
                        lx.next()?;
                        elems.push(0);
                        if !lx.eat_punct(',') {
                            break;
                        }
                        continue;
                    }
                }
                let tok = lx.next()?;
                elems.push(parse_scalar_bits(&tok, s, lx.line)?);
                if !lx.eat_punct(',') {
                    break;
                }
            }
            lx.expect_punct('>')?;
            if elems.len() != lanes as usize {
                return Err(err(
                    lx.line,
                    format!("expected {lanes} vector elements, got {}", elems.len()),
                ));
            }
            Ok(Constant::new(ty, ConstData::Vector(elems)))
        }
        Type::Void => Err(err(lx.line, "void has no constants")),
    }
}

// --- Declarations -----------------------------------------------------------

fn parse_decl(rest: &str, lineno: usize) -> PResult<FuncDecl> {
    let mut lx = lex(rest, lineno)?;
    let ret = parse_type(&mut lx)?;
    let name = lx.global()?;
    lx.expect_punct('(')?;
    let mut params = Vec::new();
    let mut vararg = false;
    if !lx.eat_punct(')') {
        loop {
            if lx.peek() == Some(&Tok::Ellipsis) {
                lx.next()?;
                vararg = true;
            } else {
                params.push(parse_type(&mut lx)?);
            }
            if !lx.eat_punct(',') {
                break;
            }
        }
        lx.expect_punct(')')?;
    }
    Ok(FuncDecl {
        name,
        ret,
        params,
        vararg,
    })
}

// --- Function bodies --------------------------------------------------------

/// Parser state for one function: name→value map with forward references.
struct FnCtx {
    f: Function,
    value_by_name: HashMap<String, ValueId>,
    /// Values referenced before definition; def is a sentinel until fixed.
    pending: HashMap<String, usize>, // name -> line of first use
    block_by_name: HashMap<String, BlockId>,
}

const PENDING_DEF: ValueDef = ValueDef::Param(u32::MAX);

impl FnCtx {
    /// Resolve `%name` at a use site with the type from the annotation.
    fn use_value(&mut self, name: &str, ty: Type, line: usize) -> PResult<ValueId> {
        if let Some(&v) = self.value_by_name.get(name) {
            let have = self.f.value(v).ty;
            if have != ty {
                return Err(err(
                    line,
                    format!("type mismatch for %{name}: {have} vs {ty}"),
                ));
            }
            return Ok(v);
        }
        // Forward reference: create a pending value.
        let id = ValueId(self.f.values.len() as u32);
        self.f.values.push(ValueInfo {
            ty,
            name: Some(name.to_string()),
            def: PENDING_DEF,
        });
        self.value_by_name.insert(name.to_string(), id);
        self.pending.insert(name.to_string(), line);
        Ok(id)
    }

    /// Define `%name` as the result of instruction `iid` with type `ty`.
    fn define_value(&mut self, name: &str, ty: Type, iid: InstId, line: usize) -> PResult<ValueId> {
        if let Some(&v) = self.value_by_name.get(name) {
            if self.pending.remove(name).is_none() {
                return Err(err(line, format!("redefinition of %{name}")));
            }
            let info = &mut self.f.values[v.index()];
            if info.ty != ty {
                return Err(err(
                    line,
                    format!("type mismatch for %{name}: {} vs {ty}", info.ty),
                ));
            }
            info.def = ValueDef::Inst(iid);
            return Ok(v);
        }
        let id = ValueId(self.f.values.len() as u32);
        self.f.values.push(ValueInfo {
            ty,
            name: Some(name.to_string()),
            def: ValueDef::Inst(iid),
        });
        self.value_by_name.insert(name.to_string(), id);
        Ok(id)
    }

    fn block_ref(&self, name: &str, line: usize) -> PResult<BlockId> {
        self.block_by_name
            .get(name)
            .copied()
            .ok_or_else(|| err(line, format!("unknown block %{name}")))
    }
}

/// Parse `ty (%name | constant)`.
fn parse_typed_operand(lx: &mut Lexer, ctx: &mut FnCtx) -> PResult<Operand> {
    let ty = parse_type(lx)?;
    parse_operand_of_type(lx, ctx, ty)
}

fn parse_operand_of_type(lx: &mut Lexer, ctx: &mut FnCtx, ty: Type) -> PResult<Operand> {
    if let Some(Tok::Local(_)) = lx.peek() {
        let name = lx.local()?;
        let v = ctx.use_value(&name, ty, lx.line)?;
        return Ok(Operand::Value(v));
    }
    Ok(Operand::Const(parse_constant(lx, ty)?))
}

fn parse_function(header: &(usize, String), body: &[(usize, String)]) -> PResult<Function> {
    let (hln, hline) = header;
    let rest = hline
        .strip_prefix("define ")
        .ok_or_else(|| err(*hln, "expected define"))?;
    let mut lx = lex(rest, *hln)?;
    let ret = parse_type(&mut lx)?;
    let fname = lx.global()?;
    lx.expect_punct('(')?;
    let mut params = Vec::new();
    if !lx.eat_punct(')') {
        loop {
            let ty = parse_type(&mut lx)?;
            let name = lx.local()?;
            params.push((name, ty));
            if !lx.eat_punct(',') {
                break;
            }
        }
        lx.expect_punct(')')?;
    }
    lx.expect_punct('{')?;

    let mut ctx = FnCtx {
        f: Function::new(fname, params, ret),
        value_by_name: HashMap::new(),
        pending: HashMap::new(),
        block_by_name: HashMap::new(),
    };
    for (i, (n, _)) in ctx.f.params.clone().iter().enumerate() {
        ctx.value_by_name.insert(n.clone(), ValueId(i as u32));
    }

    // Pre-scan: create blocks for every label line so branches resolve.
    for (ln, line) in body {
        if let Some(label) = line.strip_suffix(':') {
            if label.chars().all(is_ident_char) && !label.is_empty() {
                if ctx.block_by_name.contains_key(label) {
                    return Err(err(*ln, format!("duplicate block label {label}")));
                }
                let b = ctx.f.add_block(label);
                ctx.block_by_name.insert(label.to_string(), b);
            }
        }
    }
    if ctx.f.blocks.is_empty() {
        return Err(err(*hln, "function has no basic blocks"));
    }

    let mut cur: Option<BlockId> = None;
    let mut cur_terminated = false;
    for (ln, line) in body {
        if let Some(label) = line.strip_suffix(':') {
            if label.chars().all(is_ident_char) && !label.is_empty() {
                if let Some(b) = cur {
                    if !cur_terminated {
                        return Err(err(
                            *ln,
                            format!("block %{} lacks a terminator", ctx.f.block(b).name),
                        ));
                    }
                }
                cur = Some(ctx.block_by_name[label]);
                cur_terminated = false;
                continue;
            }
        }
        let block = cur.ok_or_else(|| err(*ln, "instruction before first label"))?;
        if cur_terminated {
            return Err(err(*ln, "instruction after terminator"));
        }
        let mut lx = lex(line, *ln)?;
        if parse_line(&mut lx, &mut ctx, block)? {
            cur_terminated = true;
        }
        if !lx.at_end() {
            return Err(err(*ln, "trailing tokens on line"));
        }
    }
    if let Some(b) = cur {
        if !cur_terminated {
            return Err(err(
                *hln,
                format!("block %{} lacks a terminator", ctx.f.block(b).name),
            ));
        }
    }
    if let Some((name, line)) = ctx.pending.iter().next() {
        return Err(err(*line, format!("%{name} is used but never defined")));
    }
    Ok(ctx.f)
}

/// Parse one instruction or terminator line. Returns true for terminators.
fn parse_line(lx: &mut Lexer, ctx: &mut FnCtx, block: BlockId) -> PResult<bool> {
    // Terminators ----------------------------------------------------------
    if let Some(Tok::Ident(kw)) = lx.peek() {
        match kw.as_str() {
            "br" => {
                lx.next()?;
                if let Some(Tok::Ident(l)) = lx.peek() {
                    if l == "label" {
                        lx.next()?;
                        let target = lx.local()?;
                        let t = ctx.block_ref(&target, lx.line)?;
                        ctx.f.block_mut(block).term = Terminator::Br(t);
                        return Ok(true);
                    }
                }
                let cond = parse_typed_operand(lx, ctx)?;
                lx.expect_punct(',')?;
                lx.expect_ident("label")?;
                let tname = lx.local()?;
                lx.expect_punct(',')?;
                lx.expect_ident("label")?;
                let fname = lx.local()?;
                ctx.f.block_mut(block).term = Terminator::CondBr {
                    cond,
                    on_true: ctx.block_ref(&tname, lx.line)?,
                    on_false: ctx.block_ref(&fname, lx.line)?,
                };
                return Ok(true);
            }
            "ret" => {
                lx.next()?;
                if let Some(Tok::Ident(v)) = lx.peek() {
                    if v == "void" {
                        lx.next()?;
                        ctx.f.block_mut(block).term = Terminator::Ret(None);
                        return Ok(true);
                    }
                }
                let op = parse_typed_operand(lx, ctx)?;
                ctx.f.block_mut(block).term = Terminator::Ret(Some(op));
                return Ok(true);
            }
            "unreachable" => {
                lx.next()?;
                ctx.f.block_mut(block).term = Terminator::Unreachable;
                return Ok(true);
            }
            _ => {}
        }
    }

    // Optional result name --------------------------------------------------
    let result_name = if let Some(Tok::Local(_)) = lx.peek() {
        let n = lx.local()?;
        lx.expect_punct('=')?;
        Some(n)
    } else {
        None
    };

    let (kind, ty) = parse_inst_body(lx, ctx, block)?;

    let iid = InstId(ctx.f.insts.len() as u32);
    let result = match (&result_name, ty) {
        (Some(n), t) if !t.is_void() => Some(ctx.define_value(n, t, iid, lx.line)?),
        (Some(_), _) => return Err(err(lx.line, "void instruction cannot have a result")),
        (None, t) if !t.is_void() => {
            // Unnamed result: allocate an anonymous value.
            Some(ctx.f.new_value(t, None, ValueDef::Inst(iid)))
        }
        (None, _) => None,
    };
    ctx.f.insts.push(Inst { kind, ty, result });
    ctx.f.blocks[block.index()].insts.push(iid);
    Ok(false)
}

/// Parse the instruction body after an optional `%x =`. Returns the kind and
/// result type.
fn parse_inst_body(lx: &mut Lexer, ctx: &mut FnCtx, block: BlockId) -> PResult<(InstKind, Type)> {
    let _ = block;
    let op_name = lx.ident()?;

    if let Some(op) = BinOp::from_mnemonic(&op_name) {
        let ty = parse_type(lx)?;
        let lhs = parse_operand_of_type(lx, ctx, ty)?;
        lx.expect_punct(',')?;
        let rhs = parse_operand_of_type(lx, ctx, ty)?;
        return Ok((InstKind::Bin { op, lhs, rhs }, ty));
    }
    if let Some(op) = CastOp::from_mnemonic(&op_name) {
        let val = parse_typed_operand(lx, ctx)?;
        lx.expect_ident("to")?;
        let to = parse_type(lx)?;
        return Ok((InstKind::Cast { op, val }, to));
    }

    match op_name.as_str() {
        "icmp" => {
            let pred_name = lx.ident()?;
            let pred = ICmpPred::from_mnemonic(&pred_name)
                .ok_or_else(|| err(lx.line, format!("unknown icmp predicate {pred_name}")))?;
            let ty = parse_type(lx)?;
            let lhs = parse_operand_of_type(lx, ctx, ty)?;
            lx.expect_punct(',')?;
            let rhs = parse_operand_of_type(lx, ctx, ty)?;
            Ok((InstKind::ICmp { pred, lhs, rhs }, ty.mask_type()))
        }
        "fcmp" => {
            let pred_name = lx.ident()?;
            let pred = FCmpPred::from_mnemonic(&pred_name)
                .ok_or_else(|| err(lx.line, format!("unknown fcmp predicate {pred_name}")))?;
            let ty = parse_type(lx)?;
            let lhs = parse_operand_of_type(lx, ctx, ty)?;
            lx.expect_punct(',')?;
            let rhs = parse_operand_of_type(lx, ctx, ty)?;
            Ok((InstKind::FCmp { pred, lhs, rhs }, ty.mask_type()))
        }
        "select" => {
            let cond = parse_typed_operand(lx, ctx)?;
            lx.expect_punct(',')?;
            let on_true = parse_typed_operand(lx, ctx)?;
            let ty = ctx.f.operand_type(&on_true);
            lx.expect_punct(',')?;
            let on_false = parse_typed_operand(lx, ctx)?;
            Ok((
                InstKind::Select {
                    cond,
                    on_true,
                    on_false,
                },
                ty,
            ))
        }
        "alloca" => {
            let elem = parse_type(lx)?;
            lx.expect_punct(',')?;
            let count = parse_typed_operand(lx, ctx)?;
            Ok((InstKind::Alloca { elem, count }, Type::PTR))
        }
        "load" => {
            let ty = parse_type(lx)?;
            lx.expect_punct(',')?;
            let ptr = parse_typed_operand(lx, ctx)?;
            Ok((InstKind::Load { ptr }, ty))
        }
        "store" => {
            let val = parse_typed_operand(lx, ctx)?;
            lx.expect_punct(',')?;
            let ptr = parse_typed_operand(lx, ctx)?;
            Ok((InstKind::Store { val, ptr }, Type::Void))
        }
        "getelementptr" => {
            let elem = parse_type(lx)?;
            lx.expect_punct(',')?;
            let base = parse_typed_operand(lx, ctx)?;
            lx.expect_punct(',')?;
            let index = parse_typed_operand(lx, ctx)?;
            Ok((InstKind::Gep { elem, base, index }, Type::PTR))
        }
        "extractelement" => {
            let vec = parse_typed_operand(lx, ctx)?;
            let vty = ctx.f.operand_type(&vec);
            lx.expect_punct(',')?;
            let idx = parse_typed_operand(lx, ctx)?;
            let elem = vty
                .elem()
                .ok_or_else(|| err(lx.line, "extractelement on non-vector"))?;
            Ok((InstKind::ExtractElement { vec, idx }, Type::Scalar(elem)))
        }
        "insertelement" => {
            let vec = parse_typed_operand(lx, ctx)?;
            let vty = ctx.f.operand_type(&vec);
            lx.expect_punct(',')?;
            let elt = parse_typed_operand(lx, ctx)?;
            lx.expect_punct(',')?;
            let idx = parse_typed_operand(lx, ctx)?;
            Ok((InstKind::InsertElement { vec, elt, idx }, vty))
        }
        "shufflevector" => {
            let a = parse_typed_operand(lx, ctx)?;
            let aty = ctx.f.operand_type(&a);
            lx.expect_punct(',')?;
            let b = parse_typed_operand(lx, ctx)?;
            lx.expect_punct(',')?;
            // Mask: `<N x i32> <i32 k, ...>` with undef entries as -1.
            let mask_ty = parse_type(lx)?;
            let lanes = match mask_ty {
                Type::Vector(ScalarTy::I32, n) => n,
                t => return Err(err(lx.line, format!("bad shuffle mask type {t}"))),
            };
            lx.expect_punct('<')?;
            let mut mask = Vec::with_capacity(lanes as usize);
            loop {
                lx.expect_ident("i32")?;
                match lx.next()? {
                    Tok::Ident(u) if u == "undef" => mask.push(-1),
                    Tok::Num(n) => mask.push(
                        n.parse::<i32>()
                            .map_err(|_| err(lx.line, "bad shuffle index"))?,
                    ),
                    t => return Err(err(lx.line, format!("bad shuffle mask entry {t:?}"))),
                }
                if !lx.eat_punct(',') {
                    break;
                }
            }
            lx.expect_punct('>')?;
            if mask.len() != lanes as usize {
                return Err(err(lx.line, "shuffle mask length mismatch"));
            }
            let elem = aty
                .elem()
                .ok_or_else(|| err(lx.line, "shufflevector on non-vector"))?;
            let ty = Type::vec(elem, mask.len() as u32);
            Ok((InstKind::ShuffleVector { a, b, mask }, ty))
        }
        "phi" => {
            let ty = parse_type(lx)?;
            let mut incomings = Vec::new();
            loop {
                lx.expect_punct('[')?;
                let op = parse_operand_of_type(lx, ctx, ty)?;
                lx.expect_punct(',')?;
                let bname = lx.local()?;
                let b = ctx.block_ref(&bname, lx.line)?;
                lx.expect_punct(']')?;
                incomings.push((b, op));
                if !lx.eat_punct(',') {
                    break;
                }
            }
            Ok((InstKind::Phi { incomings }, ty))
        }
        "call" => {
            let ret = parse_type(lx)?;
            let callee = lx.global()?;
            lx.expect_punct('(')?;
            let mut args = Vec::new();
            if !lx.eat_punct(')') {
                loop {
                    args.push(parse_typed_operand(lx, ctx)?);
                    if !lx.eat_punct(',') {
                        break;
                    }
                }
                lx.expect_punct(')')?;
            }
            Ok((InstKind::Call { callee, args }, ret))
        }
        other => Err(err(lx.line, format!("unknown instruction '{other}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::print_module;

    const SUM_SRC: &str = r#"
define i32 @sum(i32 %n) {
entry:
  br label %header
header:
  %i = phi i32 [ 0, %entry ], [ %i2, %body ]
  %acc = phi i32 [ 0, %entry ], [ %acc2, %body ]
  %cond = icmp slt i32 %i, %n
  br i1 %cond, label %body, label %exit
body:
  %acc2 = add i32 %acc, %i
  %i2 = add i32 %i, 1
  br label %header
exit:
  ret i32 %acc
}
"#;

    #[test]
    fn parses_loop_function() {
        let m = parse_module(SUM_SRC).unwrap();
        assert_eq!(m.functions.len(), 1);
        let f = &m.functions[0];
        assert_eq!(f.name, "sum");
        assert_eq!(f.blocks.len(), 4);
        assert_eq!(f.num_placed_insts(), 5);
    }

    #[test]
    fn print_parse_roundtrip() {
        let m1 = parse_module(SUM_SRC).unwrap();
        let text = print_module(&m1);
        let m2 = parse_module(&text).unwrap();
        assert_eq!(print_module(&m2), text);
    }

    #[test]
    fn parses_fig5_style_masked_ops() {
        let src = r#"
declare <8 x float> @llvm.x86.avx.maskload.ps.256(ptr, <8 x float>)
declare void @llvm.x86.avx.maskstore.ps.256(ptr, <8 x float>, <8 x float>)

define void @copy(ptr %src, ptr %dst, <8 x float> %floatmask.i) {
entry:
  %0 = call <8 x float> @llvm.x86.avx.maskload.ps.256(ptr %src, <8 x float> %floatmask.i)
  call void @llvm.x86.avx.maskstore.ps.256(ptr %dst, <8 x float> %floatmask.i, <8 x float> %0)
  ret void
}
"#;
        let m = parse_module(src).unwrap();
        assert_eq!(m.decls.len(), 2);
        let f = m.function("copy").unwrap();
        assert_eq!(f.num_placed_insts(), 2);
        // Round-trip.
        let text = print_module(&m);
        let m2 = parse_module(&text).unwrap();
        assert_eq!(print_module(&m2), text);
    }

    #[test]
    fn parses_vector_constants_and_shuffles() {
        let src = r#"
define <8 x float> @bcast(float %uval) {
allocas:
  %uval_broadcast_init = insertelement <8 x float> undef, float %uval, i32 0
  %uval_broadcast = shufflevector <8 x float> %uval_broadcast_init, <8 x float> undef, <8 x i32> zeroinitializer
  ret <8 x float> %uval_broadcast
}
"#;
        // `zeroinitializer` is not valid for shuffle masks in our printer,
        // but LLVM allows it; check we report a clean error.
        assert!(parse_module(src).is_err());

        let src2 = r#"
define <8 x float> @bcast(float %uval) {
allocas:
  %i = insertelement <8 x float> undef, float %uval, i32 0
  %b = shufflevector <8 x float> %i, <8 x float> undef, <8 x i32> <i32 0, i32 0, i32 0, i32 0, i32 0, i32 0, i32 0, i32 0>
  ret <8 x float> %b
}
"#;
        let m = parse_module(src2).unwrap();
        let f = m.function("bcast").unwrap();
        assert_eq!(f.num_placed_insts(), 2);
    }

    #[test]
    fn rejects_undefined_values() {
        let src = r#"
define i32 @f(i32 %x) {
entry:
  %y = add i32 %x, %nope
  ret i32 %y
}
"#;
        let e = parse_module(src).unwrap_err();
        assert!(e.msg.contains("never defined"), "{e}");
    }

    #[test]
    fn rejects_missing_terminator() {
        let src = r#"
define i32 @f(i32 %x) {
entry:
  %y = add i32 %x, 1
}
"#;
        let e = parse_module(src).unwrap_err();
        assert!(e.msg.contains("terminator"), "{e}");
    }

    #[test]
    fn rejects_type_mismatch_between_uses() {
        let src = r#"
define i32 @f(i32 %x) {
entry:
  %y = add i32 %x, 1
  %z = fadd float %y, 1.0
  ret i32 %y
}
"#;
        let e = parse_module(src).unwrap_err();
        assert!(e.msg.contains("type mismatch"), "{e}");
    }

    #[test]
    fn parses_float_formats() {
        let src = r#"
define float @f() {
entry:
  %a = fadd float 1.5, -2.25
  %b = fadd float %a, 0x3F800000
  ret float %b
}
"#;
        let m = parse_module(src).unwrap();
        let f = m.function("f").unwrap();
        let inst = f.inst(f.block(BlockId(0)).insts[0]);
        let ops = inst.operands();
        assert_eq!(
            ops[0].constant().unwrap().scalar_bits(),
            Some(1.5f32.to_bits() as u64)
        );
        assert_eq!(
            ops[1].constant().unwrap().scalar_bits(),
            Some((-2.25f32).to_bits() as u64)
        );
    }

    #[test]
    fn parses_varargs_decl() {
        let src = "declare float @vulfi.inject.f32(float, float, ...)";
        let m = parse_module(src).unwrap();
        assert!(m.decls[0].vararg);
        assert_eq!(m.decls[0].params.len(), 2);
    }
}
