//! Diagnostic coverage: the compiler must reject ill-formed programs with
//! located, actionable errors — never panic, never miscompile silently.

use spmdc::{compile, parse_program, VectorIsa};

fn err_of(src: &str) -> String {
    match compile(src, VectorIsa::Avx, "diag") {
        Err(e) => e.to_string(),
        Ok(_) => panic!("expected a compile error for:\n{src}"),
    }
}

// --- Lexer / parser ----------------------------------------------------------

#[test]
fn parse_errors_carry_line_numbers() {
    let src = "export void f() {\n    uniform int x = ;\n}";
    let e = parse_program(src).unwrap_err();
    // The offending token is on line 2; the parser may report the token
    // it stopped at (the closing brace on line 3).
    assert!((2..=3).contains(&e.line), "{e}");
}

#[test]
fn rejects_malformed_programs() {
    for src in [
        "void",
        "void f(",
        "void f() { if }",
        "void f() { foreach (i = 0 .. n) {} }",
        "void f() { for (;;) {} }",
        "void f() { return; } garbage",
        "void f() { x +=; }",
        "void f() { /* unterminated",
    ] {
        assert!(parse_program(src).is_err(), "accepted: {src}");
    }
}

// --- Name resolution ----------------------------------------------------------

#[test]
fn undeclared_identifiers() {
    let e = err_of("export void f() { uniform int x = y + 1; }");
    assert!(e.contains("undeclared identifier 'y'"), "{e}");
}

#[test]
fn undeclared_arrays_and_non_arrays() {
    let e = err_of("export void f() { uniform float x = a[0]; }");
    assert!(e.contains("undeclared array 'a'"), "{e}");
    let e = err_of("export void f(uniform int n) { uniform int x = n[0]; }");
    assert!(e.contains("not an array"), "{e}");
    let e = err_of("export void f(uniform float a[]) { uniform float x = a + 1.0; }");
    assert!(e.contains("without an index"), "{e}");
}

#[test]
fn redeclaration_in_same_scope() {
    let e = err_of("export void f() { uniform int x = 1; uniform int x = 2; }");
    assert!(e.contains("redeclaration"), "{e}");
}

#[test]
fn shadowing_in_inner_scope_is_fine() {
    let src = r#"
export void f(uniform float a[], uniform int n) {
    uniform int x = 1;
    foreach (i = 0 ... n) {
        float x = a[i];
        a[i] = x;
    }
}
"#;
    compile(src, VectorIsa::Avx, "ok").unwrap();
}

// --- Rate (uniform/varying) rules ----------------------------------------------

#[test]
fn varying_into_uniform_rejected_everywhere() {
    let decl = err_of(
        "export void f(uniform float a[], uniform int n) {
            foreach (i = 0 ... n) { uniform float x = a[i]; }
        }",
    );
    assert!(decl.contains("uniform"), "{decl}");
    let assign = err_of(
        "export void f(uniform float a[], uniform int n) {
            uniform float x = 0.0;
            foreach (i = 0 ... n) { x = a[i]; }
        }",
    );
    assert!(assign.contains("varying"), "{assign}");
}

#[test]
fn foreach_bounds_must_be_uniform() {
    let e = err_of(
        "export void f(uniform int a[], uniform int n) {
            foreach (i = 0 ... n) {
                foreach (j = 0 ... a[i]) { a[j] = 0; }
            }
        }",
    );
    // Either the nesting rule or the bound rate fires first — both are
    // correct rejections.
    assert!(e.contains("foreach") || e.contains("uniform"), "{e}");
}

#[test]
fn uniform_store_under_varying_control_rejected() {
    let e = err_of(
        "export void f(uniform float a[], uniform int n) {
            foreach (i = 0 ... n) {
                if (a[i] > 0.0) { a[0] = 1.0; }
            }
        }",
    );
    assert!(e.contains("varying control"), "{e}");
}

#[test]
fn varying_return_rejected() {
    // `return` only allowed as the last top-level statement; a varying
    // value can never escape through it.
    let e = err_of(
        "export uniform float f() {
            varying float v = 1.0;
            return v + programIndex;
        }",
    );
    assert!(e.contains("uniform"), "{e}");
}

#[test]
fn return_must_be_last() {
    let e = err_of(
        "export uniform int f() {
            return 1;
            uniform int x = 2;
        }",
    );
    assert!(e.contains("return") || e.contains("after"), "{e}");
    let e = err_of(
        "export void f(uniform int n) {
            if (n > 0) { return; }
        }",
    );
    assert!(e.contains("return"), "{e}");
}

#[test]
fn missing_return_value_rejected() {
    let e = err_of("export uniform int f() { uniform int x = 1; }");
    assert!(e.contains("return"), "{e}");
    let e = err_of("export void f() { return 3; }");
    assert!(e.contains("void"), "{e}");
}

// --- Types and operators ----------------------------------------------------------

#[test]
fn bitwise_ops_require_ints() {
    let e = err_of("export void f() { uniform float x = 1.5 & 2.0; }");
    assert!(e.contains("bitwise"), "{e}");
}

#[test]
fn pow_requires_floats() {
    let e = err_of("export void f() { uniform int x = pow(2, 3); }");
    assert!(e.contains("pow"), "{e}");
}

#[test]
fn arity_checked_for_builtins() {
    let e = err_of("export void f() { uniform float x = sqrt(1.0, 2.0); }");
    assert!(e.contains("expects 1"), "{e}");
    let e = err_of("export void f() { uniform float x = min(1.0); }");
    assert!(e.contains("expects 2"), "{e}");
}

#[test]
fn unknown_functions_rejected() {
    let e = err_of("export void f() { uniform float x = frobnicate(1.0); }");
    assert!(e.contains("unknown function"), "{e}");
}

#[test]
fn reduce_add_needs_varying_numeric() {
    let e = err_of("export void f() { uniform float x = reduce_add(1.0); }");
    assert!(e.contains("varying"), "{e}");
}

#[test]
fn varying_parameters_rejected() {
    let e = err_of("export void f(varying float x) { }");
    assert!(e.contains("uniform"), "{e}");
}

// --- Semantics that must NOT error -----------------------------------------------

#[test]
fn rich_but_legal_program_compiles() {
    let src = r#"
export uniform float kitchen_sink(uniform float a[], uniform int idx[], uniform int n,
                                  uniform float threshold) {
    uniform float acc = 0.0;
    for (uniform int t = 0; t < 3; t++) {
        foreach (i = 0 ... n) {
            float v = a[i];
            int j = idx[i];
            float g = a[j];
            if (v < threshold && g > 0.0) {
                v = clamp(v * g, -10.0, 10.0);
            } else {
                v = abs(v) + (float)(i % 7);
            }
            int steps = 0;
            while (v > 1.0 && steps < 8) {
                v = v * 0.5;
                steps++;
            }
            a[i] = v;
            acc += reduce_add(v);
        }
    }
    return acc;
}
"#;
    for isa in VectorIsa::ALL {
        let m = compile(src, isa, "sink").unwrap();
        vir::verify::verify_module(&m).unwrap();
    }
}
