//! Differential testing of the whole compile→execute pipeline: random
//! SPMD-C kernels are rendered to source, compiled for both vector
//! targets, executed in vexec, and compared **bit-exactly** against a
//! direct AST-level reference evaluation in Rust.
//!
//! Bit-exactness is sound because every f32 operation the interpreter
//! performs in f64 and narrows (+, -, ×, min, max) is immune to double
//! rounding at these precisions (2·24 + 2 ≤ 53).

use proptest::prelude::*;
use spmdc::{compile, VectorIsa};
use vexec::{Interp, NoHost, RtVal, Scalar};

/// A random scalar expression over `a[i]`, `b[i]`, `(float)i`, literals.
#[derive(Debug, Clone)]
enum E {
    A,
    B,
    I,
    Lit(f32),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    Min(Box<E>, Box<E>),
    Max(Box<E>, Box<E>),
    /// `cond ? x : y` with a comparison condition — exercises the
    /// varying-select path.
    Pick(Box<E>, Box<E>, Box<E>, Box<E>), // (l < r) ? x : y
}

impl E {
    fn render(&self) -> String {
        match self {
            E::A => "a[i]".into(),
            E::B => "b[i]".into(),
            E::I => "(float)i".into(),
            E::Lit(v) => format!("{v:?}"),
            E::Add(l, r) => format!("({} + {})", l.render(), r.render()),
            E::Sub(l, r) => format!("({} - {})", l.render(), r.render()),
            E::Mul(l, r) => format!("({} * {})", l.render(), r.render()),
            E::Min(l, r) => format!("min({}, {})", l.render(), r.render()),
            E::Max(l, r) => format!("max({}, {})", l.render(), r.render()),
            E::Pick(l, r, x, y) => format!(
                "({} < {} ? {} : {})",
                l.render(),
                r.render(),
                x.render(),
                y.render()
            ),
        }
    }

    fn eval(&self, a: f32, b: f32, i: i32) -> f32 {
        match self {
            E::A => a,
            E::B => b,
            E::I => i as f32,
            E::Lit(v) => *v,
            E::Add(l, r) => l.eval(a, b, i) + r.eval(a, b, i),
            E::Sub(l, r) => l.eval(a, b, i) - r.eval(a, b, i),
            E::Mul(l, r) => l.eval(a, b, i) * r.eval(a, b, i),
            // The interpreter's minnum/maxnum go through f64; both agree
            // with f32 min/max bit-for-bit on non-NaN inputs.
            E::Min(l, r) => l.eval(a, b, i).min(r.eval(a, b, i)),
            E::Max(l, r) => l.eval(a, b, i).max(r.eval(a, b, i)),
            E::Pick(l, r, x, y) => {
                if l.eval(a, b, i) < r.eval(a, b, i) {
                    x.eval(a, b, i)
                } else {
                    y.eval(a, b, i)
                }
            }
        }
    }
}

fn arb_expr() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![
        Just(E::A),
        Just(E::B),
        Just(E::I),
        (-2.0f32..2.0).prop_map(E::Lit),
    ];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| E::Add(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| E::Sub(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| E::Mul(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| E::Min(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| E::Max(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone(), inner.clone(), inner).prop_map(|(l, r, x, y)| E::Pick(
                Box::new(l),
                Box::new(r),
                Box::new(x),
                Box::new(y)
            )),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_kernels_match_reference_bit_exactly(
        expr in arb_expr(),
        av in prop::collection::vec(-8.0f32..8.0, 19),
        bv in prop::collection::vec(-8.0f32..8.0, 19),
    ) {
        let src = format!(
            "export void k(uniform float a[], uniform float b[], \
             uniform float out[], uniform int n) {{\n    \
             foreach (i = 0 ... n) {{\n        out[i] = {};\n    }}\n}}\n",
            expr.render()
        );
        for isa in VectorIsa::ALL {
            let m = compile(&src, isa, "diff").unwrap();
            // n = 19 exercises both the full body and the masked tail on
            // both targets.
            let mut interp = Interp::new(&m);
            let pa = interp.mem.alloc_f32_slice(&av).unwrap();
            let pb = interp.mem.alloc_f32_slice(&bv).unwrap();
            let po = interp.mem.alloc_f32_slice(&[0.0; 19]).unwrap();
            interp
                .run(
                    "k",
                    &[
                        RtVal::Scalar(Scalar::ptr(pa)),
                        RtVal::Scalar(Scalar::ptr(pb)),
                        RtVal::Scalar(Scalar::ptr(po)),
                        RtVal::Scalar(Scalar::i32(19)),
                    ],
                    &mut NoHost,
                )
                .unwrap();
            let got = interp.mem.read_f32_slice(po, 19).unwrap();
            for i in 0..19usize {
                let expect = expr.eval(av[i], bv[i], i as i32);
                prop_assert_eq!(
                    got[i].to_bits(),
                    expect.to_bits(),
                    "isa={} i={} expr={} got={} expect={}",
                    isa, i, expr.render(), got[i], expect
                );
            }
        }
    }

    #[test]
    fn random_guarded_updates_match_reference(
        expr in arb_expr(),
        threshold in -4.0f32..4.0,
        av in prop::collection::vec(-8.0f32..8.0, 13),
    ) {
        // A varying if with an assignment: `v` only changes where the
        // guard holds; compiled via any-guard + select blending.
        let src = format!(
            "export void g(uniform float a[], uniform float b[], \
             uniform float out[], uniform int n) {{\n    \
             foreach (i = 0 ... n) {{\n        \
             float v = a[i];\n        \
             if (v < {threshold:?}) {{\n            v = {};\n        }}\n        \
             out[i] = v;\n    }}\n}}\n",
            expr.render()
        );
        let bv: Vec<f32> = av.iter().map(|x| x * 0.5 + 1.0).collect();
        for isa in VectorIsa::ALL {
            let m = compile(&src, isa, "diff_if").unwrap();
            let mut interp = Interp::new(&m);
            let pa = interp.mem.alloc_f32_slice(&av).unwrap();
            let pb = interp.mem.alloc_f32_slice(&bv).unwrap();
            let po = interp.mem.alloc_f32_slice(&[0.0; 13]).unwrap();
            interp
                .run(
                    "g",
                    &[
                        RtVal::Scalar(Scalar::ptr(pa)),
                        RtVal::Scalar(Scalar::ptr(pb)),
                        RtVal::Scalar(Scalar::ptr(po)),
                        RtVal::Scalar(Scalar::i32(13)),
                    ],
                    &mut NoHost,
                )
                .unwrap();
            let got = interp.mem.read_f32_slice(po, 13).unwrap();
            for i in 0..13usize {
                let expect = if av[i] < threshold {
                    expr.eval(av[i], bv[i], i as i32)
                } else {
                    av[i]
                };
                prop_assert_eq!(
                    got[i].to_bits(),
                    expect.to_bits(),
                    "isa={} i={}",
                    isa,
                    i
                );
            }
        }
    }
}
