//! End-to-end: compile SPMD-C with spmdc and execute the result in vexec,
//! checking numeric results against scalar reference computations on both
//! vector targets and across sizes that exercise the full-body *and* the
//! masked partial-remainder paths.

use spmdc::{compile, VectorIsa};
use vexec::{Interp, NoHost, RtVal, Scalar};

fn ptr(a: u64) -> RtVal {
    RtVal::Scalar(Scalar::ptr(a))
}

fn i32v(v: i32) -> RtVal {
    RtVal::Scalar(Scalar::i32(v))
}

fn f32v(v: f32) -> RtVal {
    RtVal::Scalar(Scalar::f32(v))
}

#[test]
fn vcopy_all_sizes_both_targets() {
    let src = r#"
export void vcopy_ispc(uniform float a1[], uniform float a2[], uniform int n) {
    foreach (i = 0 ... n) {
        a2[i] = a1[i];
    }
}
"#;
    for isa in VectorIsa::ALL {
        let m = compile(src, isa, "vcopy").unwrap();
        // Sizes below, at, and off lane-multiples (0 exercises the skip path,
        // 5/13 the masked remainder, 8/16 the aligned path).
        for n in [0usize, 1, 3, 5, 7, 8, 9, 13, 16, 31] {
            let mut interp = Interp::new(&m);
            let input: Vec<f32> = (0..n).map(|i| i as f32 * 1.5 - 3.0).collect();
            let a1 = interp.mem.alloc_f32_slice(&input).unwrap();
            let a2 = interp.mem.alloc_f32_slice(&vec![0.0; n.max(1)]).unwrap();
            interp
                .run(
                    "vcopy_ispc",
                    &[ptr(a1), ptr(a2), i32v(n as i32)],
                    &mut NoHost,
                )
                .unwrap();
            let out = interp.mem.read_f32_slice(a2, n).unwrap();
            assert_eq!(out, input, "isa={isa} n={n}");
        }
    }
}

#[test]
fn dot_product_matches_reference() {
    let src = r#"
export uniform float dotp(uniform float a[], uniform float b[], uniform int n) {
    uniform float sum = 0.0;
    foreach (i = 0 ... n) {
        sum += reduce_add(a[i] * b[i]);
    }
    return sum;
}
"#;
    for isa in VectorIsa::ALL {
        let m = compile(src, isa, "dotp").unwrap();
        for n in [0usize, 4, 7, 8, 19] {
            let mut interp = Interp::new(&m);
            let a: Vec<f32> = (0..n).map(|i| (i as f32) * 0.5).collect();
            let b: Vec<f32> = (0..n).map(|i| 2.0 - i as f32 * 0.25).collect();
            let pa = interp.mem.alloc_f32_slice(&a).unwrap();
            let pb = interp.mem.alloc_f32_slice(&b).unwrap();
            let r = interp
                .run("dotp", &[ptr(pa), ptr(pb), i32v(n as i32)], &mut NoHost)
                .unwrap();
            let expect: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            let got = r.ret.unwrap().scalar().as_f32();
            assert!(
                (got - expect).abs() < 1e-4,
                "isa={isa} n={n}: got {got}, expect {expect}"
            );
        }
    }
}

#[test]
fn scale_with_uniform_broadcast() {
    let src = r#"
export void scale(uniform float a[], uniform int n, uniform float s) {
    foreach (i = 0 ... n) {
        a[i] = a[i] * s;
    }
}
"#;
    let m = compile(src, VectorIsa::Avx, "scale").unwrap();
    let mut interp = Interp::new(&m);
    let input: Vec<f32> = (0..11).map(|i| i as f32).collect();
    let pa = interp.mem.alloc_f32_slice(&input).unwrap();
    interp
        .run("scale", &[ptr(pa), i32v(11), f32v(2.5)], &mut NoHost)
        .unwrap();
    let out = interp.mem.read_f32_slice(pa, 11).unwrap();
    for (i, v) in out.iter().enumerate() {
        assert_eq!(*v, i as f32 * 2.5);
    }
}

#[test]
fn varying_if_relu() {
    let src = r#"
export void relu(uniform float a[], uniform int n) {
    foreach (i = 0 ... n) {
        float v = a[i];
        if (v < 0.0) {
            v = 0.0;
        }
        a[i] = v;
    }
}
"#;
    for isa in VectorIsa::ALL {
        let m = compile(src, isa, "relu").unwrap();
        let mut interp = Interp::new(&m);
        let input: Vec<f32> = (0..13).map(|i| i as f32 - 6.0).collect();
        let pa = interp.mem.alloc_f32_slice(&input).unwrap();
        interp
            .run("relu", &[ptr(pa), i32v(13)], &mut NoHost)
            .unwrap();
        let out = interp.mem.read_f32_slice(pa, 13).unwrap();
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (i as f32 - 6.0).max(0.0), "isa={isa} lane {i}");
        }
    }
}

#[test]
fn gather_permutation() {
    let src = r#"
export void permute(uniform float a[], uniform int idx[], uniform float out[], uniform int n) {
    foreach (i = 0 ... n) {
        int j = idx[i];
        out[i] = a[j];
    }
}
"#;
    for isa in VectorIsa::ALL {
        let m = compile(src, isa, "perm").unwrap();
        let mut interp = Interp::new(&m);
        let n = 10;
        let a: Vec<f32> = (0..n).map(|i| i as f32 * 10.0).collect();
        let idx: Vec<i32> = (0..n as i32).rev().collect();
        let pa = interp.mem.alloc_f32_slice(&a).unwrap();
        let pi = interp.mem.alloc_i32_slice(&idx).unwrap();
        let po = interp.mem.alloc_f32_slice(&vec![0.0; n]).unwrap();
        interp
            .run(
                "permute",
                &[ptr(pa), ptr(pi), ptr(po), i32v(n as i32)],
                &mut NoHost,
            )
            .unwrap();
        let out = interp.mem.read_f32_slice(po, n).unwrap();
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, (n - 1 - i) as f32 * 10.0, "isa={isa} i={i}");
        }
    }
}

#[test]
fn masked_scatter_in_partial_region_stays_in_bounds() {
    // n = 9 on AVX: the partial region handles one element; a mask bug
    // would write (or read) out of bounds and trap.
    let src = r#"
export void double_indirect(uniform float a[], uniform int idx[], uniform int n) {
    foreach (i = 0 ... n) {
        int j = idx[i];
        a[j] = a[j] * 2.0;
    }
}
"#;
    let m = compile(src, VectorIsa::Avx, "di").unwrap();
    let mut interp = Interp::new(&m);
    let n = 9;
    let a: Vec<f32> = (0..n).map(|i| i as f32 + 1.0).collect();
    let idx: Vec<i32> = (0..n as i32).collect();
    let pa = interp.mem.alloc_f32_slice(&a).unwrap();
    let pi = interp.mem.alloc_i32_slice(&idx).unwrap();
    interp
        .run(
            "double_indirect",
            &[ptr(pa), ptr(pi), i32v(n as i32)],
            &mut NoHost,
        )
        .unwrap();
    let out = interp.mem.read_f32_slice(pa, n).unwrap();
    for (i, v) in out.iter().enumerate() {
        assert_eq!(*v, (i as f32 + 1.0) * 2.0);
    }
}

#[test]
fn stencil_affine_offsets() {
    let src = r#"
export void blur3(uniform float a[], uniform float out[], uniform int n) {
    foreach (i = 0 ... n) {
        out[i + 1] = (a[i] + a[i + 1] + a[i + 2]) / 3.0;
    }
}
"#;
    for isa in VectorIsa::ALL {
        let m = compile(src, isa, "blur").unwrap();
        let mut interp = Interp::new(&m);
        let interior = 10; // iterate over 10 windows in a 12-element array
        let a: Vec<f32> = (0..interior + 2).map(|i| (i * i) as f32).collect();
        let pa = interp.mem.alloc_f32_slice(&a).unwrap();
        let po = interp
            .mem
            .alloc_f32_slice(&vec![0.0; interior + 2])
            .unwrap();
        interp
            .run(
                "blur3",
                &[ptr(pa), ptr(po), i32v(interior as i32)],
                &mut NoHost,
            )
            .unwrap();
        let out = interp.mem.read_f32_slice(po, interior + 2).unwrap();
        for i in 0..interior {
            let expect = (a[i] + a[i + 1] + a[i + 2]) / 3.0;
            assert!((out[i + 1] - expect).abs() < 1e-5, "isa={isa} i={i}");
        }
    }
}

#[test]
fn nested_uniform_loop_with_foreach() {
    // Jacobi-style: repeated relaxation sweeps.
    let src = r#"
export void sweep(uniform float a[], uniform float b[], uniform int n, uniform int iters) {
    for (uniform int t = 0; t < iters; t++) {
        foreach (i = 0 ... n) {
            b[i + 1] = (a[i] + a[i + 2]) * 0.5;
        }
        foreach (i = 0 ... n) {
            a[i + 1] = b[i + 1];
        }
    }
}
"#;
    let m = compile(src, VectorIsa::Avx, "sweep").unwrap();
    let mut interp = Interp::new(&m);
    let total = 12;
    let n = total - 2;
    let mut a: Vec<f32> = vec![0.0; total];
    a[0] = 1.0;
    a[total - 1] = 1.0;
    let pa = interp.mem.alloc_f32_slice(&a).unwrap();
    let pb = interp.mem.alloc_f32_slice(&vec![0.0; total]).unwrap();
    interp
        .run(
            "sweep",
            &[ptr(pa), ptr(pb), i32v(n as i32), i32v(3)],
            &mut NoHost,
        )
        .unwrap();
    // Reference.
    let mut reference = a.clone();
    for _ in 0..3 {
        let snapshot = reference.clone();
        for i in 0..n {
            reference[i + 1] = (snapshot[i] + snapshot[i + 2]) * 0.5;
        }
    }
    let out = interp.mem.read_f32_slice(pa, total).unwrap();
    for i in 0..total {
        assert!(
            (out[i] - reference[i]).abs() < 1e-5,
            "i={i}: {} vs {}",
            out[i],
            reference[i]
        );
    }
}

#[test]
fn math_builtins_numerics() {
    let src = r#"
export void m(uniform float x[], uniform float out[], uniform int n) {
    foreach (i = 0 ... n) {
        out[i] = sqrt(x[i]) + exp(x[i] * 0.1) + pow(x[i], 2.0);
    }
}
"#;
    let m = compile(src, VectorIsa::Sse4, "m").unwrap();
    let mut interp = Interp::new(&m);
    let n = 6;
    let x: Vec<f32> = (0..n).map(|i| i as f32 + 0.5).collect();
    let px = interp.mem.alloc_f32_slice(&x).unwrap();
    let po = interp.mem.alloc_f32_slice(&vec![0.0; n]).unwrap();
    interp
        .run("m", &[ptr(px), ptr(po), i32v(n as i32)], &mut NoHost)
        .unwrap();
    let out = interp.mem.read_f32_slice(po, n).unwrap();
    for i in 0..n {
        let xi = x[i] as f64;
        let expect = xi.sqrt() + (xi * 0.10000000149011612).exp() + xi.powf(2.0);
        assert!(
            (out[i] as f64 - expect).abs() < 1e-3,
            "i={i}: {} vs {expect}",
            out[i]
        );
    }
}

#[test]
fn avx_and_sse_agree() {
    let src = r#"
export void kernel(uniform float a[], uniform float out[], uniform int n) {
    foreach (i = 0 ... n) {
        float v = a[i];
        if (v > 0.5) {
            v = v * 2.0 + 1.0;
        } else {
            v = v - 1.0;
        }
        out[i] = v * v;
    }
}
"#;
    let run = |isa: VectorIsa| -> Vec<f32> {
        let m = compile(src, isa, "k").unwrap();
        let mut interp = Interp::new(&m);
        let n = 23;
        let a: Vec<f32> = (0..n).map(|i| (i as f32 * 0.17).sin()).collect();
        let pa = interp.mem.alloc_f32_slice(&a).unwrap();
        let po = interp.mem.alloc_f32_slice(&vec![0.0; n]).unwrap();
        interp
            .run("kernel", &[ptr(pa), ptr(po), i32v(n as i32)], &mut NoHost)
            .unwrap();
        interp.mem.read_f32_slice(po, n).unwrap()
    };
    assert_eq!(run(VectorIsa::Avx), run(VectorIsa::Sse4));
}

#[test]
fn varying_while_mandelbrot_row() {
    // The ISPC mandelbrot kernel shape: per-lane iteration counts with a
    // masked (varying) while loop.
    let src = r#"
export void mandel_row(uniform float x0, uniform float dx, uniform float cy,
                       uniform int w, uniform int maxit, uniform int out[]) {
    foreach (i = 0 ... w) {
        float cx = x0 + dx * (float)i;
        float zx = 0.0;
        float zy = 0.0;
        int count = 0;
        while (zx * zx + zy * zy < 4.0 && count < maxit) {
            float nzx = zx * zx - zy * zy + cx;
            zy = 2.0 * zx * zy + cy;
            zx = nzx;
            count = count + 1;
        }
        out[i] = count;
    }
}
"#;
    let reference = |cx: f32, cy: f32, maxit: i32| -> i32 {
        let (mut zx, mut zy, mut count) = (0.0f32, 0.0f32, 0);
        while zx * zx + zy * zy < 4.0 && count < maxit {
            let nzx = zx * zx - zy * zy + cx;
            zy = 2.0 * zx * zy + cy;
            zx = nzx;
            count += 1;
        }
        count
    };
    for isa in VectorIsa::ALL {
        let m = compile(src, isa, "mandel").unwrap();
        let mut interp = Interp::new(&m);
        let w = 23usize;
        let (x0, dx, cy, maxit) = (-2.0f32, 0.12f32, 0.35f32, 64);
        let out = interp.mem.alloc_i32_slice(&vec![0; w]).unwrap();
        interp
            .run(
                "mandel_row",
                &[
                    f32v(x0),
                    f32v(dx),
                    f32v(cy),
                    i32v(w as i32),
                    i32v(maxit),
                    ptr(out),
                ],
                &mut NoHost,
            )
            .unwrap();
        let got = interp.mem.read_i32_slice(out, w).unwrap();
        for (i, g) in got.iter().enumerate() {
            let expect = reference(x0 + dx * i as f32, cy, maxit);
            assert_eq!(*g, expect, "isa={isa} i={i}");
        }
    }
}

#[test]
fn varying_while_lanes_retire_independently() {
    // Each lane loops `i` times; retired lanes must keep their values.
    let src = r#"
export void countdown(uniform int out[], uniform int n) {
    foreach (i = 0 ... n) {
        int steps = 0;
        int remaining = i;
        while (remaining > 0) {
            remaining = remaining - 1;
            steps = steps + 2;
        }
        out[i] = steps;
    }
}
"#;
    for isa in VectorIsa::ALL {
        let m = compile(src, isa, "cd").unwrap();
        let mut interp = Interp::new(&m);
        let n = 13usize;
        let out = interp.mem.alloc_i32_slice(&vec![-1; n]).unwrap();
        interp
            .run("countdown", &[ptr(out), i32v(n as i32)], &mut NoHost)
            .unwrap();
        let got = interp.mem.read_i32_slice(out, n).unwrap();
        for (i, v) in got.iter().enumerate() {
            assert_eq!(*v, 2 * i as i32, "isa={isa} lane {i}");
        }
    }
}

#[test]
fn varying_while_rejects_uniform_mutation() {
    let src = r#"
export void bad(uniform float a[], uniform int n) {
    uniform int total = 0;
    foreach (i = 0 ... n) {
        int k = i;
        while (k > 0) {
            k = k - 1;
            total = total + 1;
        }
    }
}
"#;
    let e = compile(src, VectorIsa::Avx, "bad").unwrap_err();
    assert!(e.msg.contains("uniform"), "{e}");
}
