//! Abstract syntax tree of SPMD-C.
//!
//! SPMD-C is the ISPC subset this reproduction compiles: `uniform`/varying
//! scalars, array parameters, `foreach` range loops, uniform `for`/`while`,
//! varying `if` (compiled to masks/selects), math builtins, and masked
//! cross-lane reductions (`reduce_add`).

/// Element/base types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaseTy {
    Bool,
    Int,
    Float,
    Double,
}

impl BaseTy {
    pub fn name(self) -> &'static str {
        match self {
            BaseTy::Bool => "bool",
            BaseTy::Int => "int",
            BaseTy::Float => "float",
            BaseTy::Double => "double",
        }
    }

    pub fn is_numeric(self) -> bool {
        !matches!(self, BaseTy::Bool)
    }
}

/// A scalar SPMD type: base type plus rate (uniform = one value for all
/// lanes, varying = one value per lane).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct STy {
    pub base: BaseTy,
    pub uniform: bool,
}

impl STy {
    pub fn uniform(base: BaseTy) -> STy {
        STy {
            base,
            uniform: true,
        }
    }

    pub fn varying(base: BaseTy) -> STy {
        STy {
            base,
            uniform: false,
        }
    }
}

impl std::fmt::Display for STy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {}",
            if self.uniform { "uniform" } else { "varying" },
            self.base.name()
        )
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinKind {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    And,
    Or,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
}

impl BinKind {
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinKind::Lt | BinKind::Le | BinKind::Gt | BinKind::Ge | BinKind::Eq | BinKind::Ne
        )
    }

    pub fn is_logical(self) -> bool {
        matches!(self, BinKind::And | BinKind::Or)
    }

    pub fn is_bitwise(self) -> bool {
        matches!(
            self,
            BinKind::BitAnd | BinKind::BitOr | BinKind::BitXor | BinKind::Shl | BinKind::Shr
        )
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnKind {
    Neg,
    Not,
}

/// Expressions. Each node carries the source line for diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    pub kind: ExprKind,
    pub line: usize,
}

#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    IntLit(i64),
    FloatLit(f64),
    BoolLit(bool),
    Ident(String),
    Bin(BinKind, Box<Expr>, Box<Expr>),
    Un(UnKind, Box<Expr>),
    /// `array[index]`
    Index(String, Box<Expr>),
    /// Builtin call (`sqrt`, `reduce_add`, ...).
    Call(String, Vec<Expr>),
    /// C-style cast `(float) e` / `(int) e`.
    Cast(BaseTy, Box<Expr>),
    /// `cond ? a : b`
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
}

impl Expr {
    pub fn new(kind: ExprKind, line: usize) -> Expr {
        Expr { kind, line }
    }
}

/// Assignment targets.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    Var(String),
    Elem(String, Expr),
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    pub kind: StmtKind,
    pub line: usize,
}

#[derive(Debug, Clone, PartialEq)]
pub enum StmtKind {
    /// `uniform float x = e;` / `float x = e;` (varying by default, like
    /// ISPC).
    Decl {
        ty: STy,
        name: String,
        init: Expr,
    },
    /// `lv = e;` / `lv += e;` (op is the compound-assignment operator).
    Assign {
        target: LValue,
        op: Option<BinKind>,
        value: Expr,
    },
    If {
        cond: Expr,
        then_body: Vec<Stmt>,
        else_body: Vec<Stmt>,
    },
    /// Uniform-condition `while`.
    While {
        cond: Expr,
        body: Vec<Stmt>,
    },
    /// C-style `for` with uniform condition.
    For {
        init: Option<Box<Stmt>>,
        cond: Expr,
        step: Option<Box<Stmt>>,
        body: Vec<Stmt>,
    },
    /// ISPC `foreach (v = start ... end)`.
    Foreach {
        var: String,
        start: Expr,
        end: Expr,
        body: Vec<Stmt>,
    },
    Return(Option<Expr>),
    /// Expression evaluated for effect (builtin calls).
    ExprStmt(Expr),
}

impl Stmt {
    pub fn new(kind: StmtKind, line: usize) -> Stmt {
        Stmt { kind, line }
    }
}

/// Function parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamTy {
    /// `uniform int n` (exported kernels take uniform scalars).
    Scalar(STy),
    /// `uniform float a[]` — a pointer to `elem` data shared by all lanes.
    Array { elem: BaseTy },
}

#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    pub name: String,
    pub ty: ParamTy,
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncDef {
    pub name: String,
    pub params: Vec<Param>,
    /// `None` for void; otherwise a uniform scalar return.
    pub ret: Option<STy>,
    pub body: Vec<Stmt>,
    pub export: bool,
    pub line: usize,
}

/// A parsed translation unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    pub funcs: Vec<FuncDef>,
}

/// Collect the names assigned anywhere in `stmts`, excluding names that are
/// (re)declared within before the assignment — those are loop-local. Used
/// by the code generator to build loop-header phis.
pub fn assigned_vars(stmts: &[Stmt]) -> Vec<String> {
    let mut out = Vec::new();
    let mut declared = Vec::new();
    collect_assigned(stmts, &mut declared, &mut out);
    out
}

fn collect_assigned(stmts: &[Stmt], declared: &mut Vec<String>, out: &mut Vec<String>) {
    let depth = declared.len();
    for s in stmts {
        match &s.kind {
            StmtKind::Decl { name, .. } => declared.push(name.clone()),
            StmtKind::Assign { target, .. } => {
                if let LValue::Var(n) = target {
                    if !declared.contains(n) && !out.contains(n) {
                        out.push(n.clone());
                    }
                }
            }
            StmtKind::If {
                then_body,
                else_body,
                ..
            } => {
                collect_assigned(then_body, declared, out);
                collect_assigned(else_body, declared, out);
            }
            StmtKind::While { body, .. } => collect_assigned(body, declared, out),
            StmtKind::For {
                init, step, body, ..
            } => {
                let d2 = declared.len();
                if let Some(i) = init {
                    collect_assigned(std::slice::from_ref(i), declared, out);
                }
                collect_assigned(body, declared, out);
                if let Some(st) = step {
                    collect_assigned(std::slice::from_ref(st), declared, out);
                }
                declared.truncate(d2);
            }
            StmtKind::Foreach { var, body, .. } => {
                declared.push(var.clone());
                collect_assigned(body, declared, out);
                declared.pop();
            }
            StmtKind::Return(_) | StmtKind::ExprStmt(_) => {}
        }
    }
    declared.truncate(depth);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assign(name: &str) -> Stmt {
        Stmt::new(
            StmtKind::Assign {
                target: LValue::Var(name.into()),
                op: None,
                value: Expr::new(ExprKind::IntLit(0), 1),
            },
            1,
        )
    }

    fn decl(name: &str) -> Stmt {
        Stmt::new(
            StmtKind::Decl {
                ty: STy::uniform(BaseTy::Int),
                name: name.into(),
                init: Expr::new(ExprKind::IntLit(0), 1),
            },
            1,
        )
    }

    #[test]
    fn assigned_vars_skips_locally_declared() {
        let stmts = vec![decl("local"), assign("local"), assign("outer")];
        assert_eq!(assigned_vars(&stmts), vec!["outer".to_string()]);
    }

    #[test]
    fn assigned_vars_looks_into_nested_control() {
        let inner = vec![assign("x")];
        let stmts = vec![Stmt::new(
            StmtKind::If {
                cond: Expr::new(ExprKind::BoolLit(true), 1),
                then_body: inner,
                else_body: vec![assign("y")],
            },
            1,
        )];
        let mut vars = assigned_vars(&stmts);
        vars.sort();
        assert_eq!(vars, vec!["x".to_string(), "y".to_string()]);
    }

    #[test]
    fn foreach_var_not_counted() {
        let stmts = vec![Stmt::new(
            StmtKind::Foreach {
                var: "i".into(),
                start: Expr::new(ExprKind::IntLit(0), 1),
                end: Expr::new(ExprKind::IntLit(8), 1),
                body: vec![assign("i"), assign("acc")],
            },
            1,
        )];
        assert_eq!(assigned_vars(&stmts), vec!["acc".to_string()]);
    }

    #[test]
    fn sty_display() {
        assert_eq!(STy::uniform(BaseTy::Float).to_string(), "uniform float");
        assert_eq!(STy::varying(BaseTy::Int).to_string(), "varying int");
    }
}
