//! Recursive-descent parser for SPMD-C.

use crate::ast::*;
use crate::lexer::{lex, Kw, LexError, Tok, Token};

/// Parse error with a source line.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub line: usize,
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> ParseError {
        ParseError {
            line: e.line,
            msg: e.msg,
        }
    }
}

type PResult<T> = Result<T, ParseError>;

/// Parse a whole SPMD-C translation unit.
pub fn parse_program(src: &str) -> PResult<Program> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let mut prog = Program::default();
    while !p.at_end() {
        prog.funcs.push(p.func_def()?);
    }
    Ok(prog)
}

struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn line(&self) -> usize {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map_or(0, |t| t.line)
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|t| &t.tok)
    }

    fn bump(&mut self) -> PResult<Tok> {
        let t = self
            .toks
            .get(self.pos)
            .cloned()
            .ok_or_else(|| self.err("unexpected end of input"))?;
        self.pos += 1;
        Ok(t.tok)
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line(),
            msg: msg.into(),
        }
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: Tok) -> PResult<()> {
        if self.eat(&t) {
            Ok(())
        } else {
            Err(self.err(format!("expected {t:?}, got {:?}", self.peek())))
        }
    }

    fn ident(&mut self) -> PResult<String> {
        match self.bump()? {
            Tok::Ident(s) => Ok(s),
            t => Err(self.err(format!("expected identifier, got {t:?}"))),
        }
    }

    fn base_ty(&mut self) -> PResult<BaseTy> {
        match self.bump()? {
            Tok::Kw(Kw::Int) => Ok(BaseTy::Int),
            Tok::Kw(Kw::Float) => Ok(BaseTy::Float),
            Tok::Kw(Kw::Double) => Ok(BaseTy::Double),
            Tok::Kw(Kw::Bool) => Ok(BaseTy::Bool),
            t => Err(self.err(format!("expected type, got {t:?}"))),
        }
    }

    fn is_base_ty(t: Option<&Tok>) -> bool {
        matches!(
            t,
            Some(Tok::Kw(Kw::Int) | Tok::Kw(Kw::Float) | Tok::Kw(Kw::Double) | Tok::Kw(Kw::Bool))
        )
    }

    // --- Declarations ------------------------------------------------------

    fn func_def(&mut self) -> PResult<FuncDef> {
        let line = self.line();
        let export = self.eat(&Tok::Kw(Kw::Export));
        // Return type: `void` or `[uniform] base`.
        let ret = if self.eat(&Tok::Kw(Kw::Void)) {
            None
        } else {
            let _ = self.eat(&Tok::Kw(Kw::Uniform)); // returns are uniform
            Some(STy::uniform(self.base_ty()?))
        };
        let name = self.ident()?;
        self.expect(Tok::LParen)?;
        let mut params = Vec::new();
        if !self.eat(&Tok::RParen) {
            loop {
                params.push(self.param()?);
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(Tok::RParen)?;
        }
        self.expect(Tok::LBrace)?;
        let body = self.block_body()?;
        Ok(FuncDef {
            name,
            params,
            ret,
            body,
            export,
            line,
        })
    }

    fn param(&mut self) -> PResult<Param> {
        let uniform = self.eat(&Tok::Kw(Kw::Uniform));
        let varying = !uniform && self.eat(&Tok::Kw(Kw::Varying));
        let base = self.base_ty()?;
        let name = self.ident()?;
        if self.eat(&Tok::LBracket) {
            self.expect(Tok::RBracket)?;
            if varying {
                return Err(self.err("array parameters must be uniform"));
            }
            return Ok(Param {
                name,
                ty: ParamTy::Array { elem: base },
            });
        }
        Ok(Param {
            name,
            ty: ParamTy::Scalar(STy {
                base,
                uniform: uniform || !varying, // scalars default uniform at the ABI
            }),
        })
    }

    // --- Statements --------------------------------------------------------

    /// Statements until the closing `}` (which is consumed).
    fn block_body(&mut self) -> PResult<Vec<Stmt>> {
        let mut stmts = Vec::new();
        while !self.eat(&Tok::RBrace) {
            if self.at_end() {
                return Err(self.err("unterminated block"));
            }
            stmts.push(self.stmt()?);
        }
        Ok(stmts)
    }

    /// A `{ ... }` block or a single statement.
    fn block_or_stmt(&mut self) -> PResult<Vec<Stmt>> {
        if self.eat(&Tok::LBrace) {
            self.block_body()
        } else {
            Ok(vec![self.stmt()?])
        }
    }

    fn stmt(&mut self) -> PResult<Stmt> {
        let line = self.line();
        match self.peek() {
            Some(Tok::Kw(Kw::Uniform) | Tok::Kw(Kw::Varying)) => {
                let s = self.decl_stmt()?;
                self.expect(Tok::Semi)?;
                Ok(s)
            }
            t if Self::is_base_ty(t) => {
                let s = self.decl_stmt()?;
                self.expect(Tok::Semi)?;
                Ok(s)
            }
            Some(Tok::Kw(Kw::If)) => {
                self.bump()?;
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                let then_body = self.block_or_stmt()?;
                let else_body = if self.eat(&Tok::Kw(Kw::Else)) {
                    self.block_or_stmt()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::new(
                    StmtKind::If {
                        cond,
                        then_body,
                        else_body,
                    },
                    line,
                ))
            }
            Some(Tok::Kw(Kw::While)) => {
                self.bump()?;
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                let body = self.block_or_stmt()?;
                Ok(Stmt::new(StmtKind::While { cond, body }, line))
            }
            Some(Tok::Kw(Kw::For)) => {
                self.bump()?;
                self.expect(Tok::LParen)?;
                let init = if self.eat(&Tok::Semi) {
                    None
                } else {
                    let s = if Self::is_base_ty(self.peek())
                        || matches!(
                            self.peek(),
                            Some(Tok::Kw(Kw::Uniform) | Tok::Kw(Kw::Varying))
                        ) {
                        self.decl_stmt()?
                    } else {
                        self.simple_stmt()?
                    };
                    self.expect(Tok::Semi)?;
                    Some(Box::new(s))
                };
                let cond = self.expr()?;
                self.expect(Tok::Semi)?;
                let step = if self.peek() == Some(&Tok::RParen) {
                    None
                } else {
                    Some(Box::new(self.simple_stmt()?))
                };
                self.expect(Tok::RParen)?;
                let body = self.block_or_stmt()?;
                Ok(Stmt::new(
                    StmtKind::For {
                        init,
                        cond,
                        step,
                        body,
                    },
                    line,
                ))
            }
            Some(Tok::Kw(Kw::Foreach)) => {
                self.bump()?;
                self.expect(Tok::LParen)?;
                let var = self.ident()?;
                self.expect(Tok::Assign)?;
                let start = self.expr()?;
                self.expect(Tok::DotDotDot)?;
                let end = self.expr()?;
                self.expect(Tok::RParen)?;
                let body = self.block_or_stmt()?;
                Ok(Stmt::new(
                    StmtKind::Foreach {
                        var,
                        start,
                        end,
                        body,
                    },
                    line,
                ))
            }
            Some(Tok::Kw(Kw::Return)) => {
                self.bump()?;
                let val = if self.peek() == Some(&Tok::Semi) {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(Tok::Semi)?;
                Ok(Stmt::new(StmtKind::Return(val), line))
            }
            _ => {
                let s = self.simple_stmt()?;
                self.expect(Tok::Semi)?;
                Ok(s)
            }
        }
    }

    /// Declaration without trailing `;`: `[uniform|varying] base name = e`.
    fn decl_stmt(&mut self) -> PResult<Stmt> {
        let line = self.line();
        let uniform = self.eat(&Tok::Kw(Kw::Uniform));
        let _varying = !uniform && self.eat(&Tok::Kw(Kw::Varying));
        let base = self.base_ty()?;
        let name = self.ident()?;
        self.expect(Tok::Assign)?;
        let init = self.expr()?;
        Ok(Stmt::new(
            StmtKind::Decl {
                ty: STy { base, uniform },
                name,
                init,
            },
            line,
        ))
    }

    /// Assignment / compound assignment / `++`/`--` / expression statement,
    /// without trailing `;`.
    fn simple_stmt(&mut self) -> PResult<Stmt> {
        let line = self.line();
        // lvalue forms start with an identifier.
        if let Some(Tok::Ident(_)) = self.peek() {
            // Peek ahead to distinguish assignment from expression.
            let name = match self.peek() {
                Some(Tok::Ident(s)) => s.clone(),
                _ => unreachable!(),
            };
            match self.peek2() {
                Some(Tok::Assign)
                | Some(Tok::PlusAssign)
                | Some(Tok::MinusAssign)
                | Some(Tok::StarAssign)
                | Some(Tok::SlashAssign) => {
                    self.bump()?; // ident
                    let op = match self.bump()? {
                        Tok::Assign => None,
                        Tok::PlusAssign => Some(BinKind::Add),
                        Tok::MinusAssign => Some(BinKind::Sub),
                        Tok::StarAssign => Some(BinKind::Mul),
                        Tok::SlashAssign => Some(BinKind::Div),
                        _ => unreachable!(),
                    };
                    let value = self.expr()?;
                    return Ok(Stmt::new(
                        StmtKind::Assign {
                            target: LValue::Var(name),
                            op,
                            value,
                        },
                        line,
                    ));
                }
                Some(Tok::PlusPlus) | Some(Tok::MinusMinus) => {
                    self.bump()?;
                    let op = match self.bump()? {
                        Tok::PlusPlus => BinKind::Add,
                        _ => BinKind::Sub,
                    };
                    return Ok(Stmt::new(
                        StmtKind::Assign {
                            target: LValue::Var(name),
                            op: Some(op),
                            value: Expr::new(ExprKind::IntLit(1), line),
                        },
                        line,
                    ));
                }
                Some(Tok::LBracket) => {
                    // Could be `a[i] = e` or an expression starting with an
                    // index; scan for the matching ']' and check what follows.
                    let mut depth = 0usize;
                    let mut k = self.pos + 1;
                    let mut close = None;
                    while k < self.toks.len() {
                        match self.toks[k].tok {
                            Tok::LBracket => depth += 1,
                            Tok::RBracket => {
                                depth -= 1;
                                if depth == 0 {
                                    close = Some(k);
                                    break;
                                }
                            }
                            _ => {}
                        }
                        k += 1;
                    }
                    let is_assign = close.is_some_and(|c| {
                        matches!(
                            self.toks.get(c + 1).map(|t| &t.tok),
                            Some(
                                Tok::Assign
                                    | Tok::PlusAssign
                                    | Tok::MinusAssign
                                    | Tok::StarAssign
                                    | Tok::SlashAssign
                            )
                        )
                    });
                    if is_assign {
                        self.bump()?; // ident
                        self.expect(Tok::LBracket)?;
                        let idx = self.expr()?;
                        self.expect(Tok::RBracket)?;
                        let op = match self.bump()? {
                            Tok::Assign => None,
                            Tok::PlusAssign => Some(BinKind::Add),
                            Tok::MinusAssign => Some(BinKind::Sub),
                            Tok::StarAssign => Some(BinKind::Mul),
                            Tok::SlashAssign => Some(BinKind::Div),
                            _ => unreachable!(),
                        };
                        let value = self.expr()?;
                        return Ok(Stmt::new(
                            StmtKind::Assign {
                                target: LValue::Elem(name, idx),
                                op,
                                value,
                            },
                            line,
                        ));
                    }
                }
                _ => {}
            }
        }
        let e = self.expr()?;
        Ok(Stmt::new(StmtKind::ExprStmt(e), line))
    }

    // --- Expressions (precedence climbing) ---------------------------------

    fn expr(&mut self) -> PResult<Expr> {
        self.ternary()
    }

    fn ternary(&mut self) -> PResult<Expr> {
        let line = self.line();
        let cond = self.bin_expr(0)?;
        if self.eat(&Tok::Question) {
            let t = self.expr()?;
            self.expect(Tok::Colon)?;
            let e = self.expr()?;
            return Ok(Expr::new(
                ExprKind::Ternary(Box::new(cond), Box::new(t), Box::new(e)),
                line,
            ));
        }
        Ok(cond)
    }

    fn bin_op_of(tok: &Tok) -> Option<(BinKind, u8)> {
        // Higher binds tighter.
        Some(match tok {
            Tok::OrOr => (BinKind::Or, 1),
            Tok::AndAnd => (BinKind::And, 2),
            Tok::Pipe => (BinKind::BitOr, 3),
            Tok::Caret => (BinKind::BitXor, 4),
            Tok::Amp => (BinKind::BitAnd, 5),
            Tok::EqEq => (BinKind::Eq, 6),
            Tok::Ne => (BinKind::Ne, 6),
            Tok::Lt => (BinKind::Lt, 7),
            Tok::Le => (BinKind::Le, 7),
            Tok::Gt => (BinKind::Gt, 7),
            Tok::Ge => (BinKind::Ge, 7),
            Tok::Shl => (BinKind::Shl, 8),
            Tok::Shr => (BinKind::Shr, 8),
            Tok::Plus => (BinKind::Add, 9),
            Tok::Minus => (BinKind::Sub, 9),
            Tok::Star => (BinKind::Mul, 10),
            Tok::Slash => (BinKind::Div, 10),
            Tok::Percent => (BinKind::Rem, 10),
            _ => return None,
        })
    }

    fn bin_expr(&mut self, min_prec: u8) -> PResult<Expr> {
        let mut lhs = self.unary()?;
        while let Some(tok) = self.peek() {
            let Some((op, prec)) = Self::bin_op_of(tok) else {
                break;
            };
            if prec < min_prec {
                break;
            }
            let line = self.line();
            self.bump()?;
            let rhs = self.bin_expr(prec + 1)?;
            lhs = Expr::new(ExprKind::Bin(op, Box::new(lhs), Box::new(rhs)), line);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> PResult<Expr> {
        let line = self.line();
        if self.eat(&Tok::Minus) {
            let e = self.unary()?;
            return Ok(Expr::new(ExprKind::Un(UnKind::Neg, Box::new(e)), line));
        }
        if self.eat(&Tok::Not) {
            let e = self.unary()?;
            return Ok(Expr::new(ExprKind::Un(UnKind::Not, Box::new(e)), line));
        }
        // Cast: `( basety )` followed by a unary expression.
        if self.peek() == Some(&Tok::LParen) && Self::is_base_ty(self.peek2()) {
            // Ensure it is `(ty)` and not e.g. `(int_var + ...)`: base types
            // are keywords, so this is unambiguous.
            self.bump()?; // (
            let base = self.base_ty()?;
            self.expect(Tok::RParen)?;
            let e = self.unary()?;
            return Ok(Expr::new(ExprKind::Cast(base, Box::new(e)), line));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> PResult<Expr> {
        let line = self.line();
        match self.bump()? {
            Tok::Int(v) => Ok(Expr::new(ExprKind::IntLit(v), line)),
            Tok::Float(v) => Ok(Expr::new(ExprKind::FloatLit(v), line)),
            Tok::Kw(Kw::True) => Ok(Expr::new(ExprKind::BoolLit(true), line)),
            Tok::Kw(Kw::False) => Ok(Expr::new(ExprKind::BoolLit(false), line)),
            Tok::LParen => {
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) => {
                if self.eat(&Tok::LParen) {
                    let mut args = Vec::new();
                    if !self.eat(&Tok::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat(&Tok::Comma) {
                                break;
                            }
                        }
                        self.expect(Tok::RParen)?;
                    }
                    return Ok(Expr::new(ExprKind::Call(name, args), line));
                }
                if self.eat(&Tok::LBracket) {
                    let idx = self.expr()?;
                    self.expect(Tok::RBracket)?;
                    return Ok(Expr::new(ExprKind::Index(name, Box::new(idx)), line));
                }
                Ok(Expr::new(ExprKind::Ident(name), line))
            }
            t => Err(self.err(format!("unexpected token {t:?} in expression"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_vcopy() {
        let src = r#"
export void vcopy_ispc(uniform int a1[], uniform int a2[], uniform int n) {
    foreach (i = 0 ... n) {
        a2[i] = a1[i];
    }
}
"#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.funcs.len(), 1);
        let f = &p.funcs[0];
        assert!(f.export);
        assert_eq!(f.name, "vcopy_ispc");
        assert_eq!(f.params.len(), 3);
        assert!(matches!(
            f.params[0].ty,
            ParamTy::Array { elem: BaseTy::Int }
        ));
        assert!(matches!(f.body[0].kind, StmtKind::Foreach { .. }));
    }

    #[test]
    fn parses_precedence() {
        let src = "void f() { uniform int x = 1 + 2 * 3 < 4 && true; }";
        let p = parse_program(src).unwrap();
        let StmtKind::Decl { init, .. } = &p.funcs[0].body[0].kind else {
            panic!()
        };
        // ((1 + (2*3)) < 4) && true
        let ExprKind::Bin(BinKind::And, lhs, _) = &init.kind else {
            panic!("top must be &&, got {:?}", init.kind)
        };
        let ExprKind::Bin(BinKind::Lt, add, _) = &lhs.kind else {
            panic!()
        };
        let ExprKind::Bin(BinKind::Add, _, mul) = &add.kind else {
            panic!()
        };
        assert!(matches!(mul.kind, ExprKind::Bin(BinKind::Mul, _, _)));
    }

    #[test]
    fn parses_for_and_compound_assign() {
        let src = r#"
void f(uniform float a[], uniform int n) {
    uniform float s = 0.0;
    for (uniform int k = 0; k < n; k++) {
        s += a[k];
        s *= 2.0;
    }
}
"#;
        let p = parse_program(src).unwrap();
        let StmtKind::For {
            init, step, body, ..
        } = &p.funcs[0].body[1].kind
        else {
            panic!()
        };
        assert!(init.is_some());
        assert!(step.is_some());
        assert_eq!(body.len(), 2);
    }

    #[test]
    fn parses_if_else_and_ternary() {
        let src = r#"
void f(uniform float a[], uniform int n) {
    foreach (i = 0 ... n) {
        float v = a[i];
        if (v < 0.0) { a[i] = -v; } else { a[i] = v; }
        float w = v > 1.0 ? 1.0 : v;
        a[i] = w;
    }
}
"#;
        parse_program(src).unwrap();
    }

    #[test]
    fn parses_casts_and_calls() {
        let src = r#"
void f(uniform float out[], uniform int n) {
    foreach (i = 0 ... n) {
        out[i] = sqrt((float) i) + pow(2.0, 3.0);
    }
}
"#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.funcs.len(), 1);
    }

    #[test]
    fn parses_element_compound_assign() {
        let src = "void f(uniform float a[]) { a[0] += 1.0; }";
        let p = parse_program(src).unwrap();
        let StmtKind::Assign { target, op, .. } = &p.funcs[0].body[0].kind else {
            panic!()
        };
        assert!(matches!(target, LValue::Elem(..)));
        assert_eq!(*op, Some(BinKind::Add));
    }

    #[test]
    fn parses_return_types() {
        let src = r#"
uniform float total(uniform float a[], uniform int n) {
    uniform float s = 0.0;
    foreach (i = 0 ... n) {
        s += reduce_add(a[i]);
    }
    return s;
}
"#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.funcs[0].ret, Some(STy::uniform(BaseTy::Float)));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_program("void f( {").is_err());
        assert!(parse_program("void f() { 1 + ; }").is_err());
        assert!(parse_program("void f() { foreach (i = 0 .. n) {} }").is_err());
    }

    #[test]
    fn index_expression_vs_assignment_disambiguation() {
        let src = "void f(uniform float a[], uniform int n) { foreach (i = 0 ... n) { a[i] = a[i] + a[i + 1]; } }";
        parse_program(src).unwrap();
    }
}
