//! # spmdc — a mini-ISPC (SPMD-on-SIMD) compiler targeting VIR
//!
//! The VULFI paper studies ISPC programs compiled with ISPC 1.8.1 at
//! `-O3`. This crate is the stand-in for that compiler: it accepts an
//! ISPC-subset language ("SPMD-C") and emits [`vir`] modules whose shape
//! matches the code-generation patterns the paper's detector synthesis
//! relies on (§III):
//!
//! - `foreach` lowers to the exact CFG of paper Fig. 7 — `allocas`,
//!   `foreach_full_body.lr.ph`, `foreach_full_body` (stepping a `counter`
//!   phi by `Vl`), `partial_inner_all_outer`, `partial_inner_only` (the
//!   masked `n % Vl` remainder), `foreach_reset` — including the
//!   `nextras`/`aligned_end` definitions the loop invariants reference;
//! - uniform values broadcast with `insertelement undef` +
//!   `shufflevector` (paper Fig. 9);
//! - contiguous masked accesses use the AVX/SSE masked intrinsics of
//!   paper Fig. 5; irregular accesses scalarize into per-lane
//!   gather/scatter control flow.
//!
//! Two targets are supported, matching the paper's study: [`VectorIsa::Avx`]
//! (8 lanes) and [`VectorIsa::Sse4`] (4 lanes).
//!
//! ## Example
//!
//! ```
//! use spmdc::{compile, VectorIsa};
//!
//! let src = r#"
//! export void vcopy_ispc(uniform int a1[], uniform int a2[], uniform int n) {
//!     foreach (i = 0 ... n) {
//!         a2[i] = a1[i];
//!     }
//! }
//! "#;
//! let module = compile(src, VectorIsa::Avx, "vcopy").unwrap();
//! assert!(module.function("vcopy_ispc").is_some());
//! ```

pub mod ast;
pub mod codegen;
pub mod lexer;
pub mod parser;
pub mod target;

pub use codegen::{compile, compile_program, CompileError};
pub use parser::{parse_program, ParseError};
pub use target::VectorIsa;
