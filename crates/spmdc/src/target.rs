//! Vector ISA targets.
//!
//! The paper evaluates every benchmark under both Intel AVX (8 × 32-bit
//! lanes) and SSE4 (4 × 32-bit lanes). The target selects the vector width
//! and which masked load/store intrinsic family the code generator emits.

use vir::intrinsics::{maskload_name, maskstore_name};
use vir::ScalarTy;

/// A vector instruction-set target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum VectorIsa {
    /// Intel AVX: 256-bit registers, 8 × f32/i32 lanes.
    Avx,
    /// Intel SSE4: 128-bit registers, 4 × f32/i32 lanes.
    Sse4,
}

impl VectorIsa {
    pub const ALL: [VectorIsa; 2] = [VectorIsa::Avx, VectorIsa::Sse4];

    /// The paper's `Vl` for 32-bit elements.
    pub fn lanes(self) -> u32 {
        match self {
            VectorIsa::Avx => 8,
            VectorIsa::Sse4 => 4,
        }
    }

    /// Lane count for a given element width: 64-bit elements get half the
    /// lanes (pairs of registers would be needed otherwise).
    pub fn lanes_for(self, elem: ScalarTy) -> u32 {
        match elem.bits() {
            64 => self.lanes() / 2,
            _ => self.lanes(),
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            VectorIsa::Avx => "AVX",
            VectorIsa::Sse4 => "SSE",
        }
    }

    /// Masked-load intrinsic name for this target and element type.
    pub fn maskload(self, elem: ScalarTy) -> String {
        maskload_name(self.lanes_for(elem), elem)
    }

    /// Masked-store intrinsic name for this target and element type.
    pub fn maskstore(self, elem: ScalarTy) -> String {
        maskstore_name(self.lanes_for(elem), elem)
    }
}

impl std::fmt::Display for VectorIsa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_counts() {
        assert_eq!(VectorIsa::Avx.lanes(), 8);
        assert_eq!(VectorIsa::Sse4.lanes(), 4);
        assert_eq!(VectorIsa::Avx.lanes_for(ScalarTy::F64), 4);
        assert_eq!(VectorIsa::Sse4.lanes_for(ScalarTy::F64), 2);
        assert_eq!(VectorIsa::Avx.lanes_for(ScalarTy::I32), 8);
    }

    #[test]
    fn intrinsic_names_match_paper() {
        assert_eq!(
            VectorIsa::Avx.maskload(ScalarTy::F32),
            "llvm.x86.avx.maskload.ps.256"
        );
        assert_eq!(
            VectorIsa::Avx.maskstore(ScalarTy::F32),
            "llvm.x86.avx.maskstore.ps.256"
        );
        assert_eq!(
            VectorIsa::Sse4.maskload(ScalarTy::I32),
            "llvm.x86.sse41.maskload.d"
        );
    }
}
