//! Lexer for SPMD-C, the ISPC-subset input language.

use std::fmt;

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    // Literals
    Int(i64),
    Float(f64),
    // Identifiers and keywords
    Ident(String),
    Kw(Kw),
    // Punctuation / operators
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semi,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    Lt,
    Le,
    Gt,
    Ge,
    EqEq,
    Ne,
    AndAnd,
    OrOr,
    Not,
    Amp,
    Pipe,
    Caret,
    Shl,
    Shr,
    Question,
    Colon,
    PlusPlus,
    MinusMinus,
    DotDotDot,
}

/// Keywords.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kw {
    Uniform,
    Varying,
    Int,
    Float,
    Double,
    Bool,
    Void,
    If,
    Else,
    For,
    While,
    Foreach,
    Return,
    True,
    False,
    Export,
}

fn keyword(s: &str) -> Option<Kw> {
    Some(match s {
        "uniform" => Kw::Uniform,
        "varying" => Kw::Varying,
        "int" => Kw::Int,
        "float" => Kw::Float,
        "double" => Kw::Double,
        "bool" => Kw::Bool,
        "void" => Kw::Void,
        "if" => Kw::If,
        "else" => Kw::Else,
        "for" => Kw::For,
        "while" => Kw::While,
        "foreach" => Kw::Foreach,
        "return" => Kw::Return,
        "true" => Kw::True,
        "false" => Kw::False,
        "export" => Kw::Export,
        _ => return None,
    })
}

/// A token with its source line (1-based).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub tok: Tok,
    pub line: usize,
}

/// Lexical error.
#[derive(Debug, Clone, PartialEq)]
pub struct LexError {
    pub line: usize,
    pub msg: String,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for LexError {}

/// Tokenize a source string. `//` and `/* */` comments are skipped.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let chars: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line = 1;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Comments
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            continue;
        }
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let start_line = line;
            i += 2;
            loop {
                if i >= chars.len() {
                    return Err(LexError {
                        line: start_line,
                        msg: "unterminated block comment".into(),
                    });
                }
                if chars[i] == '\n' {
                    line += 1;
                }
                if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    i += 2;
                    break;
                }
                i += 1;
            }
            continue;
        }
        // Numbers
        if c.is_ascii_digit() || (c == '.' && chars.get(i + 1).is_some_and(|d| d.is_ascii_digit()))
        {
            let start = i;
            let mut is_float = false;
            while i < chars.len() {
                let d = chars[i];
                if d.is_ascii_digit() {
                    i += 1;
                } else if d == '.' && !is_float {
                    is_float = true;
                    i += 1;
                } else if (d == 'e' || d == 'E')
                    && chars
                        .get(i + 1)
                        .is_some_and(|n| n.is_ascii_digit() || *n == '+' || *n == '-')
                {
                    is_float = true;
                    i += 2;
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        i += 1;
                    }
                    break;
                } else {
                    break;
                }
            }
            // Optional float suffix.
            if i < chars.len() && (chars[i] == 'f' || chars[i] == 'F') {
                i += 1;
                let text: String = chars[start..i - 1].iter().collect();
                let v: f64 = text.parse().map_err(|_| LexError {
                    line,
                    msg: format!("bad float literal {text}"),
                })?;
                toks.push(Token {
                    tok: Tok::Float(v),
                    line,
                });
                continue;
            }
            let text: String = chars[start..i].iter().collect();
            if is_float {
                let v: f64 = text.parse().map_err(|_| LexError {
                    line,
                    msg: format!("bad float literal {text}"),
                })?;
                toks.push(Token {
                    tok: Tok::Float(v),
                    line,
                });
            } else {
                let v: i64 = text.parse().map_err(|_| LexError {
                    line,
                    msg: format!("bad integer literal {text}"),
                })?;
                toks.push(Token {
                    tok: Tok::Int(v),
                    line,
                });
            }
            continue;
        }
        // Identifiers / keywords
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            let tok = match keyword(&text) {
                Some(k) => Tok::Kw(k),
                None => Tok::Ident(text),
            };
            toks.push(Token { tok, line });
            continue;
        }
        // Operators / punctuation
        let two = |a: char, b: char| c == a && chars.get(i + 1) == Some(&b);
        let (tok, width) =
            if c == '.' && chars.get(i + 1) == Some(&'.') && chars.get(i + 2) == Some(&'.') {
                (Tok::DotDotDot, 3)
            } else if two('+', '+') {
                (Tok::PlusPlus, 2)
            } else if two('-', '-') {
                (Tok::MinusMinus, 2)
            } else if two('+', '=') {
                (Tok::PlusAssign, 2)
            } else if two('-', '=') {
                (Tok::MinusAssign, 2)
            } else if two('*', '=') {
                (Tok::StarAssign, 2)
            } else if two('/', '=') {
                (Tok::SlashAssign, 2)
            } else if two('<', '=') {
                (Tok::Le, 2)
            } else if two('>', '=') {
                (Tok::Ge, 2)
            } else if two('=', '=') {
                (Tok::EqEq, 2)
            } else if two('!', '=') {
                (Tok::Ne, 2)
            } else if two('&', '&') {
                (Tok::AndAnd, 2)
            } else if two('|', '|') {
                (Tok::OrOr, 2)
            } else if two('<', '<') {
                (Tok::Shl, 2)
            } else if two('>', '>') {
                (Tok::Shr, 2)
            } else {
                let t = match c {
                    '(' => Tok::LParen,
                    ')' => Tok::RParen,
                    '{' => Tok::LBrace,
                    '}' => Tok::RBrace,
                    '[' => Tok::LBracket,
                    ']' => Tok::RBracket,
                    ',' => Tok::Comma,
                    ';' => Tok::Semi,
                    '=' => Tok::Assign,
                    '+' => Tok::Plus,
                    '-' => Tok::Minus,
                    '*' => Tok::Star,
                    '/' => Tok::Slash,
                    '%' => Tok::Percent,
                    '<' => Tok::Lt,
                    '>' => Tok::Gt,
                    '!' => Tok::Not,
                    '&' => Tok::Amp,
                    '|' => Tok::Pipe,
                    '^' => Tok::Caret,
                    '?' => Tok::Question,
                    ':' => Tok::Colon,
                    _ => {
                        return Err(LexError {
                            line,
                            msg: format!("unexpected character '{c}'"),
                        })
                    }
                };
                (t, 1)
            };
        toks.push(Token { tok, line });
        i += width;
    }
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_keywords_and_idents() {
        assert_eq!(
            kinds("uniform int n"),
            vec![
                Tok::Kw(Kw::Uniform),
                Tok::Kw(Kw::Int),
                Tok::Ident("n".into())
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(kinds("42"), vec![Tok::Int(42)]);
        assert_eq!(kinds("1.5"), vec![Tok::Float(1.5)]);
        assert_eq!(kinds("2.5f"), vec![Tok::Float(2.5)]);
        assert_eq!(kinds("1e3"), vec![Tok::Float(1000.0)]);
        assert_eq!(kinds("2E-2"), vec![Tok::Float(0.02)]);
        assert_eq!(kinds(".5"), vec![Tok::Float(0.5)]);
    }

    #[test]
    fn lexes_operators() {
        assert_eq!(
            kinds("a += b << 2"),
            vec![
                Tok::Ident("a".into()),
                Tok::PlusAssign,
                Tok::Ident("b".into()),
                Tok::Shl,
                Tok::Int(2)
            ]
        );
        assert_eq!(kinds("..."), vec![Tok::DotDotDot]);
        assert_eq!(kinds("i++"), vec![Tok::Ident("i".into()), Tok::PlusPlus]);
    }

    #[test]
    fn skips_comments_and_counts_lines() {
        let toks = lex("a // comment\nb /* multi\nline */ c").unwrap();
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 3);
    }

    #[test]
    fn foreach_range_syntax() {
        assert_eq!(
            kinds("foreach (i = 0 ... n)"),
            vec![
                Tok::Kw(Kw::Foreach),
                Tok::LParen,
                Tok::Ident("i".into()),
                Tok::Assign,
                Tok::Int(0),
                Tok::DotDotDot,
                Tok::Ident("n".into()),
                Tok::RParen
            ]
        );
    }

    #[test]
    fn rejects_bad_chars() {
        assert!(lex("a # b").is_err());
        assert!(lex("/* unterminated").is_err());
    }
}
