//! SPMD-C → VIR code generation.
//!
//! The generator reproduces the ISPC code-generation patterns the paper's
//! detector work depends on (§III):
//!
//! - **`foreach` structure** (paper Fig. 7): an `allocas` entry computes
//!   `nextras = n % Vl` and `aligned_end = n - nextras`; the
//!   `foreach_full_body` loop steps a `counter` phi by `Vl` with all lanes
//!   on; `partial_inner_all_only` handles the `n % Vl` remainder under an
//!   execution mask fed to masked load/store intrinsics.
//! - **Uniform broadcast** (paper Fig. 9): `insertelement undef` +
//!   `shufflevector zeroinitializer` whenever a uniform value meets varying
//!   context.
//! - **Masked memory operations** (paper Fig. 5): AVX/SSE masked intrinsics
//!   for contiguous accesses; scalarized per-lane loops with real control
//!   flow for gathers/scatters, as ISPC emits on pre-AVX2 targets.
//! - **Varying `if`** compiles to mask intersection + `select` blending;
//!   **uniform `if`/`for`/`while`** compile to real control flow with SSA
//!   phis.
//!
//! All user functions compile to self-contained IR functions (no
//! inter-function calls), so the fault-site classifier's intraprocedural
//! forward slices are complete.

use std::collections::HashMap;

use vir::builder::FuncBuilder;
use vir::intrinsics::{math_name, MathOp};
use vir::{BinOp, CastOp, Constant, FCmpPred, ICmpPred, Module, Operand, ScalarTy, Type};

use crate::ast::*;
use crate::parser::parse_program;
use crate::target::VectorIsa;

/// Code-generation / semantic error.
#[derive(Debug, Clone, PartialEq)]
pub struct CompileError {
    pub line: usize,
    pub msg: String,
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "compile error at line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for CompileError {}

impl From<crate::parser::ParseError> for CompileError {
    fn from(e: crate::parser::ParseError) -> CompileError {
        CompileError {
            line: e.line,
            msg: e.msg,
        }
    }
}

type CResult<T> = Result<T, CompileError>;

/// Compile SPMD-C source text to a verified VIR module.
pub fn compile(src: &str, isa: VectorIsa, module_name: &str) -> CResult<Module> {
    let prog = parse_program(src)?;
    compile_program(&prog, isa, module_name)
}

/// Compile a parsed program.
pub fn compile_program(prog: &Program, isa: VectorIsa, module_name: &str) -> CResult<Module> {
    let mut module = Module::new(module_name);
    for f in &prog.funcs {
        let func = compile_function(f, isa)?;
        module.add_function(func);
    }
    if let Err(e) = vir::verify::verify_module(&module) {
        return Err(CompileError {
            line: 0,
            msg: format!("internal codegen error (verifier): {e}"),
        });
    }
    Ok(module)
}

/// A typed SSA value.
#[derive(Debug, Clone)]
struct CgVal {
    ty: STy,
    op: Operand,
}

/// Name bindings.
#[derive(Debug, Clone)]
enum Binding {
    Var { ty: STy, val: Operand },
    Array { elem: BaseTy, ptr: Operand },
}

/// Execution-mask context.
#[derive(Debug, Clone)]
enum Mask {
    /// All lanes on (foreach full body, top level).
    AllOn,
    /// `<Vl x i1>` lane mask.
    Vec(Operand),
}

/// Per-statement compile context.
#[derive(Debug, Clone)]
struct Ctx {
    mask: Mask,
    /// True inside varying `if` — uniform side effects are rejected here.
    varying_control: bool,
    foreach: Option<ForeachCtx>,
}

impl Ctx {
    fn top() -> Ctx {
        Ctx {
            mask: Mask::AllOn,
            varying_control: false,
            foreach: None,
        }
    }
}

/// Active foreach-loop state, used for affine address detection.
#[derive(Debug, Clone)]
struct ForeachCtx {
    var: String,
    /// Scalar `i32`: index of lane 0 for the current iteration.
    base_index: Operand,
    /// Varying `i32`: `base_index` broadcast plus lane ids.
    varying_index: Operand,
}

struct Cg {
    isa: VectorIsa,
    b: FuncBuilder,
    scopes: Vec<HashMap<String, Binding>>,
    ret: Option<STy>,
    /// Unique-suffix counters.
    tmp: u32,
    foreach_count: u32,
    returned: bool,
}

fn base_scalar(b: BaseTy) -> ScalarTy {
    match b {
        BaseTy::Bool => ScalarTy::I1,
        BaseTy::Int => ScalarTy::I32,
        BaseTy::Float => ScalarTy::F32,
        BaseTy::Double => ScalarTy::F64,
    }
}

fn compile_function(f: &FuncDef, isa: VectorIsa) -> CResult<vir::Function> {
    // Lower the parameter list.
    let mut params = Vec::new();
    for p in &f.params {
        let ty = match &p.ty {
            ParamTy::Array { .. } => Type::PTR,
            ParamTy::Scalar(s) => {
                if !s.uniform {
                    return Err(CompileError {
                        line: f.line,
                        msg: format!(
                            "parameter {} must be uniform (varying parameters are not supported)",
                            p.name
                        ),
                    });
                }
                Type::Scalar(base_scalar(s.base))
            }
        };
        params.push((p.name.clone(), ty));
    }
    let ret_ty = match f.ret {
        None => Type::Void,
        Some(s) => Type::Scalar(base_scalar(s.base)),
    };
    let mut b = FuncBuilder::new(f.name.clone(), params, ret_ty);
    // ISPC names the entry block `allocas`.
    let entry = b.add_block("allocas");
    b.position_at(entry);

    let mut cg = Cg {
        isa,
        b,
        scopes: vec![HashMap::new()],
        ret: f.ret,
        tmp: 0,
        foreach_count: 0,
        returned: false,
    };

    // Bind parameters.
    for (i, p) in f.params.iter().enumerate() {
        let op = cg.b.param(i);
        let binding = match &p.ty {
            ParamTy::Array { elem } => Binding::Array {
                elem: *elem,
                ptr: op,
            },
            ParamTy::Scalar(s) => Binding::Var { ty: *s, val: op },
        };
        cg.declare(&p.name, binding, f.line)?;
    }

    cg.stmts(&f.body, &Ctx::top(), true)?;

    if !cg.returned {
        if f.ret.is_some() {
            return Err(CompileError {
                line: f.line,
                msg: format!("function {} must end with a return statement", f.name),
            });
        }
        cg.b.ret(None);
    }
    let mut func = cg.b.finish();
    // Stand-in for the -O3 cleanups the paper's ISPC pipeline performs:
    // registers no real compiler would materialize (dead code,
    // compile-time-known constants) must not dilute the fault-site
    // population. The folder uses the interpreter's evaluator as its
    // semantics oracle, so it cannot drift from runtime behaviour.
    vir::transform::dce::run(&mut func);
    vexec::opt::fold(&mut func);
    vir::transform::dce::run(&mut func);
    Ok(func)
}

impl Cg {
    fn lanes(&self) -> u32 {
        self.isa.lanes()
    }

    fn err<T>(&self, line: usize, msg: impl Into<String>) -> CResult<T> {
        Err(CompileError {
            line,
            msg: msg.into(),
        })
    }

    fn fresh(&mut self, base: &str) -> String {
        self.tmp += 1;
        format!("{base}{}", self.tmp)
    }

    // --- Scopes -------------------------------------------------------------

    fn push_scope(&mut self) {
        self.scopes.push(HashMap::new());
    }

    fn pop_scope(&mut self) {
        self.scopes.pop();
    }

    fn declare(&mut self, name: &str, b: Binding, line: usize) -> CResult<()> {
        let top = self.scopes.last_mut().expect("scope stack");
        if top.contains_key(name) {
            return Err(CompileError {
                line,
                msg: format!("redeclaration of '{name}'"),
            });
        }
        top.insert(name.to_string(), b);
        Ok(())
    }

    fn lookup(&self, name: &str) -> Option<&Binding> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    fn set_var(&mut self, name: &str, val: Operand, line: usize) -> CResult<()> {
        for s in self.scopes.iter_mut().rev() {
            if let Some(b) = s.get_mut(name) {
                match b {
                    Binding::Var { val: v, .. } => {
                        *v = val;
                        return Ok(());
                    }
                    Binding::Array { .. } => {
                        return Err(CompileError {
                            line,
                            msg: format!("cannot assign to array '{name}'"),
                        })
                    }
                }
            }
        }
        Err(CompileError {
            line,
            msg: format!("assignment to undeclared variable '{name}'"),
        })
    }

    /// Current value of a scalar variable (for loop-phi plumbing).
    fn var_val(&self, name: &str) -> Option<(STy, Operand)> {
        match self.lookup(name) {
            Some(Binding::Var { ty, val }) => Some((*ty, val.clone())),
            _ => None,
        }
    }

    // --- Type & rate machinery ----------------------------------------------

    fn ir_ty(&self, s: STy) -> Type {
        if s.uniform {
            Type::Scalar(base_scalar(s.base))
        } else {
            Type::vec(base_scalar(s.base), self.lanes())
        }
    }

    /// Broadcast a uniform value to varying, using the ISPC pattern of
    /// paper Fig. 9 (constants become splat vector constants directly, as
    /// ISPC's constant folding would).
    #[allow(clippy::wrong_self_convention)] // "varying" is the SPMD rate, not a conversion-by-value smell
    fn to_varying(&mut self, v: CgVal, hint: &str) -> CgVal {
        if !v.ty.uniform {
            return v;
        }
        let elem = base_scalar(v.ty.base);
        let lanes = self.lanes();
        let op = match &v.op {
            Operand::Const(c) => {
                let bits = c.scalar_bits().unwrap_or(0);
                Operand::Const(Constant::splat(elem, lanes, bits))
            }
            _ => {
                let name = self.fresh(hint);
                self.b.broadcast(v.op.clone(), lanes, &name)
            }
        };
        CgVal {
            ty: STy::varying(v.ty.base),
            op,
        }
    }

    /// Numeric conversion, preserving rate.
    fn convert(&mut self, v: CgVal, to: BaseTy, line: usize) -> CResult<CgVal> {
        if v.ty.base == to {
            return Ok(v);
        }
        let to_ir = self.ir_ty(STy {
            base: to,
            uniform: v.ty.uniform,
        });
        let op = match (v.ty.base, to) {
            (BaseTy::Int, BaseTy::Float) | (BaseTy::Int, BaseTy::Double) => {
                self.b.cast(CastOp::SiToFp, v.op, to_ir, "")
            }
            (BaseTy::Float, BaseTy::Int) | (BaseTy::Double, BaseTy::Int) => {
                self.b.cast(CastOp::FpToSi, v.op, to_ir, "")
            }
            (BaseTy::Float, BaseTy::Double) => self.b.cast(CastOp::FpExt, v.op, to_ir, ""),
            (BaseTy::Double, BaseTy::Float) => self.b.cast(CastOp::FpTrunc, v.op, to_ir, ""),
            (BaseTy::Bool, BaseTy::Int) => self.b.cast(CastOp::ZExt, v.op, to_ir, ""),
            (BaseTy::Bool, BaseTy::Float) | (BaseTy::Bool, BaseTy::Double) => {
                let int_ty = self.ir_ty(STy {
                    base: BaseTy::Int,
                    uniform: v.ty.uniform,
                });
                let i = self.b.cast(CastOp::ZExt, v.op, int_ty, "");
                self.b.cast(CastOp::SiToFp, i, to_ir, "")
            }
            (BaseTy::Int, BaseTy::Bool) => {
                let zero = self.zero_of(BaseTy::Int, v.ty.uniform);
                self.b.icmp(ICmpPred::Ne, v.op, zero, "")
            }
            (BaseTy::Float, BaseTy::Bool) | (BaseTy::Double, BaseTy::Bool) => {
                let zero = self.zero_of(v.ty.base, v.ty.uniform);
                self.b.fcmp(FCmpPred::Une, v.op, zero, "")
            }
            _ => {
                return self.err(
                    line,
                    format!("unsupported cast {} -> {}", v.ty.base.name(), to.name()),
                )
            }
        };
        Ok(CgVal {
            ty: STy {
                base: to,
                uniform: v.ty.uniform,
            },
            op,
        })
    }

    fn zero_of(&self, base: BaseTy, uniform: bool) -> Operand {
        let ty = if uniform {
            Type::Scalar(base_scalar(base))
        } else {
            Type::vec(base_scalar(base), self.lanes())
        };
        Operand::Const(Constant::zero(ty))
    }

    /// Unify two numeric operands: promote int→float→double and uniform→
    /// varying as needed.
    fn promote_pair(&mut self, a: CgVal, b: CgVal, line: usize) -> CResult<(CgVal, CgVal)> {
        let target = match (a.ty.base, b.ty.base) {
            (x, y) if x == y => x,
            (BaseTy::Double, _) | (_, BaseTy::Double) => BaseTy::Double,
            (BaseTy::Float, _) | (_, BaseTy::Float) => BaseTy::Float,
            (BaseTy::Int, BaseTy::Bool) | (BaseTy::Bool, BaseTy::Int) => BaseTy::Int,
            _ => a.ty.base,
        };
        let mut a = self.convert(a, target, line)?;
        let mut b = self.convert(b, target, line)?;
        if a.ty.uniform != b.ty.uniform {
            a = self.to_varying(a, "pv");
            b = self.to_varying(b, "pv");
        }
        Ok((a, b))
    }

    /// Build the `<Vl x elem-width>` payload form of an `i1` lane mask, as
    /// masked intrinsics expect (sign-bit convention).
    fn mask_payload(&mut self, mask_i1: Operand, elem: ScalarTy) -> Operand {
        let lanes = self.lanes();
        match elem {
            ScalarTy::F32 => {
                let ints = self.b.cast(
                    CastOp::SExt,
                    mask_i1,
                    Type::vec(ScalarTy::I32, lanes),
                    "maskint",
                );
                self.b.cast(
                    CastOp::Bitcast,
                    ints,
                    Type::vec(ScalarTy::F32, lanes),
                    "floatmask.i",
                )
            }
            ScalarTy::I32 => self.b.cast(
                CastOp::SExt,
                mask_i1,
                Type::vec(ScalarTy::I32, lanes),
                "intmask.i",
            ),
            ScalarTy::F64 => {
                let ints = self.b.cast(
                    CastOp::SExt,
                    mask_i1,
                    Type::vec(ScalarTy::I64, lanes),
                    "maskint64",
                );
                self.b.cast(
                    CastOp::Bitcast,
                    ints,
                    Type::vec(ScalarTy::F64, lanes),
                    "doublemask.i",
                )
            }
            other => {
                // Generic integer widths.
                self.b
                    .cast(CastOp::SExt, mask_i1, Type::vec(other, lanes), "mask.i")
            }
        }
    }

    /// AND two i1 masks.
    fn and_masks(&mut self, a: &Mask, b_i1: Operand) -> Operand {
        match a {
            Mask::AllOn => b_i1,
            Mask::Vec(m) => self.b.bin(BinOp::And, m.clone(), b_i1, "mask_and"),
        }
    }

    // --- Rate pre-analysis (no code emitted) --------------------------------

    /// Conservative uniformity check used for affine-offset detection.
    fn is_uniform_expr(&self, e: &Expr) -> bool {
        match &e.kind {
            ExprKind::IntLit(_) | ExprKind::FloatLit(_) | ExprKind::BoolLit(_) => true,
            ExprKind::Ident(n) => match n.as_str() {
                "programIndex" => false,
                "programCount" => true,
                _ => matches!(self.lookup(n), Some(Binding::Var { ty, .. }) if ty.uniform),
            },
            ExprKind::Bin(_, a, b) => self.is_uniform_expr(a) && self.is_uniform_expr(b),
            ExprKind::Un(_, a) => self.is_uniform_expr(a),
            ExprKind::Cast(_, a) => self.is_uniform_expr(a),
            ExprKind::Index(_, i) => self.is_uniform_expr(i),
            ExprKind::Call(n, args) => {
                n.starts_with("reduce_") || args.iter().all(|a| self.is_uniform_expr(a))
            }
            ExprKind::Ternary(c, a, b) => {
                self.is_uniform_expr(c) && self.is_uniform_expr(a) && self.is_uniform_expr(b)
            }
        }
    }

    /// Detect `i`, `i + u`, `u + i`, `i - u` where `i` is the active foreach
    /// variable and `u` is uniform. Returns the optional offset expression
    /// and its sign.
    fn affine_in_foreach<'e>(
        &self,
        e: &'e Expr,
        ctx: &Ctx,
    ) -> Option<(Option<&'e Expr>, bool /*negate*/)> {
        let fc = ctx.foreach.as_ref()?;
        let is_fv = |x: &Expr| -> bool {
            if let ExprKind::Ident(n) = &x.kind {
                if *n == fc.var {
                    // Guard against shadowing: the binding must still be
                    // the foreach induction value.
                    if let Some(Binding::Var { val, .. }) = self.lookup(n) {
                        return *val == fc.varying_index;
                    }
                }
            }
            false
        };
        match &e.kind {
            _ if is_fv(e) => Some((None, false)),
            ExprKind::Bin(BinKind::Add, a, b) if is_fv(a) && self.is_uniform_expr(b) => {
                Some((Some(b), false))
            }
            ExprKind::Bin(BinKind::Add, a, b) if is_fv(b) && self.is_uniform_expr(a) => {
                Some((Some(a), false))
            }
            ExprKind::Bin(BinKind::Sub, a, b) if is_fv(a) && self.is_uniform_expr(b) => {
                Some((Some(b), true))
            }
            _ => None,
        }
    }

    // --- Expressions ---------------------------------------------------------

    fn expr(&mut self, e: &Expr, ctx: &Ctx) -> CResult<CgVal> {
        let line = e.line;
        match &e.kind {
            ExprKind::IntLit(v) => Ok(CgVal {
                ty: STy::uniform(BaseTy::Int),
                op: Constant::i32(*v as i32).into(),
            }),
            ExprKind::FloatLit(v) => Ok(CgVal {
                ty: STy::uniform(BaseTy::Float),
                op: Constant::f32(*v as f32).into(),
            }),
            ExprKind::BoolLit(v) => Ok(CgVal {
                ty: STy::uniform(BaseTy::Bool),
                op: Constant::bool(*v).into(),
            }),
            ExprKind::Ident(name) => match name.as_str() {
                "programIndex" => Ok(CgVal {
                    ty: STy::varying(BaseTy::Int),
                    op: Constant::lane_ids(self.lanes()).into(),
                }),
                "programCount" => Ok(CgVal {
                    ty: STy::uniform(BaseTy::Int),
                    op: Constant::i32(self.lanes() as i32).into(),
                }),
                _ => match self.lookup(name) {
                    Some(Binding::Var { ty, val }) => Ok(CgVal {
                        ty: *ty,
                        op: val.clone(),
                    }),
                    Some(Binding::Array { .. }) => {
                        self.err(line, format!("array '{name}' used without an index"))
                    }
                    None => self.err(line, format!("use of undeclared identifier '{name}'")),
                },
            },
            ExprKind::Bin(op, a, b) => self.bin_expr(*op, a, b, ctx, line),
            ExprKind::Un(UnKind::Neg, a) => {
                let v = self.expr(a, ctx)?;
                if !v.ty.base.is_numeric() {
                    return self.err(line, "negation of non-numeric value");
                }
                let zero = self.zero_of(v.ty.base, v.ty.uniform);
                let op = if v.ty.base == BaseTy::Int {
                    self.b.bin(BinOp::Sub, zero, v.op, "neg")
                } else {
                    self.b.bin(BinOp::FSub, zero, v.op, "neg")
                };
                Ok(CgVal { ty: v.ty, op })
            }
            ExprKind::Un(UnKind::Not, a) => {
                let v = self.expr(a, ctx)?;
                let v = self.convert(v, BaseTy::Bool, line)?;
                let ones = if v.ty.uniform {
                    Operand::Const(Constant::bool(true))
                } else {
                    Operand::Const(Constant::splat(ScalarTy::I1, self.lanes(), 1))
                };
                let op = self.b.bin(BinOp::Xor, v.op, ones, "not");
                Ok(CgVal { ty: v.ty, op })
            }
            ExprKind::Cast(to, a) => {
                let v = self.expr(a, ctx)?;
                self.convert(v, *to, line)
            }
            ExprKind::Ternary(c, t, f) => {
                let cv = self.expr(c, ctx)?;
                let cv = self.convert(cv, BaseTy::Bool, line)?;
                let tv = self.expr(t, ctx)?;
                let fv = self.expr(f, ctx)?;
                let (mut tv, mut fv) = self.promote_pair(tv, fv, line)?;
                let cv = if !cv.ty.uniform {
                    tv = self.to_varying(tv, "sel_t");
                    fv = self.to_varying(fv, "sel_f");
                    cv
                } else {
                    cv
                };
                let ty = tv.ty;
                let op = self.b.select(cv.op, tv.op, fv.op, "sel");
                Ok(CgVal { ty, op })
            }
            ExprKind::Index(arr, idx) => self.load_indexed(arr, idx, ctx, line),
            ExprKind::Call(name, args) => self.call_expr(name, args, ctx, line),
        }
    }

    fn bin_expr(
        &mut self,
        op: BinKind,
        a: &Expr,
        b: &Expr,
        ctx: &Ctx,
        line: usize,
    ) -> CResult<CgVal> {
        let av = self.expr(a, ctx)?;
        let bv = self.expr(b, ctx)?;
        if op.is_logical() {
            // No short-circuit: SPMD-C expressions are side-effect free, so
            // evaluating both operands is semantically transparent.
            let av = self.convert(av, BaseTy::Bool, line)?;
            let bv = self.convert(bv, BaseTy::Bool, line)?;
            let (av, bv) = self.promote_pair(av, bv, line)?;
            let kind = if op == BinKind::And {
                BinOp::And
            } else {
                BinOp::Or
            };
            let ty = av.ty;
            let r = self.b.bin(kind, av.op, bv.op, "");
            return Ok(CgVal { ty, op: r });
        }
        if op.is_bitwise() {
            if av.ty.base != BaseTy::Int || bv.ty.base != BaseTy::Int {
                return self.err(line, "bitwise operators require int operands");
            }
            let (av, bv) = self.promote_pair(av, bv, line)?;
            let kind = match op {
                BinKind::BitAnd => BinOp::And,
                BinKind::BitOr => BinOp::Or,
                BinKind::BitXor => BinOp::Xor,
                BinKind::Shl => BinOp::Shl,
                BinKind::Shr => BinOp::AShr,
                _ => unreachable!(),
            };
            let ty = av.ty;
            let r = self.b.bin(kind, av.op, bv.op, "");
            return Ok(CgVal { ty, op: r });
        }
        let (av, bv) = self.promote_pair(av, bv, line)?;
        if op.is_comparison() {
            let is_float = matches!(av.ty.base, BaseTy::Float | BaseTy::Double);
            let ty = STy {
                base: BaseTy::Bool,
                uniform: av.ty.uniform,
            };
            let r = if is_float {
                let pred = match op {
                    BinKind::Lt => FCmpPred::Olt,
                    BinKind::Le => FCmpPred::Ole,
                    BinKind::Gt => FCmpPred::Ogt,
                    BinKind::Ge => FCmpPred::Oge,
                    BinKind::Eq => FCmpPred::Oeq,
                    BinKind::Ne => FCmpPred::Une,
                    _ => unreachable!(),
                };
                self.b.fcmp(pred, av.op, bv.op, "cmp")
            } else {
                let pred = match op {
                    BinKind::Lt => ICmpPred::Slt,
                    BinKind::Le => ICmpPred::Sle,
                    BinKind::Gt => ICmpPred::Sgt,
                    BinKind::Ge => ICmpPred::Sge,
                    BinKind::Eq => ICmpPred::Eq,
                    BinKind::Ne => ICmpPred::Ne,
                    _ => unreachable!(),
                };
                self.b.icmp(pred, av.op, bv.op, "cmp")
            };
            return Ok(CgVal { ty, op: r });
        }
        // Arithmetic.
        if !av.ty.base.is_numeric() {
            return self.err(line, "arithmetic on non-numeric value");
        }
        let is_float = matches!(av.ty.base, BaseTy::Float | BaseTy::Double);
        let kind = match (op, is_float) {
            (BinKind::Add, false) => BinOp::Add,
            (BinKind::Sub, false) => BinOp::Sub,
            (BinKind::Mul, false) => BinOp::Mul,
            (BinKind::Div, false) => BinOp::SDiv,
            (BinKind::Rem, false) => BinOp::SRem,
            (BinKind::Add, true) => BinOp::FAdd,
            (BinKind::Sub, true) => BinOp::FSub,
            (BinKind::Mul, true) => BinOp::FMul,
            (BinKind::Div, true) => BinOp::FDiv,
            (BinKind::Rem, true) => BinOp::FRem,
            _ => return self.err(line, format!("operator {op:?} not valid here")),
        };
        let ty = av.ty;
        let r = self.b.bin(kind, av.op, bv.op, "");
        Ok(CgVal { ty, op: r })
    }

    fn call_expr(&mut self, name: &str, args: &[Expr], ctx: &Ctx, line: usize) -> CResult<CgVal> {
        let need = |n: usize| -> CResult<()> {
            if args.len() != n {
                Err(CompileError {
                    line,
                    msg: format!("{name} expects {n} argument(s), got {}", args.len()),
                })
            } else {
                Ok(())
            }
        };
        match name {
            "reduce_add" => {
                need(1)?;
                let v = self.expr(&args[0], ctx)?;
                if v.ty.uniform {
                    return self.err(line, "reduce_add expects a varying value");
                }
                if !v.ty.base.is_numeric() {
                    return self.err(line, "reduce_add expects a numeric value");
                }
                // Mask off inactive lanes so partial foreach bodies reduce
                // only live iterations.
                let masked = match &ctx.mask {
                    Mask::AllOn => v.op.clone(),
                    Mask::Vec(m) => {
                        let zero = self.zero_of(v.ty.base, false);
                        self.b.select(m.clone(), v.op.clone(), zero, "red_masked")
                    }
                };
                let elem = base_scalar(v.ty.base);
                let is_float = v.ty.base != BaseTy::Int;
                let mut acc = self
                    .b
                    .extract(masked.clone(), Constant::i32(0).into(), "red0");
                for k in 1..self.lanes() {
                    let lane = self
                        .b
                        .extract(masked.clone(), Constant::i32(k as i32).into(), "");
                    let op = if is_float { BinOp::FAdd } else { BinOp::Add };
                    acc = self.b.bin(op, acc, lane, "");
                }
                let _ = elem;
                Ok(CgVal {
                    ty: STy::uniform(v.ty.base),
                    op: acc,
                })
            }
            "sqrt" | "exp" | "log" | "sin" | "cos" | "floor" | "ceil" | "abs" | "fabs"
            | "rsqrt" => {
                need(1)?;
                let v = self.expr(&args[0], ctx)?;
                if v.ty.base == BaseTy::Int && (name == "abs" || name == "fabs") {
                    // Integer abs via compare + select.
                    let zero = self.zero_of(BaseTy::Int, v.ty.uniform);
                    let neg = self.b.bin(BinOp::Sub, zero.clone(), v.op.clone(), "");
                    let is_neg = self.b.icmp(ICmpPred::Slt, v.op.clone(), zero, "");
                    let r = self.b.select(is_neg, neg, v.op, "iabs");
                    return Ok(CgVal { ty: v.ty, op: r });
                }
                let v = if v.ty.base == BaseTy::Int {
                    self.convert(v, BaseTy::Float, line)?
                } else {
                    v
                };
                let mop = match name {
                    "sqrt" | "rsqrt" => MathOp::Sqrt,
                    "exp" => MathOp::Exp,
                    "log" => MathOp::Log,
                    "sin" => MathOp::Sin,
                    "cos" => MathOp::Cos,
                    "floor" => MathOp::Floor,
                    "ceil" => MathOp::Ceil,
                    _ => MathOp::Fabs,
                };
                let ir = self.ir_ty(v.ty);
                let callee = math_name(mop, ir);
                let r = self.b.call(callee, vec![v.op], ir, name);
                if name == "rsqrt" {
                    let one = if v.ty.uniform {
                        Operand::Const(Constant::f32(1.0))
                    } else {
                        Operand::Const(Constant::splat_f32(self.lanes(), 1.0))
                    };
                    let inv = self.b.bin(BinOp::FDiv, one, r, "rsqrt");
                    return Ok(CgVal { ty: v.ty, op: inv });
                }
                Ok(CgVal { ty: v.ty, op: r })
            }
            "pow" | "min" | "max" => {
                need(2)?;
                let a = self.expr(&args[0], ctx)?;
                let b = self.expr(&args[1], ctx)?;
                let (a, b) = self.promote_pair(a, b, line)?;
                if a.ty.base == BaseTy::Int {
                    if name == "pow" {
                        return self.err(line, "pow requires float operands");
                    }
                    let pred = if name == "min" {
                        ICmpPred::Slt
                    } else {
                        ICmpPred::Sgt
                    };
                    let c = self.b.icmp(pred, a.op.clone(), b.op.clone(), "");
                    let r = self.b.select(c, a.op, b.op, name);
                    return Ok(CgVal { ty: a.ty, op: r });
                }
                let mop = match name {
                    "pow" => MathOp::Pow,
                    "min" => MathOp::MinNum,
                    _ => MathOp::MaxNum,
                };
                let ir = self.ir_ty(a.ty);
                let r = self.b.call(math_name(mop, ir), vec![a.op, b.op], ir, name);
                Ok(CgVal { ty: a.ty, op: r })
            }
            "clamp" => {
                need(3)?;
                let lo_clamped = Expr::new(
                    ExprKind::Call("max".into(), vec![args[0].clone(), args[1].clone()]),
                    line,
                );
                let clamped = Expr::new(
                    ExprKind::Call("min".into(), vec![lo_clamped, args[2].clone()]),
                    line,
                );
                self.expr(&clamped, ctx)
            }
            other => self.err(line, format!("unknown function '{other}'")),
        }
    }

    // --- Memory access --------------------------------------------------------

    fn array_binding(&self, name: &str, line: usize) -> CResult<(BaseTy, Operand)> {
        match self.lookup(name) {
            Some(Binding::Array { elem, ptr }) => Ok((*elem, ptr.clone())),
            Some(Binding::Var { .. }) => Err(CompileError {
                line,
                msg: format!("'{name}' is not an array"),
            }),
            None => Err(CompileError {
                line,
                msg: format!("use of undeclared array '{name}'"),
            }),
        }
    }

    /// Compile `arr[idx]` as an rvalue.
    fn load_indexed(&mut self, arr: &str, idx: &Expr, ctx: &Ctx, line: usize) -> CResult<CgVal> {
        let (elem, ptr) = self.array_binding(arr, line)?;
        let elem_sc = base_scalar(elem);
        let elem_ir = Type::Scalar(elem_sc);

        // Affine (contiguous) access in a foreach?
        if let Some((off, negate)) = self.affine_in_foreach(idx, ctx) {
            let base_index = ctx.foreach.as_ref().unwrap().base_index.clone();
            let index = match off {
                None => base_index,
                Some(off_e) => {
                    let o = self.expr(off_e, ctx)?;
                    let o = self.convert(o, BaseTy::Int, line)?;
                    if !o.ty.uniform {
                        return self.err(line, "internal: affine offset not uniform");
                    }
                    let op = if negate { BinOp::Sub } else { BinOp::Add };
                    self.b.bin(op, base_index, o.op, "lin_idx")
                }
            };
            let addr = self.b.gep(elem_ir, ptr, index, &format!("{arr}_ld_addr"));
            let vty = Type::vec(elem_sc, self.lanes());
            let op = match &ctx.mask {
                Mask::AllOn => self.b.load(vty, addr, ""),
                Mask::Vec(m) => {
                    let payload = self.mask_payload(m.clone(), elem_sc);
                    self.b
                        .call(self.isa.maskload(elem_sc), vec![addr, payload], vty, "")
                }
            };
            return Ok(CgVal {
                ty: STy::varying(elem),
                op,
            });
        }

        // Uniform index: one scalar load shared by all lanes.
        if self.is_uniform_expr(idx) {
            let iv = self.expr(idx, ctx)?;
            let iv = self.convert(iv, BaseTy::Int, line)?;
            let addr = self.b.gep(elem_ir, ptr, iv.op, "");
            let op = self.b.load(elem_ir, addr, "");
            return Ok(CgVal {
                ty: STy::uniform(elem),
                op,
            });
        }

        // General varying index: scalarized gather.
        let iv = self.expr(idx, ctx)?;
        let iv = self.convert(iv, BaseTy::Int, line)?;
        let iv = self.to_varying(iv, "gidx");
        let op = self.gather(ptr, elem_sc, iv.op, ctx)?;
        Ok(CgVal {
            ty: STy::varying(elem),
            op,
        })
    }

    /// Scalarized gather: per-lane extract → gep → load → insert, with real
    /// per-lane control flow when an execution mask is active (inactive
    /// lanes must not touch memory).
    fn gather(
        &mut self,
        ptr: Operand,
        elem: ScalarTy,
        idx: Operand,
        ctx: &Ctx,
    ) -> CResult<Operand> {
        let lanes = self.lanes();
        let vty = Type::vec(elem, lanes);
        let mut acc: Operand = Constant::zero(vty).into();
        match &ctx.mask {
            Mask::AllOn => {
                for k in 0..lanes {
                    let ik = self
                        .b
                        .extract(idx.clone(), Constant::i32(k as i32).into(), "");
                    let a = self.b.gep(Type::Scalar(elem), ptr.clone(), ik, "");
                    let v = self.b.load(Type::Scalar(elem), a, "");
                    acc = self.b.insert(acc, v, Constant::i32(k as i32).into(), "");
                }
                Ok(acc)
            }
            Mask::Vec(m) => {
                let m = m.clone();
                let gid = self.fresh("gather");
                for k in 0..lanes {
                    let load_bb = self.b.add_block(format!("{gid}.lane{k}.load"));
                    let cont_bb = self.b.add_block(format!("{gid}.lane{k}.cont"));
                    let mbit = self
                        .b
                        .extract(m.clone(), Constant::i32(k as i32).into(), "");
                    let from_bb = self.b.current_block();
                    self.b.cond_br(mbit, load_bb, cont_bb);

                    self.b.position_at(load_bb);
                    let ik = self
                        .b
                        .extract(idx.clone(), Constant::i32(k as i32).into(), "");
                    let a = self.b.gep(Type::Scalar(elem), ptr.clone(), ik, "");
                    let v = self.b.load(Type::Scalar(elem), a, "");
                    let acc2 = self
                        .b
                        .insert(acc.clone(), v, Constant::i32(k as i32).into(), "");
                    self.b.br(cont_bb);

                    self.b.position_at(cont_bb);
                    let phi = self.b.phi(vty, "");
                    self.b.add_incoming(&phi, from_bb, acc.clone());
                    self.b.add_incoming(&phi, load_bb, acc2);
                    acc = phi;
                }
                Ok(acc)
            }
        }
    }

    /// Scalarized scatter, masked per lane like [`Cg::gather`].
    fn scatter(
        &mut self,
        ptr: Operand,
        elem: ScalarTy,
        idx: Operand,
        val: Operand,
        ctx: &Ctx,
    ) -> CResult<()> {
        let lanes = self.lanes();
        match &ctx.mask {
            Mask::AllOn => {
                for k in 0..lanes {
                    let ik = self
                        .b
                        .extract(idx.clone(), Constant::i32(k as i32).into(), "");
                    let a = self.b.gep(Type::Scalar(elem), ptr.clone(), ik, "");
                    let v = self
                        .b
                        .extract(val.clone(), Constant::i32(k as i32).into(), "");
                    self.b.store(v, a);
                }
            }
            Mask::Vec(m) => {
                let m = m.clone();
                let sid = self.fresh("scatter");
                for k in 0..lanes {
                    let store_bb = self.b.add_block(format!("{sid}.lane{k}.store"));
                    let cont_bb = self.b.add_block(format!("{sid}.lane{k}.cont"));
                    let mbit = self
                        .b
                        .extract(m.clone(), Constant::i32(k as i32).into(), "");
                    self.b.cond_br(mbit, store_bb, cont_bb);

                    self.b.position_at(store_bb);
                    let ik = self
                        .b
                        .extract(idx.clone(), Constant::i32(k as i32).into(), "");
                    let a = self.b.gep(Type::Scalar(elem), ptr.clone(), ik, "");
                    let v = self
                        .b
                        .extract(val.clone(), Constant::i32(k as i32).into(), "");
                    self.b.store(v, a);
                    self.b.br(cont_bb);

                    self.b.position_at(cont_bb);
                }
            }
        }
        Ok(())
    }

    /// Compile a store `arr[idx] = value`.
    fn store_indexed(
        &mut self,
        arr: &str,
        idx: &Expr,
        value: CgVal,
        ctx: &Ctx,
        line: usize,
    ) -> CResult<()> {
        let (elem, ptr) = self.array_binding(arr, line)?;
        let elem_sc = base_scalar(elem);
        let elem_ir = Type::Scalar(elem_sc);
        let value = self.convert(value, elem, line)?;

        if let Some((off, negate)) = self.affine_in_foreach(idx, ctx) {
            let base_index = ctx.foreach.as_ref().unwrap().base_index.clone();
            let index = match off {
                None => base_index,
                Some(off_e) => {
                    let o = self.expr(off_e, ctx)?;
                    let o = self.convert(o, BaseTy::Int, line)?;
                    let op = if negate { BinOp::Sub } else { BinOp::Add };
                    self.b.bin(op, base_index, o.op, "lin_idx")
                }
            };
            let value = self.to_varying(value, "stv");
            let addr = self.b.gep(elem_ir, ptr, index, &format!("{arr}_str_addr"));
            match &ctx.mask {
                Mask::AllOn => self.b.store(value.op, addr),
                Mask::Vec(m) => {
                    let payload = self.mask_payload(m.clone(), elem_sc);
                    self.b.call(
                        self.isa.maskstore(elem_sc),
                        vec![addr, payload, value.op],
                        Type::Void,
                        "",
                    );
                }
            }
            return Ok(());
        }

        if self.is_uniform_expr(idx) {
            if !value.ty.uniform {
                return self.err(line, "cannot store a varying value at a uniform index");
            }
            if ctx.varying_control {
                return self.err(
                    line,
                    "uniform store inside varying control flow is not supported",
                );
            }
            let iv = self.expr(idx, ctx)?;
            let iv = self.convert(iv, BaseTy::Int, line)?;
            let addr = self.b.gep(elem_ir, ptr, iv.op, "");
            self.b.store(value.op, addr);
            return Ok(());
        }

        let iv = self.expr(idx, ctx)?;
        let iv = self.convert(iv, BaseTy::Int, line)?;
        let iv = self.to_varying(iv, "sidx");
        let value = self.to_varying(value, "sval");
        self.scatter(ptr, elem_sc, iv.op, value.op, ctx)
    }

    // --- Statements -----------------------------------------------------------

    fn stmts(&mut self, body: &[Stmt], ctx: &Ctx, top_level: bool) -> CResult<()> {
        self.push_scope();
        let r = self.stmts_inner(body, ctx, top_level);
        self.pop_scope();
        r
    }

    fn stmts_inner(&mut self, body: &[Stmt], ctx: &Ctx, top_level: bool) -> CResult<()> {
        for (k, s) in body.iter().enumerate() {
            if self.returned {
                return self.err(s.line, "statement after return");
            }
            let is_last = k + 1 == body.len();
            self.stmt(s, ctx, top_level && is_last)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt, ctx: &Ctx, may_return: bool) -> CResult<()> {
        let line = s.line;
        match &s.kind {
            StmtKind::Decl { ty, name, init } => {
                let v = self.expr(init, ctx)?;
                let v = self.convert(v, ty.base, line)?;
                let v = if ty.uniform {
                    if !v.ty.uniform {
                        return self.err(
                            line,
                            format!("cannot initialize uniform '{name}' from a varying value"),
                        );
                    }
                    v
                } else {
                    self.to_varying(v, name)
                };
                self.declare(
                    name,
                    Binding::Var {
                        ty: STy {
                            base: ty.base,
                            uniform: ty.uniform,
                        },
                        val: v.op,
                    },
                    line,
                )
            }
            StmtKind::Assign { target, op, value } => {
                match target {
                    LValue::Var(name) => {
                        let Some((vty, cur)) = self.var_val(name) else {
                            return self.err(line, format!("assignment to undeclared '{name}'"));
                        };
                        // Compound assignment: lhs op rhs.
                        let rhs = self.expr(value, ctx)?;
                        let rhs = match op {
                            None => rhs,
                            Some(bk) => {
                                let lhs = CgVal {
                                    ty: vty,
                                    op: cur.clone(),
                                };
                                let (a, b) = self.promote_pair(lhs, rhs, line)?;

                                self.apply_arith(*bk, a, b, line)?
                            }
                        };
                        let rhs = self.convert(rhs, vty.base, line)?;
                        if vty.uniform {
                            if !rhs.ty.uniform {
                                return self.err(
                                    line,
                                    format!("cannot assign varying value to uniform '{name}'"),
                                );
                            }
                            if ctx.varying_control {
                                return self.err(
                                    line,
                                    format!(
                                        "cannot assign to uniform '{name}' inside varying control flow"
                                    ),
                                );
                            }
                            self.set_var(name, rhs.op, line)
                        } else {
                            let rhs = self.to_varying(rhs, name);
                            self.set_var(name, rhs.op, line)
                        }
                    }
                    LValue::Elem(arr, idx) => {
                        let rhs = match op {
                            None => self.expr(value, ctx)?,
                            Some(bk) => {
                                let cur = self.load_indexed(arr, idx, ctx, line)?;
                                let rv = self.expr(value, ctx)?;
                                let (a, b) = self.promote_pair(cur, rv, line)?;
                                self.apply_arith(*bk, a, b, line)?
                            }
                        };
                        self.store_indexed(arr, idx, rhs, ctx, line)
                    }
                }
            }
            StmtKind::If {
                cond,
                then_body,
                else_body,
            } => {
                let cv = self.expr(cond, ctx)?;
                let cv = self.convert(cv, BaseTy::Bool, line)?;
                if cv.ty.uniform {
                    self.uniform_if(cv.op, then_body, else_body, ctx)
                } else {
                    self.varying_if(cv.op, then_body, else_body, ctx, line)
                }
            }
            StmtKind::While { cond, body } => {
                if self.is_uniform_expr(cond) {
                    self.uniform_while(cond, body, ctx, line)
                } else {
                    self.varying_while(cond, body, ctx, line)
                }
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                self.push_scope();
                if let Some(i) = init {
                    self.stmt(i, ctx, false)?;
                }
                // Desugar to while(cond) { body; step; }.
                let mut loop_body: Vec<Stmt> = body.clone();
                if let Some(st) = step {
                    loop_body.push((**st).clone());
                }
                let r = self.uniform_while(cond, &loop_body, ctx, line);
                self.pop_scope();
                r
            }
            StmtKind::Foreach {
                var,
                start,
                end,
                body,
            } => {
                if ctx.varying_control || matches!(ctx.mask, Mask::Vec(_)) {
                    return self.err(line, "foreach cannot nest inside varying control flow");
                }
                self.foreach(var, start, end, body, ctx, line)
            }
            StmtKind::Return(val) => {
                if !may_return {
                    return self.err(
                        line,
                        "return is only supported as the last top-level statement",
                    );
                }
                match (&self.ret, val) {
                    (None, None) => {
                        self.b.ret(None);
                        self.returned = true;
                        Ok(())
                    }
                    (Some(rty), Some(e)) => {
                        let rty = *rty;
                        let v = self.expr(e, ctx)?;
                        let v = self.convert(v, rty.base, line)?;
                        if !v.ty.uniform {
                            return self.err(line, "return value must be uniform");
                        }
                        self.b.ret(Some(v.op));
                        self.returned = true;
                        Ok(())
                    }
                    (None, Some(_)) => self.err(line, "void function cannot return a value"),
                    (Some(_), None) => self.err(line, "missing return value"),
                }
            }
            StmtKind::ExprStmt(e) => {
                let _ = self.expr(e, ctx)?;
                Ok(())
            }
        }
    }

    fn apply_arith(&mut self, op: BinKind, a: CgVal, b: CgVal, line: usize) -> CResult<CgVal> {
        let is_float = matches!(a.ty.base, BaseTy::Float | BaseTy::Double);
        let kind = match (op, is_float) {
            (BinKind::Add, false) => BinOp::Add,
            (BinKind::Sub, false) => BinOp::Sub,
            (BinKind::Mul, false) => BinOp::Mul,
            (BinKind::Div, false) => BinOp::SDiv,
            (BinKind::Add, true) => BinOp::FAdd,
            (BinKind::Sub, true) => BinOp::FSub,
            (BinKind::Mul, true) => BinOp::FMul,
            (BinKind::Div, true) => BinOp::FDiv,
            _ => return self.err(line, "unsupported compound assignment operator"),
        };
        let ty = a.ty;
        let op = self.b.bin(kind, a.op, b.op, "");
        Ok(CgVal { ty, op })
    }

    // --- Control flow -----------------------------------------------------------

    fn uniform_if(
        &mut self,
        cond: Operand,
        then_body: &[Stmt],
        else_body: &[Stmt],
        ctx: &Ctx,
    ) -> CResult<()> {
        let assigned: Vec<String> = {
            let mut v = assigned_vars(then_body);
            for n in assigned_vars(else_body) {
                if !v.contains(&n) {
                    v.push(n);
                }
            }
            v.retain(|n| self.var_val(n).is_some());
            v
        };
        let pre: Vec<(String, STy, Operand)> = assigned
            .iter()
            .map(|n| {
                let (t, v) = self.var_val(n).unwrap();
                (n.clone(), t, v)
            })
            .collect();

        let id = self.fresh("if");
        let then_bb = self.b.add_block(format!("{id}.then"));
        let merge_bb = self.b.add_block(format!("{id}.end"));
        let has_else = !else_body.is_empty();
        let else_bb = if has_else {
            self.b.add_block(format!("{id}.else"))
        } else {
            merge_bb
        };
        let entry_end = self.b.current_block();
        self.b.cond_br(cond, then_bb, else_bb);

        self.b.position_at(then_bb);
        self.stmts(then_body, ctx, false)?;
        let then_end = self.b.current_block();
        let then_vals: Vec<Operand> = pre
            .iter()
            .map(|(n, _, _)| self.var_val(n).unwrap().1)
            .collect();
        self.b.br(merge_bb);

        let (else_end, else_vals) = if has_else {
            // Restore pre-branch values.
            for (n, _, v) in &pre {
                self.set_var(n, v.clone(), 0)?;
            }
            self.b.position_at(else_bb);
            self.stmts(else_body, ctx, false)?;
            let end = self.b.current_block();
            let vals: Vec<Operand> = pre
                .iter()
                .map(|(n, _, _)| self.var_val(n).unwrap().1)
                .collect();
            self.b.br(merge_bb);
            (end, vals)
        } else {
            (entry_end, pre.iter().map(|(_, _, v)| v.clone()).collect())
        };

        self.b.position_at(merge_bb);
        for (i, (n, t, _)) in pre.iter().enumerate() {
            let ty = self.ir_ty(*t);
            let phi = self.b.phi(ty, n);
            self.b.add_incoming(&phi, then_end, then_vals[i].clone());
            self.b.add_incoming(&phi, else_end, else_vals[i].clone());
            self.set_var(n, phi, 0)?;
        }
        Ok(())
    }

    fn varying_if(
        &mut self,
        cond_i1: Operand,
        then_body: &[Stmt],
        else_body: &[Stmt],
        ctx: &Ctx,
        line: usize,
    ) -> CResult<()> {
        let assigned: Vec<String> = {
            let mut v = assigned_vars(then_body);
            for n in assigned_vars(else_body) {
                if !v.contains(&n) {
                    v.push(n);
                }
            }
            v.retain(|n| self.var_val(n).is_some());
            v
        };
        // Reject uniform mutation up front (clearer than failing mid-arm).
        for n in &assigned {
            if let Some((t, _)) = self.var_val(n) {
                if t.uniform {
                    return self.err(
                        line,
                        format!("cannot assign to uniform '{n}' inside varying if"),
                    );
                }
            }
        }

        // ISPC guards each arm with an "any lane active?" branch (the
        // movmsk/cif pattern), which is precisely what makes vector masks
        // *control* fault sites in the paper's site taxonomy.
        let then_mask = self.and_masks(&ctx.mask, cond_i1.clone());
        self.guarded_arm(cond_i1.clone(), then_mask, then_body, &assigned, ctx, line)?;

        if !else_body.is_empty() {
            let ones = Operand::Const(Constant::splat(ScalarTy::I1, self.lanes(), 1));
            let not_cond = self.b.bin(BinOp::Xor, cond_i1, ones, "if_not");
            let else_mask = self.and_masks(&ctx.mask, not_cond.clone());
            self.guarded_arm(not_cond, else_mask, else_body, &assigned, ctx, line)?;
        }
        Ok(())
    }

    /// One arm of a varying `if`: skip it entirely when no lane is active,
    /// otherwise execute under `arm_mask` and blend assigned variables
    /// with `select(sel_cond, new, old)`.
    fn guarded_arm(
        &mut self,
        sel_cond: Operand,
        arm_mask: Operand,
        body: &[Stmt],
        assigned: &[String],
        ctx: &Ctx,
        line: usize,
    ) -> CResult<()> {
        let pre: Vec<(String, STy, Operand)> = assigned
            .iter()
            .map(|n| {
                let (t, v) = self.var_val(n).unwrap();
                (n.clone(), t, v)
            })
            .collect();
        let id = self.fresh("cif");
        let arm_bb = self.b.add_block(format!("{id}.arm"));
        let merge_bb = self.b.add_block(format!("{id}.merge"));
        let any = self.b.call(
            vir::intrinsics::mask_any_name(self.lanes()),
            vec![arm_mask.clone()],
            Type::I1,
            "any",
        );
        let from = self.b.current_block();
        self.b.cond_br(any, arm_bb, merge_bb);

        self.b.position_at(arm_bb);
        let arm_ctx = Ctx {
            mask: Mask::Vec(arm_mask),
            varying_control: true,
            foreach: ctx.foreach.clone(),
        };
        self.stmts(body, &arm_ctx, false)?;
        let mut blended: Vec<Operand> = Vec::with_capacity(pre.len());
        for (n, _, old) in &pre {
            let new = self.var_val(n).unwrap().1;
            blended.push(self.b.select(sel_cond.clone(), new, old.clone(), n));
        }
        let arm_end = self.b.current_block();
        self.b.br(merge_bb);

        self.b.position_at(merge_bb);
        for (i, (n, t, old)) in pre.iter().enumerate() {
            let ty = self.ir_ty(*t);
            let phi = self.b.phi(ty, n);
            self.b.add_incoming(&phi, from, old.clone());
            self.b.add_incoming(&phi, arm_end, blended[i].clone());
            self.set_var(n, phi, line)?;
        }
        Ok(())
    }

    fn uniform_while(&mut self, cond: &Expr, body: &[Stmt], ctx: &Ctx, line: usize) -> CResult<()> {
        let assigned: Vec<String> = {
            let mut v = assigned_vars(body);
            v.retain(|n| self.var_val(n).is_some());
            v
        };
        let id = self.fresh("while");
        let header = self.b.add_block(format!("{id}.header"));
        let body_bb = self.b.add_block(format!("{id}.body"));
        let exit_bb = self.b.add_block(format!("{id}.exit"));

        let pre_end = self.b.current_block();
        self.b.br(header);

        self.b.position_at(header);
        let mut phis: Vec<(String, Operand)> = Vec::new();
        for n in &assigned {
            let (t, v) = self.var_val(n).unwrap();
            let ty = self.ir_ty(t);
            let phi = self.b.phi(ty, n);
            self.b.add_incoming(&phi, pre_end, v);
            self.set_var(n, phi.clone(), line)?;
            phis.push((n.clone(), phi));
        }
        let cv = self.expr(cond, ctx)?;
        let cv = self.convert(cv, BaseTy::Bool, line)?;
        if !cv.ty.uniform {
            return self.err(line, "while condition must be uniform (varying loops are compiled as masked foreach bodies)");
        }
        self.b.cond_br(cv.op, body_bb, exit_bb);

        self.b.position_at(body_bb);
        self.stmts(body, ctx, false)?;
        let latch = self.b.current_block();
        for (n, phi) in &phis {
            let v = self.var_val(n).unwrap().1;
            self.b.add_incoming(phi, latch, v);
            // Exit value is the header phi.
            self.set_var(n, phi.clone(), line)?;
        }
        self.b.br(header);

        self.b.position_at(exit_bb);
        Ok(())
    }

    /// Varying-condition `while`: the ISPC masked loop. Lanes drop out as
    /// their condition goes false; the loop runs while *any* lane under the
    /// enclosing mask is still live (a `mask.any` back-edge check, ISPC's
    /// movmsk idiom). Assignments are blended with the live mask at the
    /// latch so retired lanes keep their final values.
    fn varying_while(&mut self, cond: &Expr, body: &[Stmt], ctx: &Ctx, line: usize) -> CResult<()> {
        let assigned: Vec<String> = {
            let mut v = assigned_vars(body);
            v.retain(|n| self.var_val(n).is_some());
            v
        };
        for n in &assigned {
            if let Some((t, _)) = self.var_val(n) {
                if t.uniform {
                    return self.err(
                        line,
                        format!("cannot assign to uniform '{n}' inside a varying while"),
                    );
                }
            }
        }
        let id = self.fresh("vwhile");
        let header = self.b.add_block(format!("{id}.header"));
        let body_bb = self.b.add_block(format!("{id}.body"));
        let exit_bb = self.b.add_block(format!("{id}.exit"));

        let pre_end = self.b.current_block();
        self.b.br(header);

        self.b.position_at(header);
        let mut phis: Vec<(String, Operand)> = Vec::new();
        for n in &assigned {
            let (t, v) = self.var_val(n).unwrap();
            let ty = self.ir_ty(t);
            let phi = self.b.phi(ty, n);
            self.b.add_incoming(&phi, pre_end, v);
            self.set_var(n, phi.clone(), line)?;
            phis.push((n.clone(), phi));
        }
        let cv = self.expr(cond, ctx)?;
        let cv = self.convert(cv, BaseTy::Bool, line)?;
        let cv = self.to_varying(cv, "loop_cond");
        let live = self.and_masks(&ctx.mask, cv.op);
        let any = self.b.call(
            vir::intrinsics::mask_any_name(self.lanes()),
            vec![live.clone()],
            Type::I1,
            "loop_any",
        );
        self.b.cond_br(any, body_bb, exit_bb);

        self.b.position_at(body_bb);
        let body_ctx = Ctx {
            mask: Mask::Vec(live.clone()),
            varying_control: true,
            foreach: ctx.foreach.clone(),
        };
        self.stmts(body, &body_ctx, false)?;
        let latch = self.b.current_block();
        for (n, phi) in &phis {
            let cur = self.var_val(n).unwrap().1;
            let merged = self.b.select(live.clone(), cur, phi.clone(), n);
            self.b.add_incoming(phi, latch, merged);
            self.set_var(n, phi.clone(), line)?;
        }
        self.b.br(header);

        self.b.position_at(exit_bb);
        Ok(())
    }

    /// The ISPC foreach lowering (paper Fig. 7). See module docs.
    fn foreach(
        &mut self,
        var: &str,
        start: &Expr,
        end: &Expr,
        body: &[Stmt],
        ctx: &Ctx,
        line: usize,
    ) -> CResult<()> {
        let vl = self.lanes();
        let sfx = if self.foreach_count == 0 {
            String::new()
        } else {
            format!(".{}", self.foreach_count)
        };
        self.foreach_count += 1;

        // Iteration space.
        let start_v = self.expr(start, ctx)?;
        let start_v = self.convert(start_v, BaseTy::Int, line)?;
        if !start_v.ty.uniform {
            return self.err(line, "foreach bounds must be uniform");
        }
        let end_v = self.expr(end, ctx)?;
        let end_v = self.convert(end_v, BaseTy::Int, line)?;
        if !end_v.ty.uniform {
            return self.err(line, "foreach bounds must be uniform");
        }
        let start_is_zero = matches!(&start_v.op, Operand::Const(c) if c.as_i64() == Some(0));
        let n_iters = if start_is_zero {
            end_v.op.clone()
        } else {
            self.b
                .bin(BinOp::Sub, end_v.op.clone(), start_v.op.clone(), "n_iters")
        };
        let nextras = self.b.bin(
            BinOp::SRem,
            n_iters.clone(),
            Constant::i32(vl as i32).into(),
            &format!("nextras{sfx}"),
        );
        let aligned_end = self.b.bin(
            BinOp::Sub,
            n_iters.clone(),
            nextras.clone(),
            &format!("aligned_end{sfx}"),
        );

        // Loop-carried variables (uniform reductions etc.).
        let assigned: Vec<String> = {
            let mut v = assigned_vars(body);
            v.retain(|n| self.var_val(n).is_some());
            v
        };
        let pre: Vec<(String, STy, Operand)> = assigned
            .iter()
            .map(|n| {
                let (t, v) = self.var_val(n).unwrap();
                (n.clone(), t, v)
            })
            .collect();

        let lr_ph = self.b.add_block(format!("foreach_full_body.lr.ph{sfx}"));
        let full_body = self.b.add_block(format!("foreach_full_body{sfx}"));
        let partial_outer = self.b.add_block(format!("partial_inner_all_outer{sfx}"));
        let partial_inner = self.b.add_block(format!("partial_inner_only{sfx}"));
        let reset = self.b.add_block(format!("foreach_reset{sfx}"));

        let entry_end = self.b.current_block();
        let enter_full = self.b.icmp(
            ICmpPred::Sgt,
            aligned_end.clone(),
            Constant::i32(0).into(),
            "enter_full",
        );
        self.b.cond_br(enter_full, lr_ph, partial_outer);

        self.b.position_at(lr_ph);
        self.b.br(full_body);

        // --- Full body: all lanes on. ---
        self.b.position_at(full_body);
        let counter = self.b.phi(Type::I32, &format!("counter{sfx}"));
        self.b
            .add_incoming(&counter, lr_ph, Constant::i32(0).into());
        let mut full_phis: Vec<(String, Operand)> = Vec::new();
        for (n, t, v) in &pre {
            let ty = self.ir_ty(*t);
            let phi = self.b.phi(ty, n);
            self.b.add_incoming(&phi, lr_ph, v.clone());
            self.set_var(n, phi.clone(), line)?;
            full_phis.push((n.clone(), phi));
        }
        let base_index = if start_is_zero {
            counter.clone()
        } else {
            self.b
                .bin(BinOp::Add, counter.clone(), start_v.op.clone(), "base_idx")
        };
        let lane_ids: Operand = Constant::lane_ids(vl).into();
        let base_bcast = {
            let v = CgVal {
                ty: STy::uniform(BaseTy::Int),
                op: base_index.clone(),
            };
            self.to_varying(v, "smear_index").op
        };
        let varying_index = self
            .b
            .bin(BinOp::Add, base_bcast, lane_ids.clone(), "varying_index");

        let body_ctx = Ctx {
            mask: Mask::AllOn,
            varying_control: false,
            foreach: Some(ForeachCtx {
                var: var.to_string(),
                base_index: base_index.clone(),
                varying_index: varying_index.clone(),
            }),
        };
        self.push_scope();
        self.declare(
            var,
            Binding::Var {
                ty: STy::varying(BaseTy::Int),
                val: varying_index.clone(),
            },
            line,
        )?;
        self.stmts_inner(body, &body_ctx, false)?;
        self.pop_scope();

        let latch = self.b.current_block();
        let new_counter = self.b.bin(
            BinOp::Add,
            counter.clone(),
            Constant::i32(vl as i32).into(),
            &format!("new_counter{sfx}"),
        );
        self.b.add_incoming(&counter, latch, new_counter.clone());
        let full_exit_vals: Vec<Operand> = pre
            .iter()
            .map(|(n, _, _)| self.var_val(n).unwrap().1)
            .collect();
        for ((_, phi), (n, _, _)) in full_phis.iter().zip(&pre) {
            let v = self.var_val(n).unwrap().1;
            self.b.add_incoming(phi, latch, v);
        }
        let keep_going = self.b.icmp(
            ICmpPred::Slt,
            new_counter.clone(),
            aligned_end.clone(),
            "keep_going",
        );
        self.b.cond_br(keep_going, full_body, partial_outer);

        // --- Partial outer: merge entry-skip and loop-exit paths. ---
        self.b.position_at(partial_outer);
        let mut outer_vals: Vec<Operand> = Vec::new();
        for (i, (n, t, v0)) in pre.iter().enumerate() {
            let ty = self.ir_ty(*t);
            let phi = self.b.phi(ty, n);
            self.b.add_incoming(&phi, entry_end, v0.clone());
            self.b.add_incoming(&phi, latch, full_exit_vals[i].clone());
            self.set_var(n, phi.clone(), line)?;
            outer_vals.push(phi);
        }
        let has_extras = self.b.icmp(
            ICmpPred::Sgt,
            nextras.clone(),
            Constant::i32(0).into(),
            "has_extras",
        );
        self.b.cond_br(has_extras, partial_inner, reset);

        // --- Partial body: masked remainder. ---
        self.b.position_at(partial_inner);
        let p_base = if start_is_zero {
            aligned_end.clone()
        } else {
            self.b.bin(
                BinOp::Add,
                aligned_end.clone(),
                start_v.op.clone(),
                "p_base",
            )
        };
        let p_bcast = {
            let v = CgVal {
                ty: STy::uniform(BaseTy::Int),
                op: p_base.clone(),
            };
            self.to_varying(v, "p_smear").op
        };
        let p_index = self
            .b
            .bin(BinOp::Add, p_bcast, lane_ids.clone(), "p_varying_index");
        let nextras_bcast = {
            let v = CgVal {
                ty: STy::uniform(BaseTy::Int),
                op: nextras.clone(),
            };
            self.to_varying(v, "nextras_smear").op
        };
        let p_mask = self
            .b
            .icmp(ICmpPred::Slt, lane_ids, nextras_bcast, "partial_mask");
        let p_ctx = Ctx {
            mask: Mask::Vec(p_mask),
            varying_control: false,
            foreach: Some(ForeachCtx {
                var: var.to_string(),
                base_index: p_base,
                varying_index: p_index.clone(),
            }),
        };
        self.push_scope();
        self.declare(
            var,
            Binding::Var {
                ty: STy::varying(BaseTy::Int),
                val: p_index,
            },
            line,
        )?;
        self.stmts_inner(body, &p_ctx, false)?;
        self.pop_scope();
        let partial_end = self.b.current_block();
        let partial_vals: Vec<Operand> = pre
            .iter()
            .map(|(n, _, _)| self.var_val(n).unwrap().1)
            .collect();
        self.b.br(reset);

        // --- Reset: rejoin. ---
        self.b.position_at(reset);
        for (i, (n, t, _)) in pre.iter().enumerate() {
            let ty = self.ir_ty(*t);
            let phi = self.b.phi(ty, n);
            self.b
                .add_incoming(&phi, partial_outer, outer_vals[i].clone());
            self.b
                .add_incoming(&phi, partial_end, partial_vals[i].clone());
            self.set_var(n, phi, line)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vir::printer::print_module;

    const VCOPY: &str = r#"
export void vcopy_ispc(uniform float a1[], uniform float a2[], uniform int n) {
    foreach (i = 0 ... n) {
        a2[i] = a1[i];
    }
}
"#;

    #[test]
    fn compiles_vcopy_on_both_targets() {
        for isa in VectorIsa::ALL {
            let m = compile(VCOPY, isa, "vcopy").unwrap();
            let f = m.function("vcopy_ispc").unwrap();
            assert_eq!(f.blocks[0].name, "allocas");
            assert!(f.block_by_name("foreach_full_body").is_some());
            assert!(f.block_by_name("partial_inner_only").is_some());
            assert!(f.block_by_name("foreach_reset").is_some());
        }
    }

    #[test]
    fn vcopy_avx_uses_paper_intrinsics() {
        let m = compile(VCOPY, VectorIsa::Avx, "vcopy").unwrap();
        let text = print_module(&m);
        assert!(text.contains("@llvm.x86.avx.maskload.ps.256"), "{text}");
        assert!(text.contains("@llvm.x86.avx.maskstore.ps.256"), "{text}");
        assert!(text.contains("%nextras = srem i32 %n, 8"), "{text}");
        assert!(
            text.contains("%aligned_end = sub i32 %n, %nextras"),
            "{text}"
        );
        assert!(
            text.contains("%new_counter = add i32 %counter, 8"),
            "{text}"
        );
    }

    #[test]
    fn sse_target_narrower() {
        let m = compile(VCOPY, VectorIsa::Sse4, "vcopy").unwrap();
        let text = print_module(&m);
        assert!(text.contains("<4 x float>"), "{text}");
        assert!(text.contains("srem i32 %n, 4"), "{text}");
        assert!(text.contains("@llvm.x86.sse41.maskload.ps"), "{text}");
    }

    #[test]
    fn uniform_broadcast_uses_fig9_pattern() {
        let src = r#"
export void scale(uniform float a[], uniform int n, uniform float s) {
    foreach (i = 0 ... n) {
        a[i] = a[i] * s;
    }
}
"#;
        let m = compile(src, VectorIsa::Avx, "scale").unwrap();
        let text = print_module(&m);
        assert!(
            text.contains("insertelement <8 x float> undef, float %s, i32 0"),
            "{text}"
        );
        assert!(text.contains("shufflevector"), "{text}");
    }

    #[test]
    fn reductions_compile() {
        let src = r#"
export uniform float dotp(uniform float a[], uniform float b[], uniform int n) {
    uniform float sum = 0.0;
    foreach (i = 0 ... n) {
        sum += reduce_add(a[i] * b[i]);
    }
    return sum;
}
"#;
        for isa in VectorIsa::ALL {
            compile(src, isa, "dotp").unwrap();
        }
    }

    #[test]
    fn varying_if_blends_with_select() {
        let src = r#"
export void relu(uniform float a[], uniform int n) {
    foreach (i = 0 ... n) {
        float v = a[i];
        if (v < 0.0) {
            v = 0.0;
        }
        a[i] = v;
    }
}
"#;
        let m = compile(src, VectorIsa::Avx, "relu").unwrap();
        let text = print_module(&m);
        assert!(text.contains("select <8 x i1>"), "{text}");
    }

    #[test]
    fn gather_scatter_scalarize() {
        let src = r#"
export void permute(uniform float a[], uniform int idx[], uniform float out[], uniform int n) {
    foreach (i = 0 ... n) {
        int j = idx[i];
        out[i] = a[j];
    }
}
"#;
        let m = compile(src, VectorIsa::Avx, "perm").unwrap();
        let text = print_module(&m);
        // The gather scalarizes: extractelement + getelementptr + load per lane.
        assert!(text.matches("extractelement").count() >= 8, "{text}");
    }

    #[test]
    fn stencil_offsets_are_affine() {
        let src = r#"
export void blur(uniform float a[], uniform float out[], uniform int n) {
    foreach (i = 0 ... n) {
        out[i + 1] = (a[i] + a[i + 1] + a[i + 2]) / 3.0;
    }
}
"#;
        let m = compile(src, VectorIsa::Avx, "blur").unwrap();
        let text = print_module(&m);
        // Affine accesses must not scalarize into 8 per-lane loads.
        let gathers = text.matches("lane0.load").count();
        assert_eq!(gathers, 0, "{text}");
    }

    #[test]
    fn uniform_loops_and_ifs() {
        let src = r#"
export uniform int collatz_steps(uniform int start) {
    uniform int x = start;
    uniform int steps = 0;
    while (x > 1) {
        if (x % 2 == 0) {
            x = x / 2;
        } else {
            x = 3 * x + 1;
        }
        steps += 1;
    }
    return steps;
}
"#;
        compile(src, VectorIsa::Avx, "collatz").unwrap();
    }

    #[test]
    fn for_loops_desugar() {
        let src = r#"
export uniform float geo(uniform int n) {
    uniform float acc = 0.0;
    for (uniform int k = 0; k < n; k++) {
        acc = acc * 0.5 + 1.0;
    }
    return acc;
}
"#;
        compile(src, VectorIsa::Sse4, "geo").unwrap();
    }

    #[test]
    fn rejects_varying_to_uniform_assignment() {
        let src = r#"
export void f(uniform float a[], uniform int n) {
    uniform float x = 0.0;
    foreach (i = 0 ... n) {
        x = a[i];
    }
}
"#;
        let e = compile(src, VectorIsa::Avx, "f").unwrap_err();
        assert!(e.msg.contains("varying"), "{e}");
    }

    #[test]
    fn rejects_uniform_assignment_in_varying_if() {
        let src = r#"
export void f(uniform float a[], uniform int n) {
    uniform int hits = 0;
    foreach (i = 0 ... n) {
        if (a[i] > 0.0) {
            hits = 1;
        }
    }
}
"#;
        let e = compile(src, VectorIsa::Avx, "f").unwrap_err();
        assert!(e.msg.contains("uniform"), "{e}");
    }

    #[test]
    fn rejects_unknown_identifiers_and_functions() {
        assert!(compile("export void f() { nope = 3; }", VectorIsa::Avx, "m").is_err());
        assert!(compile(
            "export void f(uniform float a[]) { a[0] = whatsit(1.0); }",
            VectorIsa::Avx,
            "m"
        )
        .is_err());
    }

    #[test]
    fn program_index_and_count() {
        let src = r#"
export void iota(uniform int out[], uniform int n) {
    foreach (i = 0 ... n) {
        out[i] = i * programCount + programIndex;
    }
}
"#;
        compile(src, VectorIsa::Avx, "iota").unwrap();
    }

    #[test]
    fn math_builtins_all_compile() {
        let src = r#"
export void m(uniform float a[], uniform int n) {
    foreach (i = 0 ... n) {
        float x = a[i];
        a[i] = sqrt(x) + exp(x) + log(x) + sin(x) + cos(x) + floor(x)
             + abs(x) + pow(x, 2.0) + min(x, 1.0) + max(x, 0.0) + clamp(x, 0.0, 1.0);
    }
}
"#;
        for isa in VectorIsa::ALL {
            compile(src, isa, "m").unwrap();
        }
    }
}
