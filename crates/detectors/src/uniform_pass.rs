//! The uniform-broadcast checker pass (paper §III-B).
//!
//! ISPC shares a `uniform` value across lanes by storing it in a scalar
//! register and broadcasting it with `insertelement undef` +
//! `shufflevector zeroinitializer` (paper Fig. 9). The invariant: *all
//! lanes of the broadcast register hold the same value*. A bit flip in any
//! lane of the broadcast register violates it and "can be detected by
//! inserting a piece of checker code ... (inexpensively achieved by
//! XORing)".
//!
//! The paper leaves this detector as future work ("implementing the
//! detector described in §III-B will be part of our future work"); this
//! pass implements it. For every broadcast pattern it inserts
//! `call void @vulfi.check.uniform(<vec>)` immediately after the
//! `shufflevector`. Run before VULFI instrumentation, so the injection
//! chain feeds the checker the same (possibly corrupted) register the
//! program consumes.

use vir::inst::{InstKind, Terminator};
use vir::{ConstData, FuncDecl, Function, InstId, Module, Type, ValueDef};

/// Name of the runtime check function.
pub const CHECK_UNIFORM: &str = "vulfi.check.uniform";

/// A matched broadcast: the `shufflevector` producing the splat register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Broadcast {
    pub shuffle: InstId,
}

/// Find every Fig. 9 broadcast pattern in `f`.
pub fn find_broadcasts(f: &Function) -> Vec<Broadcast> {
    let mut out = Vec::new();
    for (_, iid) in f.placed_insts() {
        let inst = f.inst(iid);
        let InstKind::ShuffleVector { a, b, mask } = &inst.kind else {
            continue;
        };
        // Mask must splat lane 0.
        if !mask.iter().all(|&m| m == 0) {
            continue;
        }
        // Second operand is undef.
        let b_is_undef = matches!(b.constant().map(|c| &c.data), Some(ConstData::Undef));
        if !b_is_undef {
            continue;
        }
        // First operand is `insertelement undef, %scalar, 0`.
        let Some(a_val) = a.value() else { continue };
        let ValueDef::Inst(a_def) = f.value(a_val).def else {
            continue;
        };
        let InstKind::InsertElement { vec, idx, .. } = &f.inst(a_def).kind else {
            continue;
        };
        let vec_is_undef = matches!(vec.constant().map(|c| &c.data), Some(ConstData::Undef));
        let idx_is_zero = idx.constant().and_then(|c| c.as_i64()) == Some(0);
        if vec_is_undef && idx_is_zero {
            out.push(Broadcast { shuffle: iid });
        }
    }
    out
}

/// Declare the runtime check in `m`.
pub fn declare_uniform_runtime(m: &mut Module) {
    m.declare(FuncDecl {
        name: CHECK_UNIFORM.to_string(),
        ret: Type::Void,
        params: vec![],
        vararg: true,
    });
}

/// Insert uniform-broadcast checkers into `func`; returns how many were
/// inserted.
pub fn insert_uniform_detectors(m: &mut Module, func: &str) -> Result<usize, String> {
    declare_uniform_runtime(m);
    let f = m
        .function_mut(func)
        .ok_or_else(|| format!("no function @{func}"))?;
    let broadcasts = find_broadcasts(f);
    for bc in &broadcasts {
        let result = f.inst(bc.shuffle).result.expect("shuffle has a result");
        let block = f.block_of(bc.shuffle).expect("shuffle is placed");
        let call = f.create_inst(
            InstKind::Call {
                callee: CHECK_UNIFORM.to_string(),
                args: vec![result.into()],
            },
            Type::Void,
            None,
        );
        f.insert_after(block, bc.shuffle, call);
    }
    if let Err(e) = vir::verify::verify_module(m) {
        return Err(format!("uniform-checker pass broke the module: {e}"));
    }
    Ok(broadcasts.len())
}

/// Convenience: does the terminator style of `f` still verify? (Used by
/// property tests.)
pub fn has_unreachable_blocks(f: &Function) -> bool {
    f.blocks
        .iter()
        .any(|b| matches!(b.term, Terminator::Unreachable))
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmdc::{compile, VectorIsa};
    use vir::printer::print_module;

    const SCALE: &str = r#"
export void scale(uniform float a[], uniform int n, uniform float s) {
    foreach (i = 0 ... n) {
        a[i] = a[i] * s;
    }
}
"#;

    #[test]
    fn finds_broadcasts_in_compiled_code() {
        let m = compile(SCALE, VectorIsa::Avx, "scale").unwrap();
        let f = m.function("scale").unwrap();
        let bcs = find_broadcasts(f);
        // `s` broadcast in the full body, the partial body, plus the index
        // and nextras smears.
        assert!(!bcs.is_empty());
    }

    #[test]
    fn inserts_checkers_after_broadcasts() {
        let mut m = compile(SCALE, VectorIsa::Avx, "scale").unwrap();
        let n = insert_uniform_detectors(&mut m, "scale").unwrap();
        assert!(n >= 2);
        let text = print_module(&m);
        assert!(text.contains("call void @vulfi.check.uniform"), "{text}");
    }

    #[test]
    fn checker_flags_corrupted_broadcast() {
        use vexec::{Interp, RtVal, Scalar};
        use vir::analysis::SiteCategory;
        use vulfi::{instrument_module, InstrumentOptions, VulfiHost};

        let mut m = compile(SCALE, VectorIsa::Avx, "scale").unwrap();
        insert_uniform_detectors(&mut m, "scale").unwrap();
        // Now instrument pure-data sites (the broadcast register included).
        let r = instrument_module(
            &mut m,
            "scale",
            InstrumentOptions::new(SiteCategory::PureData),
        )
        .unwrap();
        assert!(!r.sites.is_empty());

        // Profile run to learn the dynamic-site count.
        let run = |host: &mut VulfiHost| {
            let mut interp = Interp::new(&m);
            let n = 16;
            let a = interp
                .mem
                .alloc_f32_slice(&(0..n).map(|i| i as f32).collect::<Vec<_>>())
                .unwrap();
            interp
                .run(
                    "scale",
                    &[
                        RtVal::Scalar(Scalar::ptr(a)),
                        RtVal::Scalar(Scalar::i32(n)),
                        RtVal::Scalar(Scalar::f32(3.0)),
                    ],
                    host,
                )
                .unwrap();
        };
        let mut profile = VulfiHost::profile();
        run(&mut profile);
        let total = profile.dynamic_sites;
        assert!(total > 0);
        assert_eq!(profile.detectors.violations, 0);

        // Inject into every dynamic site in turn; whenever the injection
        // lands on a broadcast lane, the checker must fire. We only assert
        // that it fires for *some* site (the broadcast sites exist).
        let mut any_detected = false;
        for target in 1..=total {
            let mut host = VulfiHost::inject(target, 12); // bit 12: mantissa
            run(&mut host);
            if host.detectors.violations > 0 {
                any_detected = true;
                break;
            }
        }
        assert!(any_detected, "no injection tripped the uniform checker");
    }

    #[test]
    fn no_broadcasts_in_pure_scalar_code() {
        let src = r#"
define i32 @f(i32 %x) {
entry:
  %y = add i32 %x, 1
  ret i32 %y
}
"#;
        let m = vir::parser::parse_module(src).unwrap();
        assert!(find_broadcasts(m.function("f").unwrap()).is_empty());
    }
}
