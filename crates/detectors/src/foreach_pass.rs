//! The foreach loop-invariant detector pass (paper §III-A, Figs. 7-8).
//!
//! ISPC's `foreach_full_body` loop maintains three invariants on its
//! IR-level iterator (paper Fig. 8):
//!
//! 1. `new_counter >= 0`
//! 2. `new_counter <= aligned_end`
//! 3. `new_counter % Vl == 0`
//!
//! This pass finds every full-body loop *structurally* — a block with an
//! `i32` counter phi that is advanced by a constant stride (`Vl`) and
//! compared `slt` against `aligned_end` to decide the back edge — and
//! splices a detector block (`foreach_fullbody_check_invariants`) onto the
//! loop's exit edge, calling the runtime detector API with
//! `(new_counter, aligned_end, Vl)`. Checking only at loop exit keeps the
//! overhead low (the paper's design choice; an ablation flag checks every
//! iteration instead).
//!
//! Run this pass **before** VULFI instrumentation: instrumentation then
//! redirects the detector's arguments through the injection chain, so the
//! checker observes exactly the (possibly corrupted) values the program
//! uses.

use vir::inst::{ICmpPred, InstKind, Operand, Terminator};
use vir::{BlockId, Constant, FuncDecl, Function, Module, Type};

/// Name of the runtime check function
/// (`checkInvariantsForeachFullBody` in the paper).
pub const CHECK_FOREACH: &str = "vulfi.check.foreach";

/// Where the invariant check runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckPlacement {
    /// Only on the loop's exit edge (the paper's low-overhead choice).
    OnExit,
    /// Every iteration, on the back edge too (overhead ablation).
    EveryIteration,
}

/// One matched foreach full-body loop.
#[derive(Debug, Clone)]
pub struct ForeachLoop {
    /// The loop-header block (`foreach_full_body*`).
    pub header: BlockId,
    /// The latch block holding `new_counter` and the exit branch.
    pub latch: BlockId,
    /// SSA operand of `new_counter`.
    pub new_counter: Operand,
    /// SSA operand (or constant) of `aligned_end`.
    pub aligned_end: Operand,
    /// The constant stride `Vl`.
    pub vl: i64,
    /// The block the loop exits to.
    pub exit: BlockId,
}

/// Structurally match every foreach full-body loop in `f`.
pub fn find_foreach_loops(f: &Function) -> Vec<ForeachLoop> {
    let mut out = Vec::new();
    for (bi, block) in f.blocks.iter().enumerate() {
        let header = BlockId(bi as u32);
        // Header must start with an i32 phi.
        for &phi_id in &block.insts {
            let phi = f.inst(phi_id);
            if !phi.is_phi() {
                break;
            }
            if phi.ty != Type::I32 {
                continue;
            }
            let InstKind::Phi { incomings } = &phi.kind else {
                continue;
            };
            let phi_val = phi.result.unwrap();
            // Find an incoming edge whose value is `add phi, C`.
            for (latch, inc_op) in incomings {
                let Some(inc_val) = inc_op.value() else {
                    continue;
                };
                let Some(def) = instruction_defining(f, inc_val) else {
                    continue;
                };
                let InstKind::Bin {
                    op: vir::BinOp::Add,
                    lhs,
                    rhs,
                } = &f.inst(def).kind
                else {
                    continue;
                };
                if lhs.value() != Some(phi_val) {
                    continue;
                }
                let Some(vl) = rhs.constant().and_then(Constant::as_i64) else {
                    continue;
                };
                if vl <= 0 {
                    continue;
                }
                // The latch must end with `condbr (icmp slt inc, end)`
                // whose true edge re-enters the header.
                let latch_block = f.block(*latch);
                let Terminator::CondBr {
                    cond,
                    on_true,
                    on_false,
                } = &latch_block.term
                else {
                    continue;
                };
                if *on_true != header {
                    continue;
                }
                let Some(cond_val) = cond.value() else {
                    continue;
                };
                let Some(cmp_def) = instruction_defining(f, cond_val) else {
                    continue;
                };
                let InstKind::ICmp {
                    pred: ICmpPred::Slt,
                    lhs: cmp_lhs,
                    rhs: cmp_rhs,
                } = &f.inst(cmp_def).kind
                else {
                    continue;
                };
                if cmp_lhs.value() != Some(inc_val) {
                    continue;
                }
                out.push(ForeachLoop {
                    header,
                    latch: *latch,
                    new_counter: inc_op.clone(),
                    aligned_end: cmp_rhs.clone(),
                    vl,
                    exit: *on_false,
                });
            }
        }
    }
    out
}

fn instruction_defining(f: &Function, v: vir::ValueId) -> Option<vir::InstId> {
    match f.value(v).def {
        vir::ValueDef::Inst(i) => Some(i),
        vir::ValueDef::Param(_) => None,
    }
}

/// Declare the detector runtime functions in `m`.
pub fn declare_detector_runtime(m: &mut Module) {
    m.declare(FuncDecl {
        name: CHECK_FOREACH.to_string(),
        ret: Type::Void,
        params: vec![Type::I32, Type::I32, Type::I32],
        vararg: true,
    });
}

/// Insert foreach invariant detectors into `func`. Returns the number of
/// detector blocks inserted.
pub fn insert_foreach_detectors(
    m: &mut Module,
    func: &str,
    placement: CheckPlacement,
) -> Result<usize, String> {
    declare_detector_runtime(m);
    let f = m
        .function_mut(func)
        .ok_or_else(|| format!("no function @{func}"))?;
    let loops = find_foreach_loops(f);
    let mut inserted = 0usize;
    for (k, lp) in loops.iter().enumerate() {
        insert_one(f, lp, k as i64, placement);
        inserted += 1;
    }
    if let Err(e) = vir::verify::verify_module(m) {
        return Err(format!("detector pass broke the module: {e}"));
    }
    Ok(inserted)
}

fn insert_one(f: &mut Function, lp: &ForeachLoop, id: i64, placement: CheckPlacement) {
    let check_args = vec![
        lp.new_counter.clone(),
        lp.aligned_end.clone(),
        Constant::i32(lp.vl as i32).into(),
        Constant::i64(id).into(),
    ];

    // Detector block on the exit edge (paper Fig. 7's
    // `foreach_fullbody_check_invariants`).
    let det = f.add_block(format!(
        "foreach_fullbody_check_invariants{}",
        if id == 0 {
            String::new()
        } else {
            format!(".{id}")
        }
    ));
    let call = f.create_inst(
        InstKind::Call {
            callee: CHECK_FOREACH.to_string(),
            args: check_args.clone(),
        },
        Type::Void,
        None,
    );
    f.block_mut(det).insts.push(call);
    f.block_mut(det).term = Terminator::Br(lp.exit);

    // Redirect the latch's exit edge through the detector block.
    if let Terminator::CondBr { on_false, .. } = &mut f.block_mut(lp.latch).term {
        debug_assert_eq!(*on_false, lp.exit);
        *on_false = det;
    }
    // Fix phis in the old exit block: the incoming edge moved.
    let exit = lp.exit;
    let exit_insts = f.block(exit).insts.clone();
    for iid in exit_insts {
        if let InstKind::Phi { incomings } = &mut f.inst_mut(iid).kind {
            for (b, _) in incomings.iter_mut() {
                if *b == lp.latch {
                    *b = det;
                }
            }
        }
    }

    if placement == CheckPlacement::EveryIteration {
        // Also check on the back edge: a second call placed in the latch
        // right before the terminator.
        let call2 = f.create_inst(
            InstKind::Call {
                callee: CHECK_FOREACH.to_string(),
                args: check_args,
            },
            Type::Void,
            None,
        );
        f.block_mut(lp.latch).insts.push(call2);
    }
}

// Extend ForeachLoop with the exit block (kept out of the public docs
// above for brevity).
impl ForeachLoop {
    pub fn stride(&self) -> i64 {
        self.vl
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmdc::{compile, VectorIsa};
    use vir::printer::print_module;

    const VCOPY: &str = r#"
export void vcopy_ispc(uniform float a1[], uniform float a2[], uniform int n) {
    foreach (i = 0 ... n) {
        a2[i] = a1[i];
    }
}
"#;

    #[test]
    fn finds_foreach_loop_in_compiled_code() {
        let m = compile(VCOPY, VectorIsa::Avx, "vcopy").unwrap();
        let f = m.function("vcopy_ispc").unwrap();
        let loops = find_foreach_loops(f);
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].vl, 8);
        assert_eq!(f.block(loops[0].header).name, "foreach_full_body");
    }

    #[test]
    fn sse_stride_is_four() {
        let m = compile(VCOPY, VectorIsa::Sse4, "vcopy").unwrap();
        let loops = find_foreach_loops(m.function("vcopy_ispc").unwrap());
        assert_eq!(loops[0].vl, 4);
    }

    #[test]
    fn inserts_detector_block_like_fig7() {
        let mut m = compile(VCOPY, VectorIsa::Avx, "vcopy").unwrap();
        let n = insert_foreach_detectors(&mut m, "vcopy_ispc", CheckPlacement::OnExit).unwrap();
        assert_eq!(n, 1);
        let text = print_module(&m);
        assert!(
            text.contains("foreach_fullbody_check_invariants:"),
            "{text}"
        );
        assert!(
            text.contains(
                "call void @vulfi.check.foreach(i32 %new_counter, i32 %aligned_end, i32 8"
            ),
            "{text}"
        );
    }

    #[test]
    fn detector_preserves_program_semantics() {
        use vexec::{Interp, RtVal, Scalar};
        use vulfi::VulfiHost;
        let mut m = compile(VCOPY, VectorIsa::Avx, "vcopy").unwrap();
        insert_foreach_detectors(&mut m, "vcopy_ispc", CheckPlacement::OnExit).unwrap();
        let mut interp = Interp::new(&m);
        let n = 13;
        let input: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let a1 = interp.mem.alloc_f32_slice(&input).unwrap();
        let a2 = interp.mem.alloc_f32_slice(&vec![0.0; n]).unwrap();
        let mut host = VulfiHost::profile();
        interp
            .run(
                "vcopy_ispc",
                &[
                    RtVal::Scalar(Scalar::ptr(a1)),
                    RtVal::Scalar(Scalar::ptr(a2)),
                    RtVal::Scalar(Scalar::i32(n as i32)),
                ],
                &mut host,
            )
            .unwrap();
        assert_eq!(interp.mem.read_f32_slice(a2, n).unwrap(), input);
        assert_eq!(host.detectors.checks, 1, "one check on loop exit");
        assert_eq!(host.detectors.violations, 0, "clean run flags nothing");
    }

    #[test]
    fn every_iteration_placement_checks_more() {
        use vexec::{Interp, RtVal, Scalar};
        use vulfi::VulfiHost;
        let mut m = compile(VCOPY, VectorIsa::Avx, "vcopy").unwrap();
        insert_foreach_detectors(&mut m, "vcopy_ispc", CheckPlacement::EveryIteration).unwrap();
        let mut interp = Interp::new(&m);
        let n = 32; // 4 full-body iterations on AVX
        let input: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let a1 = interp.mem.alloc_f32_slice(&input).unwrap();
        let a2 = interp.mem.alloc_f32_slice(&vec![0.0; n]).unwrap();
        let mut host = VulfiHost::profile();
        interp
            .run(
                "vcopy_ispc",
                &[
                    RtVal::Scalar(Scalar::ptr(a1)),
                    RtVal::Scalar(Scalar::ptr(a2)),
                    RtVal::Scalar(Scalar::i32(n as i32)),
                ],
                &mut host,
            )
            .unwrap();
        assert_eq!(host.detectors.checks, 4 + 1, "4 back edges + 1 exit");
    }

    #[test]
    fn multiple_foreach_loops_each_get_detectors() {
        let src = r#"
export void two(uniform float a[], uniform float b[], uniform int n) {
    foreach (i = 0 ... n) {
        a[i] = a[i] * 2.0;
    }
    foreach (j = 0 ... n) {
        b[j] = a[j] + 1.0;
    }
}
"#;
        let mut m = compile(src, VectorIsa::Avx, "two").unwrap();
        let n = insert_foreach_detectors(&mut m, "two", CheckPlacement::OnExit).unwrap();
        assert_eq!(n, 2);
    }

    #[test]
    fn matched_loops_are_natural_loop_headers() {
        // Cross-validate the structural matcher against the generic
        // natural-loop analysis: every match must be a real loop.
        for name in ["Stencil", "Jacobi", "ConjugateGradient"] {
            let w = vbench_module(name);
            let f = w.functions.first().unwrap();
            let loops = find_foreach_loops(f);
            assert!(!loops.is_empty(), "{name}");
            let natural = vir::analysis::find_loops(f);
            for lp in &loops {
                assert!(
                    natural
                        .iter()
                        .any(|n| n.header == lp.header && n.contains(lp.latch)),
                    "{name}: matched foreach at %{} is not a natural loop",
                    f.block(lp.header).name
                );
            }
        }
    }

    fn vbench_module(src_kind: &str) -> vir::Module {
        // Small local kernels shaped like the named benchmarks (this crate
        // cannot depend on vbench without a cycle).
        let src = match src_kind {
            "Stencil" => {
                r#"
export void k(uniform float a[], uniform float b[], uniform int n) {
    foreach (i = 1 ... n) {
        b[i] = a[i - 1] + a[i + 1];
    }
}
"#
            }
            "Jacobi" => {
                r#"
export void k(uniform float a[], uniform float b[], uniform int n) {
    for (uniform int t = 0; t < 3; t++) {
        foreach (i = 0 ... n) {
            b[i] = a[i] * 0.5;
        }
        foreach (j = 0 ... n) {
            a[j] = b[j];
        }
    }
}
"#
            }
            _ => {
                r#"
export uniform float k(uniform float a[], uniform int n) {
    uniform float s = 0.0;
    foreach (i = 0 ... n) {
        s += reduce_add(a[i]);
    }
    return s;
}
"#
            }
        };
        compile(src, VectorIsa::Avx, src_kind).unwrap()
    }

    #[test]
    fn no_false_positives_on_scalar_loops() {
        let src = r#"
define i32 @sum(i32 %n) {
entry:
  br label %header
header:
  %i = phi i32 [ 0, %entry ], [ %i2, %header ]
  %i2 = add i32 %i, 1
  %c = icmp slt i32 %i2, %n
  br i1 %c, label %header, label %exit
exit:
  ret i32 %i2
}
"#;
        // This *is* structurally a stride-1 counter loop; the matcher
        // accepts it (stride Vl=1), which is harmless: the invariants hold
        // trivially. Check that insertion still verifies.
        let mut m = vir::parser::parse_module(src).unwrap();
        let n = insert_foreach_detectors(&mut m, "sum", CheckPlacement::OnExit).unwrap();
        assert_eq!(n, 1);
    }
}
