//! Wrapping a [`Workload`] with detector-augmented code.
//!
//! [`WithDetectors`] clones a workload's module, runs the detector passes
//! over its kernel, and exposes the result as a new `Workload`, so the
//! standard `vulfi::campaign` driver measures detection rates without any
//! special-casing (paper §IV-E's methodology).

use vexec::{Memory, Trap};
use vir::Module;
use vulfi::workload::{SetupResult, Workload};

use crate::foreach_pass::{insert_foreach_detectors, CheckPlacement};
use crate::uniform_pass::insert_uniform_detectors;

/// Which detector families to insert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectorConfig {
    pub foreach_invariants: bool,
    pub uniform_broadcast: bool,
    pub placement: CheckPlacement,
}

impl Default for DetectorConfig {
    fn default() -> DetectorConfig {
        DetectorConfig {
            foreach_invariants: true,
            uniform_broadcast: false,
            placement: CheckPlacement::OnExit,
        }
    }
}

/// A workload whose module has detectors inserted.
pub struct WithDetectors<'w> {
    inner: &'w dyn Workload,
    module: Module,
    /// Detector blocks / checker calls inserted.
    pub foreach_detectors: usize,
    pub uniform_detectors: usize,
}

impl<'w> WithDetectors<'w> {
    pub fn new(inner: &'w dyn Workload, cfg: DetectorConfig) -> Result<WithDetectors<'w>, String> {
        let mut module = inner.module().clone();
        let mut foreach_detectors = 0;
        let mut uniform_detectors = 0;
        if cfg.foreach_invariants {
            foreach_detectors =
                insert_foreach_detectors(&mut module, inner.entry(), cfg.placement)?;
        }
        if cfg.uniform_broadcast {
            uniform_detectors = insert_uniform_detectors(&mut module, inner.entry())?;
        }
        Ok(WithDetectors {
            inner,
            module,
            foreach_detectors,
            uniform_detectors,
        })
    }
}

impl Workload for WithDetectors<'_> {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn entry(&self) -> &str {
        self.inner.entry()
    }

    fn module(&self) -> &Module {
        &self.module
    }

    fn num_inputs(&self) -> u64 {
        self.inner.num_inputs()
    }

    fn setup(&self, mem: &mut Memory, input: u64) -> Result<SetupResult, Trap> {
        self.inner.setup(mem, input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spmdc::{compile, VectorIsa};
    use vexec::{RtVal, Scalar};
    use vulfi::workload::OutputRegion;

    struct Copy {
        m: Module,
    }

    impl Workload for Copy {
        fn name(&self) -> &str {
            "vector copy"
        }
        fn entry(&self) -> &str {
            "vcopy_ispc"
        }
        fn module(&self) -> &Module {
            &self.m
        }
        fn num_inputs(&self) -> u64 {
            2
        }
        fn setup(&self, mem: &mut Memory, input: u64) -> Result<SetupResult, Trap> {
            let n = 12 + input as usize * 5;
            let vals: Vec<f32> = (0..n).map(|i| i as f32 * 0.5).collect();
            let a1 = mem.alloc_f32_slice(&vals)?;
            let a2 = mem.alloc_f32_slice(&vec![0.0; n])?;
            Ok(SetupResult {
                args: vec![
                    RtVal::Scalar(Scalar::ptr(a1)),
                    RtVal::Scalar(Scalar::ptr(a2)),
                    RtVal::Scalar(Scalar::i32(n as i32)),
                ],
                outputs: vec![OutputRegion {
                    addr: a2,
                    bytes: (n * 4) as u64,
                }],
            })
        }
    }

    fn copy_workload() -> Copy {
        let src = r#"
export void vcopy_ispc(uniform float a1[], uniform float a2[], uniform int n) {
    foreach (i = 0 ... n) {
        a2[i] = a1[i];
    }
}
"#;
        Copy {
            m: compile(src, VectorIsa::Avx, "vcopy").unwrap(),
        }
    }

    #[test]
    fn wrapper_inserts_detectors_and_preserves_behavior() {
        let w = copy_workload();
        let wd = WithDetectors::new(&w, DetectorConfig::default()).unwrap();
        assert_eq!(wd.foreach_detectors, 1);
        assert_eq!(wd.name(), "vector copy");
        assert_eq!(wd.num_inputs(), 2);
        // Golden runs of both versions produce the same dynamic behavior
        // modulo the detector calls.
        let plain = vulfi::campaign::measure_dyn_insts(w.module(), w.entry(), &w, 0).unwrap();
        let with = vulfi::campaign::measure_dyn_insts(wd.module(), wd.entry(), &wd, 0).unwrap();
        assert!(with > plain, "detector adds instructions");
        let overhead = (with - plain) as f64 / plain as f64;
        assert!(
            overhead < 0.25,
            "exit-only detector overhead small, got {overhead}"
        );
    }

    #[test]
    fn detection_rates_flow_through_campaigns() {
        use vir::analysis::SiteCategory;
        let w = copy_workload();
        let wd = WithDetectors::new(&w, DetectorConfig::default()).unwrap();
        let prog = vulfi::prepare(&wd, SiteCategory::Control).unwrap();
        let c = vulfi::run_campaign(&prog, &wd, 120, 99).unwrap();
        // Control faults hit the loop counter; a good fraction of the SDCs
        // must be detected by the foreach invariants (paper Fig. 12 shows
        // ~57% for vector copy).
        assert!(c.counts.sdc > 0, "{:?}", c.counts);
        assert!(
            c.counts.detected > 0,
            "foreach invariants never fired: {:?}",
            c.counts
        );
    }

    #[test]
    fn pure_data_faults_are_never_detected_by_foreach_invariants() {
        use vir::analysis::SiteCategory;
        let w = copy_workload();
        let wd = WithDetectors::new(&w, DetectorConfig::default()).unwrap();
        let prog = vulfi::prepare(&wd, SiteCategory::PureData).unwrap();
        let c = vulfi::run_campaign(&prog, &wd, 80, 5).unwrap();
        // Paper Fig. 12 / §IV-E: loop-iterator faults can never be
        // pure-data, so pure-data campaigns see zero detections.
        assert_eq!(c.counts.detected, 0, "{:?}", c.counts);
    }
}
