//! # detectors — compilation-aware soft-error detectors
//!
//! The second contribution of the reproduced paper (§III): turning
//! compiler code-generation invariants into automatically inserted,
//! low-overhead error detectors.
//!
//! - [`foreach_pass`] — the **foreach loop-invariant detector** (paper
//!   §III-A, Figs. 7-8). Structurally matches every ISPC
//!   `foreach_full_body` loop and splices a
//!   `foreach_fullbody_check_invariants` block onto its exit edge,
//!   checking `new_counter ≥ 0 ∧ new_counter ≤ aligned_end ∧
//!   new_counter % Vl == 0`.
//! - [`uniform_pass`] — the **uniform-broadcast checker** (paper §III-B,
//!   left as future work there; implemented here). Verifies all lanes of a
//!   broadcast register hold one value.
//! - [`workload_ext::WithDetectors`] — wraps any `vulfi::Workload` with
//!   detector-augmented code so campaigns measure detection rates
//!   (paper §IV-E).
//!
//! Pass ordering: detectors first, *then* `vulfi::instrument_module`. The
//! instrumentation pass redirects every use of a targeted register —
//! including the detector's arguments — through the injection chain, so
//! checkers observe exactly what the program computes.

pub mod foreach_pass;
pub mod uniform_pass;
pub mod workload_ext;

pub use foreach_pass::{
    find_foreach_loops, insert_foreach_detectors, CheckPlacement, ForeachLoop, CHECK_FOREACH,
};
pub use uniform_pass::{find_broadcasts, insert_uniform_detectors, Broadcast, CHECK_UNIFORM};
pub use workload_ext::{DetectorConfig, WithDetectors};
