//! The paper's qualitative findings, asserted as tests.
//!
//! These are the claims of §IV-D/§IV-E that must hold in *shape* for the
//! reproduction to be faithful, independent of absolute rates:
//!
//! 1. Fig. 2 / §IV-E: faults at pure-data sites are never flagged by the
//!    foreach loop invariants (the loop iterator can never be pure-data).
//! 2. §IV-E: control-site faults have high SDC rates and substantial
//!    detection rates; address-site faults mostly crash.
//! 3. §IV-D: the address category produces the most crashes overall.
//! 4. §II-D: masked-off lanes are not fault sites (mask-aware counting is
//!    strictly smaller than the mask-oblivious ablation on a masked tail).

use detectors::{DetectorConfig, WithDetectors};
use spmdc::VectorIsa;
use vbench::{micro_benchmark, study_benchmark, Scale};
use vexec::{Interp, NoHost};
use vir::analysis::SiteCategory;
use vulfi::workload::Workload;
use vulfi::{prepare, prepare_with, run_campaign, InstrumentOptions, VulfiHost};

const N_EXP: usize = 250;
const SEED: u64 = 0x2016;

#[test]
fn pure_data_faults_never_detected_by_foreach_invariants() {
    for name in ["vector copy", "dot product", "vector sum"] {
        let w = micro_benchmark(name, VectorIsa::Avx, Scale::Test).unwrap();
        let wd = WithDetectors::new(&w, DetectorConfig::default()).unwrap();
        let prog = prepare(&wd, SiteCategory::PureData).unwrap();
        let c = run_campaign(&prog, &wd, N_EXP, SEED).unwrap();
        assert_eq!(
            c.counts.detected, 0,
            "{name}: pure-data fault detected by loop invariants (impossible per Fig. 2): {:?}",
            c.counts
        );
        assert!(c.counts.sdc > 0, "{name}: no SDC at all is implausible");
    }
}

#[test]
fn control_faults_have_high_sdc_and_substantial_detection() {
    for name in ["vector copy", "dot product", "vector sum"] {
        let w = micro_benchmark(name, VectorIsa::Avx, Scale::Test).unwrap();
        let wd = WithDetectors::new(&w, DetectorConfig::default()).unwrap();
        let prog = prepare(&wd, SiteCategory::Control).unwrap();
        let c = run_campaign(&prog, &wd, N_EXP, SEED).unwrap();
        assert!(
            c.counts.sdc_rate() > 30.0,
            "{name}: control SDC rate too low: {:?}",
            c.counts
        );
        assert!(
            c.counts.sdc_detection_rate() > 20.0,
            "{name}: detectors should catch a sizable share of control SDCs \
             (paper: ~49-57%): {:?}",
            c.counts
        );
    }
}

#[test]
fn address_faults_crash_most() {
    for name in ["vector copy", "dot product"] {
        let w = micro_benchmark(name, VectorIsa::Avx, Scale::Test).unwrap();
        let crash_rate = |cat: SiteCategory| {
            let prog = prepare(&w, cat).unwrap();
            run_campaign(&prog, &w, N_EXP, SEED)
                .unwrap()
                .counts
                .crash_rate()
        };
        let addr = crash_rate(SiteCategory::Address);
        let data = crash_rate(SiteCategory::PureData);
        let ctrl = crash_rate(SiteCategory::Control);
        assert!(
            addr > ctrl && addr > data,
            "{name}: address crashes ({addr:.1}%) must exceed control ({ctrl:.1}%) \
             and pure-data ({data:.1}%)"
        );
    }
}

#[test]
fn study_benchmarks_follow_crash_ordering_too() {
    let w = study_benchmark("Blackscholes", VectorIsa::Sse4, Scale::Test).unwrap();
    let crash_rate = |cat: SiteCategory| {
        let prog = prepare(&w, cat).unwrap();
        run_campaign(&prog, &w, 120, SEED)
            .unwrap()
            .counts
            .crash_rate()
    };
    assert!(crash_rate(SiteCategory::Address) > crash_rate(SiteCategory::PureData));
}

#[test]
fn masked_lanes_are_not_fault_sites() {
    // On an input whose size is NOT a lane multiple, the partial region
    // runs masked. Mask-aware counting (VULFI) must see strictly fewer
    // dynamic sites than the mask-oblivious ablation.
    let w = micro_benchmark("vector copy", VectorIsa::Avx, Scale::Test).unwrap();

    let count_sites = |mask_aware: bool| -> u64 {
        let prog = prepare_with(
            &w,
            InstrumentOptions {
                category: SiteCategory::PureData,
                mask_aware,
                mode: Default::default(),
            },
        )
        .unwrap();
        let mut interp = Interp::new(&prog.module);
        let setup = w.setup(&mut interp.mem, 0).unwrap(); // n = 33 (33 % 8 != 0)
        let mut host = VulfiHost::profile();
        interp.run(&prog.entry, &setup.args, &mut host).unwrap();
        host.dynamic_sites
    };

    let aware = count_sites(true);
    let oblivious = count_sites(false);
    assert!(
        aware < oblivious,
        "mask-aware ({aware}) must count fewer dynamic sites than mask-oblivious ({oblivious})"
    );
}

#[test]
fn hang_inducing_faults_classify_as_crash() {
    // Control faults on loop counters sometimes produce runaway loops;
    // the hang budget must fold them into the Crash class, and the whole
    // campaign must still terminate quickly.
    let w = micro_benchmark("vector sum", VectorIsa::Avx, Scale::Test).unwrap();
    let prog = prepare(&w, SiteCategory::Control).unwrap();
    let c = run_campaign(&prog, &w, N_EXP, SEED).unwrap();
    assert!(
        c.counts.crash > 0,
        "control faults should crash (incl. hangs) sometimes: {:?}",
        c.counts
    );
}

#[test]
fn detector_overhead_stays_low() {
    // The paper reports ~8% runtime overhead for exit-only checks; our
    // dynamic-instruction analogue must stay in the single digits.
    for name in ["vector copy", "dot product", "vector sum"] {
        let w = micro_benchmark(name, VectorIsa::Avx, Scale::Test).unwrap();
        let wd = WithDetectors::new(&w, DetectorConfig::default()).unwrap();
        let plain = vulfi::campaign::measure_dyn_insts(w.module(), w.entry(), &w, 0).unwrap();
        let with = vulfi::campaign::measure_dyn_insts(wd.module(), wd.entry(), &wd, 0).unwrap();
        let overhead = 100.0 * (with as f64 - plain as f64) / plain as f64;
        assert!(
            overhead < 9.0,
            "{name}: exit-only detector overhead {overhead:.2}% not low"
        );
    }
}

#[test]
fn every_iteration_checks_cost_more_than_exit_only() {
    use detectors::CheckPlacement;
    let w = micro_benchmark("vector copy", VectorIsa::Avx, Scale::Test).unwrap();
    let overhead = |placement: CheckPlacement| {
        let cfg = DetectorConfig {
            foreach_invariants: true,
            uniform_broadcast: false,
            placement,
        };
        let wd = WithDetectors::new(&w, cfg).unwrap();
        vulfi::campaign::measure_dyn_insts(wd.module(), wd.entry(), &wd, 1).unwrap()
    };
    assert!(
        overhead(CheckPlacement::EveryIteration) > overhead(CheckPlacement::OnExit),
        "per-iteration checking must cost more (the paper's rationale for exit-only)"
    );
}

#[test]
fn sdc_comparison_is_bit_exact() {
    // Even a single mantissa-bit flip in one output element must count as
    // SDC: sweep one specific injection and confirm.
    let w = micro_benchmark("vector copy", VectorIsa::Avx, Scale::Test).unwrap();
    let prog = prepare(&w, SiteCategory::PureData).unwrap();

    // Golden.
    let mut interp = Interp::new(&prog.module);
    let setup = w.setup(&mut interp.mem, 0).unwrap();
    let mut host = VulfiHost::profile();
    interp.run(&prog.entry, &setup.args, &mut host).unwrap();
    let golden = interp
        .mem
        .snapshot(setup.outputs[0].addr, setup.outputs[0].bytes)
        .unwrap();
    assert!(host.dynamic_sites > 0);

    // Inject bit 0 (lowest mantissa-ish bit of an i32 here) at site 1.
    let mut interp = Interp::new(&prog.module);
    let setup = w.setup(&mut interp.mem, 0).unwrap();
    let mut host = VulfiHost::inject(1, 0);
    let r = interp.run(&prog.entry, &setup.args, &mut host);
    assert!(r.is_ok());
    let out = interp
        .mem
        .snapshot(setup.outputs[0].addr, setup.outputs[0].bytes)
        .unwrap();
    assert!(host.injection.is_some());
    assert_ne!(golden, out, "single-bit corruption must be observable");
    // And exactly one 4-byte word differs by exactly one bit.
    let diffs: Vec<usize> = golden
        .iter()
        .zip(&out)
        .enumerate()
        .filter(|(_, (a, b))| a != b)
        .map(|(i, _)| i)
        .collect();
    assert_eq!(diffs.len(), 1);
    assert_eq!(
        (golden[diffs[0]] ^ out[diffs[0]]).count_ones(),
        1,
        "exactly one bit flipped"
    );
    let _ = NoHost; // (imported for symmetry with other tests)
}

#[test]
fn lvalue_model_approximates_operand_model() {
    // §II-B argues that targeting Lvalues "covers the scenarios where a
    // bit-flip either occurs in one of the source operands ... or in the
    // arithmetic unit". The ablation: campaigns under the two fault models
    // must tell the same qualitative story (SDCs present, same crash
    // ordering), even though site populations differ.
    use vulfi::instrument::TargetMode;
    let w = micro_benchmark("vector copy", VectorIsa::Avx, Scale::Test).unwrap();
    let run_mode = |mode: TargetMode, cat: SiteCategory| {
        let prog = prepare_with(
            &w,
            InstrumentOptions {
                category: cat,
                mask_aware: true,
                mode,
            },
        )
        .unwrap();
        run_campaign(&prog, &w, N_EXP, SEED).unwrap().counts
    };
    for cat in [SiteCategory::PureData, SiteCategory::Address] {
        let lv = run_mode(TargetMode::Lvalue, cat);
        let op = run_mode(TargetMode::SourceOperands, cat);
        assert!(lv.sdc > 0 && op.sdc > 0, "{cat}: {lv:?} vs {op:?}");
        if cat == SiteCategory::Address {
            assert!(
                lv.crash_rate() > 30.0 && op.crash_rate() > 30.0,
                "address faults crash heavily under both models: {lv:?} vs {op:?}"
            );
        } else {
            assert!(
                lv.crash_rate() < 15.0 && op.crash_rate() < 15.0,
                "pure-data faults rarely crash under both models: {lv:?} vs {op:?}"
            );
        }
    }
}
