//! Property-based tests (proptest) on the core invariants:
//!
//! - the textual IR format round-trips arbitrary straight-line functions;
//! - bit flips are involutive and width-respecting;
//! - interpreter arithmetic agrees with Rust reference semantics;
//! - DCE never changes observable results;
//! - the memory model rejects every access that leaves an allocation;
//! - campaign statistics behave like statistics.

use proptest::prelude::*;

use vexec::interp::{eval_bin, eval_icmp};
use vexec::{Interp, Memory, NoHost, RtVal, Scalar, Trap};
use vir::builder::FuncBuilder;
use vir::{BinOp, Constant, ICmpPred, Module, ScalarTy, Type};

// --- Generators -------------------------------------------------------------

fn arb_scalar_ty() -> impl Strategy<Value = ScalarTy> {
    prop_oneof![
        Just(ScalarTy::I8),
        Just(ScalarTy::I16),
        Just(ScalarTy::I32),
        Just(ScalarTy::I64),
        Just(ScalarTy::F32),
        Just(ScalarTy::F64),
    ]
}

fn arb_int_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Xor),
        Just(BinOp::Shl),
        Just(BinOp::LShr),
        Just(BinOp::AShr),
    ]
}

/// A straight-line i32 function: a chain of binops over two params plus
/// constants. Returns the module and a closure evaluating the reference.
fn build_chain(ops: &[(BinOp, i32)]) -> Module {
    let mut b = FuncBuilder::new(
        "chain",
        vec![("x".into(), Type::I32), ("y".into(), Type::I32)],
        Type::I32,
    );
    let entry = b.add_block("entry");
    b.position_at(entry);
    let mut acc = b.param(0);
    let y = b.param(1);
    for (i, (op, c)) in ops.iter().enumerate() {
        let rhs = if i % 2 == 0 {
            y.clone()
        } else {
            Constant::i32(*c).into()
        };
        acc = b.bin(*op, acc, rhs, "");
    }
    b.ret(Some(acc));
    let mut m = Module::new("prop");
    m.add_function(b.finish());
    m
}

fn reference_chain(ops: &[(BinOp, i32)], x: i32, y: i32) -> i32 {
    let mut acc = x;
    for (i, (op, c)) in ops.iter().enumerate() {
        let rhs = if i % 2 == 0 { y } else { *c };
        let a = Scalar::i32(acc);
        let b = Scalar::i32(rhs);
        acc = eval_bin(*op, a, b).map(|s| s.as_i64() as i32).unwrap_or(0);
    }
    acc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // --- Bit flips ---------------------------------------------------------

    #[test]
    fn flip_bit_is_involutive(ty in arb_scalar_ty(), bits: u64, bit_raw: u32) {
        let s = Scalar::new(ty, bits);
        let bit = bit_raw % ty.bits();
        let flipped = s.flip_bit(bit);
        prop_assert_ne!(flipped.bits, s.bits);
        prop_assert_eq!(flipped.flip_bit(bit), s);
        // The flip stays within the type's width.
        prop_assert_eq!(flipped.bits & !ty.bit_mask(), 0);
        // Exactly one bit differs.
        prop_assert_eq!((flipped.bits ^ s.bits).count_ones(), 1);
    }

    // --- Scalar semantics ----------------------------------------------------

    #[test]
    fn int_arithmetic_matches_rust(a: i32, b: i32, op in arb_int_binop()) {
        let r = eval_bin(op, Scalar::i32(a), Scalar::i32(b)).unwrap();
        let expect: i64 = match op {
            BinOp::Add => a.wrapping_add(b) as i64,
            BinOp::Sub => a.wrapping_sub(b) as i64,
            BinOp::Mul => a.wrapping_mul(b) as i64,
            BinOp::And => (a & b) as i64,
            BinOp::Or => (a | b) as i64,
            BinOp::Xor => (a ^ b) as i64,
            BinOp::Shl => {
                let amt = b as u32 as u64;
                if amt >= 32 { 0 } else { a.wrapping_shl(amt as u32) as i64 }
            }
            BinOp::LShr => {
                let amt = b as u32 as u64;
                if amt >= 32 { 0 } else { ((a as u32) >> amt) as i32 as i64 }
            }
            BinOp::AShr => {
                let amt = b as u32 as u64;
                if amt >= 32 { if a < 0 { -1 } else { 0 } } else { (a >> amt) as i64 }
            }
            _ => unreachable!(),
        };
        prop_assert_eq!(r.as_i64(), expect);
    }

    #[test]
    fn division_by_zero_always_traps(a: i32) {
        for op in [BinOp::SDiv, BinOp::UDiv, BinOp::SRem, BinOp::URem] {
            prop_assert_eq!(
                eval_bin(op, Scalar::i32(a), Scalar::i32(0)),
                Err(Trap::DivByZero)
            );
        }
    }

    #[test]
    fn icmp_trichotomy(a: i32, b: i32) {
        let (x, y) = (Scalar::i32(a), Scalar::i32(b));
        let lt = eval_icmp(ICmpPred::Slt, x, y);
        let eq = eval_icmp(ICmpPred::Eq, x, y);
        let gt = eval_icmp(ICmpPred::Sgt, x, y);
        prop_assert_eq!(lt as u8 + eq as u8 + gt as u8, 1, "exactly one holds");
        prop_assert_eq!(eval_icmp(ICmpPred::Sle, x, y), lt || eq);
        prop_assert_eq!(eval_icmp(ICmpPred::Sge, x, y), gt || eq);
        prop_assert_eq!(eval_icmp(ICmpPred::Ne, x, y), !eq);
    }

    // --- Printer/parser round-trip -------------------------------------------

    #[test]
    fn straight_line_functions_roundtrip(
        ops in prop::collection::vec((arb_int_binop(), any::<i32>()), 1..12)
    ) {
        let m = build_chain(&ops);
        vir::verify::verify_module(&m).unwrap();
        let text = vir::printer::print_module(&m);
        let m2 = vir::parser::parse_module(&text).unwrap();
        vir::verify::verify_module(&m2).unwrap();
        prop_assert_eq!(vir::printer::print_module(&m2), text);
    }

    #[test]
    fn float_constants_roundtrip(bits: u32) {
        let c = Constant::new(Type::F32, vir::ConstData::Scalar(bits as u64));
        let mut b = FuncBuilder::new("f", vec![], Type::F32);
        let e = b.add_block("entry");
        b.position_at(e);
        let v = b.bin(BinOp::FAdd, c.into(), Constant::f32(0.0).into(), "v");
        b.ret(Some(v));
        let mut m = Module::new("fc");
        m.add_function(b.finish());
        let text = vir::printer::print_module(&m);
        let m2 = vir::parser::parse_module(&text).unwrap();
        // The constant's bit pattern survives the trip exactly.
        let f2 = &m2.functions[0];
        let inst = f2.inst(f2.block(vir::BlockId(0)).insts[0]);
        let got = inst.operands()[0].constant().unwrap().scalar_bits().unwrap();
        prop_assert_eq!(got, bits as u64);
    }

    // --- Interpreter vs reference / DCE ---------------------------------------

    #[test]
    fn interp_matches_reference_on_chains(
        ops in prop::collection::vec((arb_int_binop(), any::<i32>()), 1..10),
        x: i32,
        y: i32,
    ) {
        let m = build_chain(&ops);
        let mut interp = Interp::new(&m);
        let got = interp
            .run(
                "chain",
                &[RtVal::Scalar(Scalar::i32(x)), RtVal::Scalar(Scalar::i32(y))],
                &mut NoHost,
            )
            .unwrap()
            .ret
            .unwrap()
            .scalar()
            .as_i64() as i32;
        prop_assert_eq!(got, reference_chain(&ops, x, y));
    }

    #[test]
    fn dce_preserves_results(
        ops in prop::collection::vec((arb_int_binop(), any::<i32>()), 1..8),
        dead_ops in prop::collection::vec((arb_int_binop(), any::<i32>()), 1..8),
        x: i32,
        y: i32,
    ) {
        // Build a chain, then append an unused chain; DCE must remove the
        // dead part and preserve the live result.
        let mut b = FuncBuilder::new(
            "f",
            vec![("x".into(), Type::I32), ("y".into(), Type::I32)],
            Type::I32,
        );
        let entry = b.add_block("entry");
        b.position_at(entry);
        let mut acc = b.param(0);
        for (op, c) in &ops {
            acc = b.bin(*op, acc, Constant::i32(*c).into(), "");
        }
        let mut dead = b.param(1);
        for (op, c) in &dead_ops {
            dead = b.bin(*op, dead, Constant::i32(*c).into(), "");
        }
        b.ret(Some(acc));
        let mut f = b.finish();
        let before = f.num_placed_insts();
        let removed = vir::transform::dce::run(&mut f);
        prop_assert_eq!(removed, dead_ops.len());
        prop_assert_eq!(f.num_placed_insts(), before - dead_ops.len());
        let mut m = Module::new("dce");
        m.add_function(f);
        vir::verify::verify_module(&m).unwrap();
        let mut interp = Interp::new(&m);
        let got = interp
            .run(
                "f",
                &[RtVal::Scalar(Scalar::i32(x)), RtVal::Scalar(Scalar::i32(y))],
                &mut NoHost,
            )
            .unwrap()
            .ret
            .unwrap()
            .scalar()
            .as_i64() as i32;
        // Reference on the live chain only (rhs always constant here).
        let mut expect = Scalar::i32(x);
        for (op, c) in &ops {
            expect = eval_bin(*op, expect, Scalar::i32(*c)).unwrap();
        }
        prop_assert_eq!(got as i64, expect.as_i64());
    }

    // --- Memory model ----------------------------------------------------------

    #[test]
    fn memory_rejects_escaping_accesses(
        sizes in prop::collection::vec(1u64..128, 1..6),
        probe_off in 0u64..4096,
        probe_size in 1u64..16,
    ) {
        let mut mem = Memory::default();
        let bases: Vec<(u64, u64)> = sizes
            .iter()
            .map(|&s| (mem.alloc(s).unwrap(), s))
            .collect();
        // Any probe fully inside an allocation is valid; anything that
        // escapes every allocation must be invalid.
        let addr = bases[0].0.wrapping_add(probe_off);
        let inside = bases
            .iter()
            .any(|&(b, s)| addr >= b && addr + probe_size <= b + s);
        prop_assert_eq!(mem.is_valid(addr, probe_size), inside);
    }

    #[test]
    fn memory_write_read_roundtrip(vals in prop::collection::vec(any::<f32>(), 1..64)) {
        let mut mem = Memory::default();
        let a = mem.alloc_f32_slice(&vals).unwrap();
        let back = mem.read_f32_slice(a, vals.len()).unwrap();
        for (x, y) in vals.iter().zip(&back) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    // --- Statistics -------------------------------------------------------------

    #[test]
    fn margin_of_error_nonnegative_and_scale_invariant(
        xs in prop::collection::vec(0.0f64..100.0, 2..40),
        shift in -50.0f64..50.0,
    ) {
        use vulfi::stats::margin_of_error_95;
        let m1 = margin_of_error_95(&xs);
        prop_assert!(m1 >= 0.0);
        // Shifting every sample leaves the margin unchanged.
        let shifted: Vec<f64> = xs.iter().map(|x| x + shift).collect();
        let m2 = margin_of_error_95(&shifted);
        prop_assert!((m1 - m2).abs() < 1e-9 * (1.0 + m1.abs()));
    }

    #[test]
    fn t_table_is_monotone_decreasing(df in 1usize..200) {
        use vulfi::stats::t_critical_95;
        prop_assert!(t_critical_95(df) >= t_critical_95(df + 1));
        prop_assert!(t_critical_95(df) >= 1.96);
    }

    // --- Injection runtime -------------------------------------------------------

    #[test]
    fn unreached_targets_leave_execution_untouched(
        n in 5u64..50,
        seed: u64,
    ) {
        // Target beyond the dynamic site count: output must equal golden.
        use vulfi::VulfiHost;
        let m = build_chain(&[(BinOp::Add, 1), (BinOp::Xor, 3)]);
        let mut im = m.clone();
        vulfi::instrument_module(
            &mut im,
            "chain",
            vulfi::InstrumentOptions::new(vir::analysis::SiteCategory::PureData),
        )
        .unwrap();
        let args = [
            RtVal::Scalar(Scalar::i32((seed & 0xffff) as i32)),
            RtVal::Scalar(Scalar::i32(7)),
        ];
        let mut profile = VulfiHost::profile();
        let golden = Interp::new(&im)
            .run("chain", &args, &mut profile)
            .unwrap()
            .ret;
        let mut host = VulfiHost::inject(profile.dynamic_sites + n, seed);
        let out = Interp::new(&im).run("chain", &args, &mut host).unwrap().ret;
        prop_assert_eq!(golden, out);
        prop_assert!(host.injection.is_none());
    }
}
