//! Cross-crate integration tests: the full VULFI pipeline over the entire
//! benchmark suite on both vector targets.

use spmdc::VectorIsa;
use vbench::{study_benchmarks, Scale};
use vexec::{Interp, NoHost};
use vir::analysis::SiteCategory;
use vulfi::workload::{snapshot_outputs, Workload};
use vulfi::{prepare, run_campaign, VulfiHost};

#[test]
fn every_benchmark_module_roundtrips_through_text() {
    for isa in VectorIsa::ALL {
        for w in study_benchmarks(isa, Scale::Test) {
            let text = vir::printer::print_module(w.module());
            let reparsed = vir::parser::parse_module(&text)
                .unwrap_or_else(|e| panic!("{}/{isa}: {e}", w.name()));
            vir::verify::verify_module(&reparsed)
                .unwrap_or_else(|e| panic!("{}/{isa}: {e}", w.name()));
            assert_eq!(
                vir::printer::print_module(&reparsed),
                text,
                "{}/{isa} print/parse not a fixpoint",
                w.name()
            );
        }
    }
}

#[test]
fn instrumentation_is_transparent_without_injection() {
    // A profile-mode (no-injection) run of the instrumented module must
    // produce bit-identical outputs to the uninstrumented module.
    for isa in VectorIsa::ALL {
        for w in study_benchmarks(isa, Scale::Test) {
            // Plain run.
            let mut plain = Interp::new(w.module());
            let setup = w.setup(&mut plain.mem, 0).unwrap();
            let ret = plain
                .run(w.entry(), &setup.args, &mut NoHost)
                .unwrap_or_else(|e| panic!("{}/{isa}: {e}", w.name()))
                .ret;
            let golden = snapshot_outputs(&plain.mem, &setup.outputs, &ret).unwrap();

            // Instrumented profile run (pure-data covers the most sites).
            let prog = prepare(&w, SiteCategory::PureData).unwrap();
            let mut instr = Interp::new(&prog.module);
            let setup2 = w.setup(&mut instr.mem, 0).unwrap();
            let mut host = VulfiHost::profile();
            let ret2 = instr
                .run(&prog.entry, &setup2.args, &mut host)
                .unwrap_or_else(|e| panic!("{} instrumented/{isa}: {e}", w.name()))
                .ret;
            let out = snapshot_outputs(&instr.mem, &setup2.outputs, &ret2).unwrap();
            assert_eq!(golden, out, "{}/{isa} outputs diverge", w.name());
            assert!(
                host.dynamic_sites > 0,
                "{}/{isa}: no dynamic sites observed",
                w.name()
            );
        }
    }
}

#[test]
fn campaigns_complete_for_all_benchmarks_and_categories() {
    for w in study_benchmarks(VectorIsa::Avx, Scale::Test) {
        for cat in SiteCategory::ALL {
            let prog = prepare(&w, cat).unwrap_or_else(|e| panic!("{} {cat}: {e}", w.name()));
            assert!(!prog.sites.is_empty(), "{} has no {cat} sites", w.name());
            let c = run_campaign(&prog, &w, 12, 0xAB)
                .unwrap_or_else(|e| panic!("{} {cat}: {e}", w.name()));
            assert_eq!(c.counts.total(), 12, "{} {cat}", w.name());
        }
    }
}

#[test]
fn experiments_reproducible_across_campaign_reruns() {
    let w = vbench::study_benchmark("Stencil", VectorIsa::Sse4, Scale::Test).unwrap();
    let prog = prepare(&w, SiteCategory::Control).unwrap();
    let a = run_campaign(&prog, &w, 30, 77).unwrap();
    let b = run_campaign(&prog, &w, 30, 77).unwrap();
    assert_eq!(a.counts, b.counts);
    for (x, y) in a.experiments.iter().zip(&b.experiments) {
        assert_eq!(x.outcome, y.outcome);
        assert_eq!(x.injection, y.injection);
    }
    // A different seed must eventually choose different injections.
    let c = run_campaign(&prog, &w, 30, 78).unwrap();
    assert_ne!(
        a.experiments
            .iter()
            .map(|e| e.injection.clone())
            .collect::<Vec<_>>(),
        c.experiments
            .iter()
            .map(|e| e.injection.clone())
            .collect::<Vec<_>>()
    );
}

#[test]
fn sse_and_avx_site_populations_differ_in_lane_width() {
    for w_avx in study_benchmarks(VectorIsa::Avx, Scale::Test) {
        let name = w_avx.name().to_string();
        let w_sse = vbench::study_benchmark(&name, VectorIsa::Sse4, Scale::Test).unwrap();
        let f_avx = w_avx.module().function(w_avx.entry()).unwrap();
        let f_sse = w_sse.module().function(w_sse.entry()).unwrap();
        let max_lanes_avx = vulfi::enumerate_sites(f_avx)
            .iter()
            .map(|s| s.lanes())
            .max()
            .unwrap();
        let max_lanes_sse = vulfi::enumerate_sites(f_sse)
            .iter()
            .map(|s| s.lanes())
            .max()
            .unwrap();
        assert_eq!(max_lanes_avx, 8, "{name}");
        assert_eq!(max_lanes_sse, 4, "{name}");
    }
}

#[test]
fn detectors_compose_with_full_pipeline_on_study_benchmark() {
    use detectors::{DetectorConfig, WithDetectors};
    let w = vbench::study_benchmark("Jacobi", VectorIsa::Avx, Scale::Test).unwrap();
    let wd = WithDetectors::new(&w, DetectorConfig::default()).unwrap();
    assert!(
        wd.foreach_detectors >= 2,
        "jacobi has several foreach loops"
    );
    let prog = prepare(&wd, SiteCategory::Control).unwrap();
    let c = run_campaign(&prog, &wd, 60, 3).unwrap();
    assert_eq!(c.counts.total(), 60);
    assert!(
        c.counts.detected > 0,
        "control faults in Jacobi loops must trip the invariants sometimes: {:?}",
        c.counts
    );
}

#[test]
fn uniform_checker_composes_with_campaigns() {
    use detectors::{CheckPlacement, DetectorConfig, WithDetectors};
    let w = vbench::study_benchmark("Blackscholes", VectorIsa::Avx, Scale::Test).unwrap();
    let cfg = DetectorConfig {
        foreach_invariants: true,
        uniform_broadcast: true,
        placement: CheckPlacement::OnExit,
    };
    let wd = WithDetectors::new(&w, cfg).unwrap();
    let prog = prepare(&wd, SiteCategory::PureData).unwrap();
    let c = run_campaign(&prog, &wd, 40, 5).unwrap();
    assert_eq!(c.counts.total(), 40);
    // The uniform checker *can* detect pure-data faults (broadcast lanes
    // are pure data); unlike the foreach invariants it is not structurally
    // blind to this category. No hard rate asserted, just plumbing.
}

#[test]
fn dynamic_instruction_mix_profiles_vector_share() {
    // Dynamic Fig. 10: vector instructions dominate the executed stream of
    // a foreach-vectorized kernel.
    let w = vbench::study_benchmark("Blackscholes", VectorIsa::Avx, Scale::Test).unwrap();
    let mut interp = Interp::new(w.module());
    interp.enable_profiling();
    let setup = w.setup(&mut interp.mem, 0).unwrap();
    let r = interp.run(w.entry(), &setup.args, &mut NoHost).unwrap();
    let mix = interp.take_mix().unwrap();
    assert_eq!(mix.total, r.dyn_insts, "profile covers every instruction");
    assert!(
        mix.vector_pct() > 40.0,
        "blackscholes executes mostly vector instructions, got {:.1}%",
        mix.vector_pct()
    );
    assert!(mix.by_opcode.contains_key("fmul"));
    assert!(mix.by_opcode.contains_key("condbr"));
    // Second run without profiling: same dynamic count, no mix.
    let mut interp2 = Interp::new(w.module());
    let setup2 = w.setup(&mut interp2.mem, 0).unwrap();
    let r2 = interp2.run(w.entry(), &setup2.args, &mut NoHost).unwrap();
    assert_eq!(r.dyn_insts, r2.dyn_insts);
    assert!(interp2.take_mix().is_none());
}
